//! Scenario: choosing a low-rank training method for an image classifier.
//!
//! Trains the same micro VGG-19 on the same synthetic task four ways —
//! full-rank, Pufferfish (manually tuned ρ = 1/4), SI&FD (spectral init,
//! no warm-up), and Cuttlefish — and prints the accuracy / size /
//! simulated-time trade-off each lands on, plus the rank trajectories
//! Cuttlefish used to decide when to switch.
//!
//! Run with: `cargo run --release --example compare_methods`

use cuttlefish::adapter::VisionAdapter;
use cuttlefish::{run_training, CuttlefishConfig, SwitchPolicy, TrainerConfig};
use cuttlefish_data::vision::{VisionSpec, VisionTask};
use cuttlefish_nn::models::{build_micro_vgg19, MicroVggConfig};
use cuttlefish_perf::arch::vgg19_cifar;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs = 10;
    let spec = VisionSpec::cifar10_like();
    let policies: Vec<(&str, SwitchPolicy)> = vec![
        ("full-rank", SwitchPolicy::FullRankOnly),
        (
            "pufferfish",
            SwitchPolicy::Manual {
                full_rank_epochs: epochs / 4,
                k: 9,
                rank_ratio: 0.25,
                extra_bn: false,
                frobenius_decay: None,
            },
        ),
        (
            "si&fd",
            SwitchPolicy::SpectralInit {
                rank_ratio: 0.25,
                frobenius_decay: Some(1e-4),
            },
        ),
        (
            "cuttlefish",
            SwitchPolicy::Cuttlefish(CuttlefishConfig {
                epsilon: 0.6,
                ..CuttlefishConfig::default()
            }),
        ),
    ];

    // Every run below uses the same architecture; statically verify it
    // once up front so a mis-declared shape fails before any training.
    {
        let mut rng = StdRng::seed_from_u64(0);
        let mut probe = build_micro_vgg19(&MicroVggConfig::cifar(10), &mut rng);
        print!("{}", probe.verify()?);
    }

    println!(
        "{:<12} {:>10} {:>8} {:>9} {:>6} {:>5}",
        "method", "params", "acc", "sim hrs", "E", "K"
    );
    for (name, policy) in policies {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_micro_vgg19(&MicroVggConfig::cifar(10), &mut rng);
        let mut adapter = VisionAdapter::new(VisionTask::generate(&spec, 42));
        let mut tcfg = TrainerConfig::cnn_default(epochs, 0);
        tcfg.track_ranks = name == "cuttlefish";
        let res = run_training(
            &mut net,
            &mut adapter,
            &tcfg,
            &policy,
            Some(&vgg19_cifar(10)),
        )?;
        println!(
            "{:<12} {:>10} {:>8.3} {:>9.3} {:>6} {:>5}",
            name,
            res.params_final,
            res.best_metric,
            res.sim_hours,
            res.e_hat
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into()),
            res.k_hat
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        if name == "cuttlefish" && !res.rank_history.is_empty() {
            println!("\ncuttlefish stable-rank trajectory (first tracked layer):");
            let series: Vec<String> = res
                .rank_history
                .iter()
                .map(|row| format!("{:.1}", row[0]))
                .collect();
            println!("  epochs 0..{}: [{}]", series.len(), series.join(", "));
        }
    }
    Ok(())
}
