//! Scenario: "should I factorize this layer?" — using the profiling and
//! cost-model APIs standalone, without training anything.
//!
//! Walks the paper-scale ResNet-18 and DeiT-base architectures, printing
//! each stack's arithmetic intensity and the full-vs-factorized roofline
//! times that drive Algorithm 2's K̂ decision, on two device profiles.
//!
//! Run with: `cargo run --release --example profile_architecture`

use cuttlefish::profile::Profiler;
use cuttlefish_perf::arch::{deit_base, resnet18_cifar};
use cuttlefish_perf::{arithmetic_intensity, target_cost, DeviceProfile};

fn main() {
    for device in [DeviceProfile::v100(), DeviceProfile::t4()] {
        println!(
            "\n=== device: {} (ridge {:.1} FLOP/byte) ===",
            device.name,
            device.ridge_point()
        );
        for (name, targets, batch) in [
            ("ResNet-18 @ CIFAR", resnet18_cifar(10), 1024usize),
            ("DeiT-base @ ImageNet", deit_base(), 256),
        ] {
            let profiler = Profiler::new(device.clone(), batch);
            let outcome = profiler.determine_k(&targets);
            println!("\n{name} (batch {batch}): K_hat = {}", outcome.k_hat);
            for s in &outcome.stacks {
                // Mean arithmetic intensity of the stack's layers.
                let members: Vec<_> = targets.iter().filter(|t| t.stack == s.stack).collect();
                let mean_intensity: f64 = members
                    .iter()
                    .map(|t| arithmetic_intensity(&target_cost(&t.kind, batch)))
                    .sum::<f64>()
                    / members.len().max(1) as f64;
                println!(
                    "  stack {}: intensity {:>7.1} FLOP/byte, full {:>8.2} ms, factored {:>8.2} ms, speedup {:.2}x -> {}",
                    s.stack,
                    mean_intensity,
                    s.full_time * 1e3,
                    s.factored_time * 1e3,
                    s.speedup(),
                    if s.speedup() >= 1.5 { "factorize" } else { "keep" }
                );
            }
        }
    }
    println!("\nThe paper's §3.5 in one table: low-intensity early stacks stay full-rank;");
    println!("uniform high-intensity transformer blocks all factorize (K = 1).");
}
