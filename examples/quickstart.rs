//! Quickstart: automated low-rank training in ~30 lines.
//!
//! Trains a micro ResNet-18 on a synthetic CIFAR-10-like task with the
//! Cuttlefish controller: it profiles the architecture to pick `K̂`,
//! tracks per-layer stable ranks until they stabilize (that epoch is
//! `Ê`), factorizes each layer at its converged scaled stable rank, and
//! finishes training the low-rank model — no factorization
//! hyperparameters to tune.
//!
//! Run with: `cargo run --release --example quickstart`

use cuttlefish::adapter::VisionAdapter;
use cuttlefish::{run_training, CuttlefishConfig, SwitchPolicy, TrainerConfig};
use cuttlefish_data::vision::{VisionSpec, VisionTask};
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_perf::arch::resnet18_cifar;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model and a task.
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut rng);
    let task = VisionTask::generate(&VisionSpec::cifar10_like(), 42);
    let mut adapter = VisionAdapter::new(task);

    // Ahead-of-time sanity: the static verifier checks every declared
    // weight shape and propagates symbolic shapes through the layer graph
    // without running a single kernel.
    print!("{}", net.verify()?);

    // 2. Ordinary training configuration — nothing about factorization.
    let tcfg = TrainerConfig::cnn_default(/* epochs */ 10, /* seed */ 0);

    // 3. Cuttlefish picks E, K, and all the ranks on the fly. The
    //    paper-scale layer shapes drive the K-profiling and the simulated
    //    wall-clock so the run reports V100-workload hours.
    let cfg = CuttlefishConfig {
        epsilon: 0.6, // micro-scale stabilization threshold
        ..CuttlefishConfig::default()
    };
    let result = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::Cuttlefish(cfg),
        Some(&resnet18_cifar(10)),
    )?;

    println!(
        "discovered E_hat  = {:?} (full-rank warm-up epochs)",
        result.e_hat
    );
    println!(
        "discovered K_hat  = {:?} (leading layers kept dense)",
        result.k_hat
    );
    println!(
        "parameters        = {} -> {} ({:.1}% of full)",
        result.params_full,
        result.params_final,
        100.0 * result.compression()
    );
    println!("best val accuracy = {:.3}", result.best_metric);
    println!(
        "simulated hours   = {:.3} (V100, batch 1024 workload)",
        result.sim_hours
    );
    println!("\nper-layer decisions:");
    for d in &result.decisions {
        match d.chosen {
            Some(r) => println!("  {:<16} rank {r:>3} of {:>3}", d.name, d.full_rank),
            None => println!("  {:<16} kept dense ({:?})", d.name, d.skip.unwrap()),
        }
    }

    // 4. Export for serving: re-verify the (now factorized) model and
    //    write the checkpoint atomically — no partial artifact on crash.
    let ckpt_path = std::env::temp_dir().join("cuttlefish-quickstart.ckpt.json");
    let export = cuttlefish::export_checkpoint(&mut net, &ckpt_path)?;
    println!(
        "\nexported {} param matrices ({} factored targets) to {}",
        export.params, export.factored_targets, export.path
    );

    // 5. Serve the artifact: freeze (restore + verify + eval lock), batch
    //    a few requests through the server, shut down cleanly.
    let model = cuttlefish_serve::FrozenModel::from_checkpoint_path(
        || build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut StdRng::seed_from_u64(0)),
        &ckpt_path,
    )?;
    let server = cuttlefish_serve::Server::start(
        std::sync::Arc::clone(&model),
        cuttlefish_serve::ServerConfig::default(),
        std::sync::Arc::new(cuttlefish_telemetry::NullRecorder),
    )?;
    let logits = server
        .submit(vec![0.1; model.input_width()], None)?
        .wait()?;
    println!("served a request: {} logits back", logits.len());
    server.shutdown()?;
    let _ = std::fs::remove_file(&ckpt_path);
    Ok(())
}
