//! Scenario: communication-efficient federated learning — the motivation
//! the paper's introduction opens with (cross-device FL with limited
//! bandwidth, Kairouz et al.).
//!
//! A FedAvg server coordinates 4 clients on disjoint shards of a synthetic
//! vision task. After a few full-rank warm-up rounds the server runs the
//! Cuttlefish switch (stable-rank factorization with the paper's skip
//! rules) and from then on only the `(U, Vᵀ)` factors travel — the
//! per-round communication drops by the model's compression factor while
//! accuracy keeps improving.
//!
//! Run with: `cargo run --release --example federated_lowrank`

use cuttlefish::adapter::{TaskAdapter, VisionAdapter};
use cuttlefish::config::RankRule;
use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish::rank::initial_scale;
use cuttlefish_data::vision::{VisionSpec, VisionTask};
use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_nn::optim::Sgd;
use cuttlefish_nn::{Mode, Network};
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const CLIENTS: usize = 4;
const ROUNDS: usize = 8;
const WARMUP_ROUNDS: usize = 3;

fn client_shard(task: &VisionTask, client: usize) -> VisionTask {
    // Disjoint row ranges of the training split.
    let n = task.train_x.rows();
    let per = n / CLIENTS;
    let (lo, hi) = (client * per, (client + 1) * per);
    let mut shard = task.clone();
    let mut x = Matrix::zeros(hi - lo, task.train_x.cols());
    for (row, src) in (lo..hi).enumerate() {
        x.row_mut(row).copy_from_slice(task.train_x.row(src));
    }
    shard.train_x = x;
    shard.train_y = task.train_y[lo..hi].to_vec();
    shard
}

fn local_epoch(net: &mut Network, adapter: &mut VisionAdapter, rng: &mut StdRng) {
    let mut opt = Sgd::new(0.9, 5e-3);
    for batch in adapter.train_batches(0, 32, rng).unwrap() {
        let logits = net.forward(batch.input, Mode::Train).unwrap();
        let (_, grad) = adapter.loss_and_grad(&logits, &batch.target, 0.0).unwrap();
        net.backward(grad).unwrap();
        net.step(&mut opt, 0.05);
        net.zero_grads();
    }
}

/// Bytes to ship one model's trainable parameters (FP32).
fn payload_bytes(net: &mut Network) -> usize {
    net.param_count() * 4
}

fn main() {
    let task = VisionTask::generate(&VisionSpec::cifar10_like(), 42);
    let mut server =
        build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut StdRng::seed_from_u64(0));
    let server_eval = VisionAdapter::new(task.clone());
    // Statically verify the server model before any client sees it.
    print!("{}", server.verify().expect("server model is well-formed"));
    // Store ξ at initialization for the scaled stable rank.
    let mut xi = HashMap::new();
    for t in server.targets().to_vec() {
        let w = server.weight_matrix(&t.name).unwrap();
        xi.insert(t.name.clone(), initial_scale(&w).unwrap());
    }

    let mut total_bytes = 0usize;
    println!(
        "{:>5} {:>10} {:>14} {:>8}",
        "round", "phase", "bytes/round", "val acc"
    );
    for round in 0..ROUNDS {
        // Cuttlefish switch at the end of warm-up: server factorizes once,
        // clients receive the factored model thereafter.
        if round == WARMUP_ROUNDS {
            let decisions = switch_to_low_rank(
                &mut server,
                &SwitchOptions {
                    k: 1,
                    plan: RankPlan::Auto {
                        rule: RankRule::Scaled,
                        transformer_rule: RankRule::ScaledWithAccumulative { p: 0.8 },
                        xi: xi.clone(),
                        skip_no_reduction: true,
                    },
                    extra_bn: false,
                    frobenius_decay: None,
                },
            )
            .unwrap();
            let factored = decisions.iter().filter(|d| d.chosen.is_some()).count();
            println!("  -- switch: factorized {factored} layers --");
        }

        // Broadcast server state, train each client, collect updates.
        let server_ckpt = Checkpoint::capture(&mut server);
        let mut client_params: Vec<Vec<Matrix>> = Vec::new();
        let mut round_bytes = 0usize;
        for c in 0..CLIENTS {
            let mut client =
                build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut StdRng::seed_from_u64(1));
            server_ckpt.restore(&mut client).unwrap();
            round_bytes += payload_bytes(&mut client); // downlink
            let mut adapter = VisionAdapter::new(client_shard(&task, c));
            let mut rng = StdRng::seed_from_u64(round as u64 * 10 + c as u64);
            local_epoch(&mut client, &mut adapter, &mut rng);
            round_bytes += payload_bytes(&mut client); // uplink
            let mut params = Vec::new();
            client.visit_params(&mut |p| params.push(p.value.clone()));
            client_params.push(params);
        }
        // FedAvg: server ← mean of client parameters.
        let mut idx = 0usize;
        server.visit_params(&mut |p| {
            let mut acc = Matrix::zeros(p.value.rows(), p.value.cols());
            for cp in &client_params {
                acc.axpy(1.0 / CLIENTS as f32, &cp[idx]).unwrap();
            }
            p.value = acc;
            idx += 1;
        });

        total_bytes += round_bytes;
        let acc = server_eval.evaluate(&mut server).unwrap();
        println!(
            "{:>5} {:>10} {:>14} {:>8.3}",
            round,
            if round < WARMUP_ROUNDS {
                "full-rank"
            } else {
                "low-rank"
            },
            round_bytes,
            acc
        );
    }
    println!(
        "\ntotal communication: {:.2} MB over {ROUNDS} rounds",
        total_bytes as f64 / 1e6
    );
    println!("(a full-rank-only run would ship {:.2} MB)", {
        let mut fresh =
            build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut StdRng::seed_from_u64(0));
        (payload_bytes(&mut fresh) * 2 * CLIENTS * ROUNDS) as f64 / 1e6
    });
}
