//! Scenario: communication-efficient federated learning — the motivation
//! the paper's introduction opens with (cross-device FL with limited
//! bandwidth, Kairouz et al.).
//!
//! A FedAvg server coordinates 4 clients on disjoint shards of a synthetic
//! vision task, built on the `cuttlefish-dist` primitives: shards come
//! from [`shard_vision_task`], every client RNG derives from one run seed
//! via [`worker_seed`], parameters travel as schema-validated wire frames,
//! and the server-side FedAvg *is* the dist crate's all-reduce — the mean
//! over client parameter frames in client order. After a few full-rank
//! warm-up rounds the server runs the Cuttlefish switch (stable-rank
//! factorization with the paper's skip rules) and from then on only the
//! `(U, Vᵀ)` factors travel — the per-round communication drops by the
//! model's compression factor while accuracy keeps improving.
//!
//! Run with: `cargo run --release --example federated_lowrank`

use cuttlefish::adapter::{TaskAdapter, VisionAdapter};
use cuttlefish::config::RankRule;
use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish::rank::initial_scale;
use cuttlefish_data::vision::{VisionSpec, VisionTask};
use cuttlefish_dist::schema::{decode_grads, encode_grads};
use cuttlefish_dist::{
    shard_vision_task, worker_seed, FactorAllReduce, GradientExchange, ParamSchema,
};
use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_nn::optim::Sgd;
use cuttlefish_nn::{Mode, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const CLIENTS: usize = 4;
const ROUNDS: usize = 8;
const WARMUP_ROUNDS: usize = 3;
const RUN_SEED: u64 = 42;

fn local_epoch(net: &mut Network, adapter: &mut VisionAdapter, rng: &mut StdRng) {
    let mut opt = Sgd::new(0.9, 5e-3);
    for batch in adapter.train_batches(0, 32, rng).unwrap() {
        let logits = net.forward(batch.input, Mode::Train).unwrap();
        let (_, grad) = adapter.loss_and_grad(&logits, &batch.target, 0.0).unwrap();
        net.backward(grad).unwrap();
        net.step(&mut opt, 0.05);
        net.zero_grads();
    }
}

/// Serializes a model's trainable parameters as a schema-validated wire
/// frame — the byte count is the real payload, not an estimate.
fn param_frame(net: &mut Network, schema: &ParamSchema) -> Vec<u8> {
    let mut params = Vec::new();
    net.visit_params(&mut |p| params.push(p.value.clone()));
    encode_grads(schema, &params).unwrap()
}

fn main() {
    let task = VisionTask::generate(&VisionSpec::cifar10_like(), RUN_SEED);
    let mut server =
        build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut StdRng::seed_from_u64(0));
    let server_eval = VisionAdapter::new(task.clone());
    // Statically verify the server model before any client sees it.
    print!("{}", server.verify().expect("server model is well-formed"));
    let mut schema = ParamSchema::of(&mut server).unwrap();
    // Store ξ at initialization for the scaled stable rank.
    let mut xi = HashMap::new();
    for t in server.targets().to_vec() {
        let w = server.weight_matrix(&t.name).unwrap();
        xi.insert(t.name.clone(), initial_scale(&w).unwrap());
    }
    // One RNG stream per client, all derived from the single run seed.
    let mut client_rngs: Vec<StdRng> = (0..CLIENTS)
        .map(|c| StdRng::seed_from_u64(worker_seed(RUN_SEED, c)))
        .collect();
    // FedAvg over parameter frames is exactly the dist collective: fold
    // the clients' frames in client order, scale by 1/N.
    let collective = FactorAllReduce;

    let mut total_bytes = 0usize;
    println!(
        "{:>5} {:>10} {:>14} {:>8}",
        "round", "phase", "bytes/round", "val acc"
    );
    for round in 0..ROUNDS {
        // Cuttlefish switch at the end of warm-up: server factorizes once,
        // clients receive the factored model thereafter.
        if round == WARMUP_ROUNDS {
            let decisions = switch_to_low_rank(
                &mut server,
                &SwitchOptions {
                    k: 1,
                    plan: RankPlan::Auto {
                        rule: RankRule::Scaled,
                        transformer_rule: RankRule::ScaledWithAccumulative { p: 0.8 },
                        xi: xi.clone(),
                        skip_no_reduction: true,
                    },
                    extra_bn: false,
                    frobenius_decay: None,
                },
            )
            .unwrap();
            let factored = decisions.iter().filter(|d| d.chosen.is_some()).count();
            println!("  -- switch: factorized {factored} layers --");
            schema = ParamSchema::of(&mut server).unwrap();
        }

        // Broadcast server state, train each client, collect updates.
        let server_ckpt = Checkpoint::capture(&mut server);
        let mut frames: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut round_bytes = 0usize;
        for (c, rng) in client_rngs.iter_mut().enumerate().take(CLIENTS) {
            let mut client =
                build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut StdRng::seed_from_u64(1));
            server_ckpt.restore(&mut client).unwrap();
            round_bytes += schema.frame_bytes(); // downlink
            let mut adapter = VisionAdapter::new(shard_vision_task(&task, c, CLIENTS).unwrap());
            local_epoch(&mut client, &mut adapter, rng);
            let frame = param_frame(&mut client, &schema);
            round_bytes += frame.len(); // uplink
            frames.push((c, frame));
        }
        // FedAvg: server ← mean of client parameters, via the collective.
        let mean = decode_grads(&schema, &collective.reduce(&schema, &frames).unwrap()).unwrap();
        let mut it = mean.into_iter();
        server.visit_params(&mut |p| {
            if let Some(m) = it.next() {
                p.value = m;
            }
        });

        total_bytes += round_bytes;
        let acc = server_eval.evaluate(&mut server).unwrap();
        println!(
            "{:>5} {:>10} {:>14} {:>8.3}",
            round,
            if round < WARMUP_ROUNDS {
                "full-rank"
            } else {
                "low-rank"
            },
            round_bytes,
            acc
        );
    }
    println!(
        "\ntotal communication: {:.2} MB over {ROUNDS} rounds",
        total_bytes as f64 / 1e6
    );
    println!("(a full-rank-only run would ship {:.2} MB)", {
        let mut fresh =
            build_micro_resnet18(&MicroResNetConfig::cifar(10), &mut StdRng::seed_from_u64(0));
        let fresh_schema = ParamSchema::of(&mut fresh).unwrap();
        (fresh_schema.frame_bytes() * 2 * CLIENTS * ROUNDS) as f64 / 1e6
    });
}
