//! Scenario: compressing a transformer during fine-tuning (the paper's
//! Table 4 setting). A micro BERT is fine-tuned on a synthetic GLUE-style
//! task; Cuttlefish factorizes the encoder after one or two epochs with
//! the transformer rank rule (max of scaled stable rank and accumulative
//! rank — transformer spectra are flat, Figure 9), leaving square
//! projections that would not shrink untouched.
//!
//! Run with: `cargo run --release --example finetune_glue`

use cuttlefish::adapter::GlueAdapter;
use cuttlefish::{run_training, CuttlefishConfig, OptimizerKind, SwitchPolicy, TrainerConfig};
use cuttlefish_data::glue_suite;
use cuttlefish_nn::models::{build_micro_bert, BertHead, MicroBertConfig};
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_perf::DeviceProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = glue_suite(
        /* vocab */ 48, /* seq_len */ 10, /* seed */ 11,
    );
    let task = suite
        .into_iter()
        .find(|t| t.name == "SST-2")
        .expect("SST-2 exists");
    println!(
        "fine-tuning micro-BERT on synthetic {} ({} classes)",
        task.name, task.classes
    );

    let bert_cfg = MicroBertConfig {
        vocab: 48,
        max_tokens: 10,
        dim: 24,
        depth: 3,
        heads: 3,
        mlp_ratio: 2,
        head: BertHead::Classification { classes: 2 },
    };
    let mut rng = StdRng::seed_from_u64(0);

    // Statically verify the BERT graph (embedding -> blocks -> head) once
    // before either fine-tuning run touches a kernel. A scratch RNG keeps
    // the training initializations below byte-identical.
    print!(
        "{}",
        build_micro_bert(&bert_cfg, &mut StdRng::seed_from_u64(0)).verify()?
    );

    for (label, policy) in [
        ("full fine-tune", SwitchPolicy::FullRankOnly),
        (
            "cuttlefish",
            SwitchPolicy::Cuttlefish(CuttlefishConfig {
                // Fine-tuning runs are short: switch as soon as the
                // tracker has one derivative sample (E ≈ 2, paper: E = 1).
                epsilon: f32::INFINITY,
                window: 1,
                max_full_rank_fraction: 0.34,
                ..CuttlefishConfig::default()
            }),
        ),
    ] {
        let mut net = build_micro_bert(&bert_cfg, &mut rng);
        let mut adapter = GlueAdapter::new(task.clone());
        let tcfg = TrainerConfig {
            total_epochs: 6,
            batch_size: 24,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            optimizer: OptimizerKind::AdamW { weight_decay: 0.0 },
            label_smoothing: 0.0,
            grad_clip: Some(1.0),
            seed: 0,
            device: DeviceProfile::v100(),
            sim_batch: 32,
            sim_iters_per_epoch: 1000,
            eval_every: 1,
            track_ranks: false,
        };
        let res = run_training(&mut net, &mut adapter, &tcfg, &policy, None)?;
        println!(
            "\n{label}: accuracy {:.3}, params {} -> {} ({:.0}%)",
            res.best_metric,
            res.params_full,
            res.params_final,
            100.0 * res.compression()
        );
        for d in res.decisions.iter().filter(|d| d.chosen.is_some()) {
            println!("  factorized {:<14} at rank {}", d.name, d.chosen.unwrap());
        }
    }
    Ok(())
}
