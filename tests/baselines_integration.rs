//! Integration tests for the baseline methods on shared micro scenarios.

use cuttlefish::adapter::VisionAdapter;
use cuttlefish::{run_training, OptimizerKind, SwitchPolicy};
use cuttlefish_baselines::util::LoopCfg;
use cuttlefish_baselines::{eb, grasp, imp, lc, pufferfish, si_fd, xnor};
use cuttlefish_data::vision::{VisionSpec, VisionTask};
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_nn::Network;
use cuttlefish_perf::arch::resnet18_cifar;
use cuttlefish_perf::DeviceProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Network, VisionAdapter, StdRng) {
    let mut rng = StdRng::seed_from_u64(0);
    let net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
    let adapter = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
    (net, adapter, StdRng::seed_from_u64(7))
}

fn cfg(epochs: usize) -> LoopCfg {
    LoopCfg {
        epochs,
        batch_size: 32,
        schedule: LrSchedule::Constant { lr: 0.05 },
        optimizer: OptimizerKind::Sgd {
            momentum: 0.9,
            weight_decay: 1e-3,
        },
        label_smoothing: 0.0,
    }
}

#[test]
fn pufferfish_policy_runs_end_to_end() {
    let (mut net, mut adapter, _) = setup();
    let policy = pufferfish::policy_for("resnet18", 6);
    let mut tcfg = cuttlefish::TrainerConfig::cnn_default(6, 0);
    tcfg.batch_size = 32;
    tcfg.schedule = LrSchedule::Constant { lr: 0.05 };
    let res = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &policy,
        Some(&resnet18_cifar(10)),
    )
    .unwrap();
    assert!(res.params_final < res.params_full / 2);
    assert!(res.best_metric > 0.4);
}

#[test]
fn si_fd_policy_runs_end_to_end() {
    let (mut net, mut adapter, _) = setup();
    let policy = si_fd::policy_with_rho(0.25);
    let mut tcfg = cuttlefish::TrainerConfig::cnn_default(5, 0);
    tcfg.batch_size = 32;
    tcfg.schedule = LrSchedule::Constant { lr: 0.05 };
    let res = run_training(&mut net, &mut adapter, &tcfg, &policy, None).unwrap();
    assert_eq!(
        res.e_hat,
        Some(0),
        "spectral init factorizes before training"
    );
    assert!(res.params_final < res.params_full / 2);
}

#[test]
fn imp_produces_sparse_accurate_model() {
    let (mut net, mut adapter, mut rng) = setup();
    let res = imp::run_imp(
        &mut net,
        &mut adapter,
        &cfg(2),
        &imp::ImpConfig {
            rounds: 2,
            prune_fraction: 0.3,
            rewind_epoch: 1,
        },
        &mut rng,
        &resnet18_cifar(10),
        DeviceProfile::v100(),
        1024,
        49,
    )
    .unwrap();
    assert!(res.density < 0.55);
    assert!(res.best_metric > 0.4);
}

#[test]
fn grasp_and_eb_and_xnor_run() {
    let (mut net, mut adapter, mut rng) = setup();
    let g = grasp::run_grasp(&mut net, &mut adapter, &cfg(2), 0.5, &mut rng).unwrap();
    assert!(g.density < 0.65);

    let (mut net, mut adapter, mut rng) = setup();
    let e = eb::run_eb(
        &mut net,
        &mut adapter,
        &cfg(4),
        &eb::EbConfig::default(),
        &mut rng,
    )
    .unwrap();
    assert!(e.kept_fraction < 0.95);

    let (mut net, mut adapter, mut rng) = setup();
    let x = xnor::run_xnor(&mut net, &mut adapter, &cfg(3), &mut rng).unwrap();
    assert!((x.effective_compression - 1.0 / 32.0).abs() < 1e-6);
    assert!(
        x.best_metric > 0.25,
        "binary net above chance: {}",
        x.best_metric
    );
}

#[test]
fn lc_learned_ranks_are_plausible() {
    let (mut net, mut adapter, mut rng) = setup();
    let res = lc::run_lc(
        &mut net,
        &mut adapter,
        &cfg(4),
        &lc::LcConfig {
            alpha: 3e-3,
            c_every: 1,
            ..lc::LcConfig::default()
        },
        &mut rng,
        &resnet18_cifar(10),
        DeviceProfile::v100(),
        1024,
        49,
    )
    .unwrap();
    for (name, &r) in &res.learned_ranks {
        assert!(r >= 1, "{name} got rank 0");
    }
    // LC is charged the alternating-optimization overhead: slower than one
    // plain training of the same length.
    let mut plain = cuttlefish_perf::TrainingClock::new(DeviceProfile::v100());
    plain.add_training_iterations(&resnet18_cifar(10), 1024, 49 * 4, |_| None);
    assert!(res.sim_hours > plain.hours());
}

#[test]
fn baseline_ordering_matches_paper_shape() {
    // Pufferfish compresses harder than Cuttlefish's conservative switch
    // at micro scale, but IMP is by far the slowest — the Table 1 shape.
    let (mut net, mut adapter, mut rng) = setup();
    let imp_res = imp::run_imp(
        &mut net,
        &mut adapter,
        &cfg(2),
        &imp::ImpConfig {
            rounds: 3,
            prune_fraction: 0.2,
            rewind_epoch: 1,
        },
        &mut rng,
        &resnet18_cifar(10),
        DeviceProfile::v100(),
        1024,
        49,
    )
    .unwrap();

    let (mut net, mut adapter, _) = setup();
    let mut tcfg = cuttlefish::TrainerConfig::cnn_default(2, 0);
    tcfg.batch_size = 32;
    tcfg.schedule = LrSchedule::Constant { lr: 0.05 };
    let full = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::FullRankOnly,
        Some(&resnet18_cifar(10)),
    )
    .unwrap();
    assert!(
        imp_res.sim_hours > 2.0 * full.sim_hours,
        "IMP {} vs full {}",
        imp_res.sim_hours,
        full.sim_hours
    );
}
