//! Numeric-sanitizer integration test: with `--features checked`, an
//! injected NaN must be localized to the *first* kernel that consumed the
//! poisoned weight, tagged with the layer that ran it. With the feature
//! off, the sanitizer must compile to nothing and report nothing.

use cuttlefish_nn::layers::{Linear, Relu, Sequential};
use cuttlefish_nn::{Act, Mode, Network, TargetInfo, TargetKind};
use cuttlefish_tensor::{checked, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn linear_target(name: &str, index: usize, in_dim: usize, out_dim: usize) -> TargetInfo {
    TargetInfo {
        name: name.into(),
        stack: index - 1,
        index,
        kind: TargetKind::Linear {
            in_dim,
            out_dim,
            positions: 1,
            transformer: false,
        },
    }
}

/// A two-layer MLP whose `fc1` weight carries a single NaN entry.
fn poisoned_net() -> Network {
    let mut rng = StdRng::seed_from_u64(7);
    let root = Sequential::new("net")
        .push(Linear::new("fc1", 4, 8, false, &mut rng))
        .push(Relu::new("relu"))
        .push(Linear::new("fc2", 8, 2, false, &mut rng));
    let targets = vec![linear_target("fc1", 1, 4, 8), linear_target("fc2", 2, 8, 2)];
    let mut net = Network::new("mlp", root, targets).expect("valid registry");
    net.visit_weights(&mut |name, w| {
        if name == "fc1" {
            w.dense_mut().expect("fc1 starts dense").set(0, 0, f32::NAN);
        }
    });
    net
}

/// A nonzero input batch: the matmul kernel skips zero lhs entries, so a
/// zeros input would never touch the poisoned weight column.
fn ones_input() -> Act {
    Act::flat(Matrix::from_vec(2, 4, vec![1.0; 8]).expect("2x4 from 8 values"))
}

#[cfg(feature = "checked")]
#[test]
fn injected_nan_is_localized_to_first_producing_op() {
    let mut net = poisoned_net();
    checked::reset();
    assert!(checked::is_enabled());
    let out = net
        .forward(ones_input(), Mode::Eval)
        .expect("forward itself succeeds; the sanitizer only observes");
    // The NaN sits in fc1's weight, so the very first matmul of the
    // forward pass is the first poisoned producer — everything downstream
    // (relu, fc2) is contaminated but must NOT be blamed.
    let p = checked::first_poison().expect("sanitizer saw the NaN");
    assert_eq!(p.op, "matmul", "first producer is fc1's matmul: {p}");
    assert_eq!(p.label, "fc1", "poison attributed to the wrong layer: {p}");
    assert!(p.value.is_nan());
    // The network output is CLEAN: relu computes `max(x, 0)`, and IEEE
    // max launders NaN back to 0. That is the whole point of scanning at
    // every kernel — by the final output the poison is invisible.
    assert!(out.data().as_slice().iter().all(|v| v.is_finite()));
    checked::reset();
    assert!(checked::first_poison().is_none());
}

#[cfg(not(feature = "checked"))]
#[test]
fn sanitizer_is_silent_when_feature_is_off() {
    let mut net = poisoned_net();
    checked::reset();
    assert!(!checked::is_enabled());
    net.forward(ones_input(), Mode::Eval)
        .expect("forward succeeds");
    assert!(checked::first_poison().is_none());
}
