//! Property-based tests over the numerical core: SVD invariants, stable
//! rank bounds, factorization function-preservation, and cost-model
//! monotonicity on randomly generated shapes.

use cuttlefish::rank::{accumulative_rank, stable_rank, stable_rank_of};
use cuttlefish::trainer::tracked_targets;
use cuttlefish_nn::weight::FactorableWeight;
use cuttlefish_nn::{Mode, TargetInfo, TargetKind};
use cuttlefish_perf::{target_flops, target_params, target_time, DeviceProfile};
use cuttlefish_tensor::init::randn_matrix;
use cuttlefish_tensor::svd::{svdvals, Svd};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn matrix_strategy() -> impl Strategy<Value = (usize, usize, u64)> {
    (2usize..24, 2usize..24, 0u64..1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn svd_reconstructs_any_matrix((rows, cols, seed) in matrix_strategy()) {
        let w = randn_matrix(rows, cols, 1.0, &mut StdRng::seed_from_u64(seed));
        let svd = Svd::compute(&w).unwrap();
        let err = w.sub(&svd.reconstruct()).unwrap().frobenius_norm();
        prop_assert!(err < 1e-3 * w.frobenius_norm().max(1.0), "err {err}");
    }

    #[test]
    fn singular_values_match_frobenius((rows, cols, seed) in matrix_strategy()) {
        // Σ σᵢ² == ‖W‖_F² (exact identity of the SVD).
        let w = randn_matrix(rows, cols, 1.0, &mut StdRng::seed_from_u64(seed));
        let svals = svdvals(&w).unwrap();
        let sum_sq: f64 = svals.iter().map(|&s| (s as f64).powi(2)).sum();
        let fro = w.frobenius_norm_sq();
        prop_assert!((sum_sq - fro).abs() < 1e-2 * fro.max(1.0), "{sum_sq} vs {fro}");
    }

    #[test]
    fn stable_rank_bounded((rows, cols, seed) in matrix_strategy()) {
        let w = randn_matrix(rows, cols, 1.0, &mut StdRng::seed_from_u64(seed));
        let sr = stable_rank_of(&w).unwrap();
        prop_assert!(sr >= 1.0 - 1e-4);
        prop_assert!(sr <= rows.min(cols) as f32 + 1e-3);
    }

    #[test]
    fn stable_rank_is_scale_invariant((rows, cols, seed) in matrix_strategy(), scale in 0.1f32..10.0) {
        let w = randn_matrix(rows, cols, 1.0, &mut StdRng::seed_from_u64(seed));
        let a = stable_rank_of(&w).unwrap();
        let b = stable_rank_of(&w.scale(scale)).unwrap();
        prop_assert!((a - b).abs() < 1e-2 * a, "{a} vs {b}");
    }

    #[test]
    fn accumulative_rank_monotone_in_p((rows, cols, seed) in matrix_strategy()) {
        let w = randn_matrix(rows, cols, 1.0, &mut StdRng::seed_from_u64(seed));
        let svals = svdvals(&w).unwrap();
        let r_half = accumulative_rank(&svals, 0.5);
        let r_most = accumulative_rank(&svals, 0.9);
        prop_assert!(r_half <= r_most);
        prop_assert!(r_most <= svals.len());
    }

    #[test]
    fn factorization_at_full_rank_preserves_outputs((rows, cols, seed) in matrix_strategy()) {
        let w = randn_matrix(rows, cols, 1.0, &mut StdRng::seed_from_u64(seed));
        let mut fw = FactorableWeight::new_full(w.clone());
        let x = randn_matrix(3, rows, 1.0, &mut StdRng::seed_from_u64(seed ^ 0xabc));
        let y_full = fw.forward(&x, Mode::Eval).unwrap();
        let svd = Svd::compute(&w).unwrap();
        let (u, vt) = svd.split_sqrt(rows.min(cols)).unwrap();
        fw.set_factored(u, vt, false, None).unwrap();
        let y_fact = fw.forward(&x, Mode::Eval).unwrap();
        let err = y_full.sub(&y_fact).unwrap().frobenius_norm();
        prop_assert!(err < 1e-2 * y_full.frobenius_norm().max(1.0), "err {err}");
    }

    #[test]
    fn truncation_error_decreases_with_rank((rows, cols, seed) in matrix_strategy()) {
        let w = randn_matrix(rows, cols, 1.0, &mut StdRng::seed_from_u64(seed));
        let svd = Svd::compute(&w).unwrap();
        let p = rows.min(cols);
        let mut prev = f64::INFINITY;
        for r in 1..=p {
            let err = w.sub(&svd.reconstruct_rank(r)).unwrap().frobenius_norm_sq();
            prop_assert!(err <= prev + 1e-3, "rank {r}: {err} > {prev}");
            prev = err;
        }
        prop_assert!(prev < 1e-3 * w.frobenius_norm_sq().max(1.0));
    }

    #[test]
    fn cost_model_monotone_in_rank(
        m in 4usize..64, n in 4usize..64, seed in 0u64..100
    ) {
        let _ = seed;
        let kind = TargetKind::Conv {
            in_channels: m,
            out_channels: n,
            kernel: 3,
            stride: 1,
            in_hw: (8, 8),
        };
        // Params and FLOPs strictly increase with rank.
        let p1 = target_params(&kind, Some(1));
        let p2 = target_params(&kind, Some(2));
        prop_assert!(p2 > p1);
        let f1 = target_flops(&kind, Some(1));
        let f2 = target_flops(&kind, Some(2));
        prop_assert!(f2 > f1);
        // Roofline time never negative and increases with batch.
        let dev = DeviceProfile::v100();
        let t_small = target_time(&dev, &kind, 8);
        let t_big = target_time(&dev, &kind, 1024);
        prop_assert!(t_small > 0.0 && t_big >= t_small);
    }

    #[test]
    fn stable_rank_of_flat_spectrum_counts(count in 1usize..32, value in 0.1f32..10.0) {
        let svals = vec![value; count];
        let sr = stable_rank(&svals);
        prop_assert!((sr - count as f32).abs() < 1e-3 * count as f32);
    }

    #[test]
    fn tracked_targets_selects_exactly_k_plus_one_to_depth_minus_one(
        depth in 1usize..12, k in 0usize..16, seed in 0u64..1000
    ) {
        // §3.4: the first k layers are frozen full-rank and the classifier
        // (index L) is never tracked, so the tracked set is exactly the
        // 1-based indices in (k, L) — independent of input ordering.
        let mut targets: Vec<TargetInfo> = (1..=depth)
            .map(|index| TargetInfo {
                name: format!("layer{index}"),
                stack: index % 3,
                index,
                kind: TargetKind::Linear {
                    in_dim: 8,
                    out_dim: 8,
                    positions: 1,
                    transformer: false,
                },
            })
            .collect();
        targets.shuffle(&mut StdRng::seed_from_u64(seed));
        let tracked = tracked_targets(&targets, k);
        let mut got: Vec<usize> = tracked.iter().map(|t| t.index).collect();
        got.sort_unstable();
        let want: Vec<usize> = (k + 1..depth).collect();
        prop_assert_eq!(got, want);
        if k >= depth {
            prop_assert!(tracked.is_empty(), "k >= depth must yield empty, not panic");
        }
    }
}
