//! Property test for the static shape checker: for every model in the
//! micro zoo, the symbolic shapes inferred by `Network::verify` must agree
//! with the shapes an actual forward pass produces — before the low-rank
//! switch and after switching at several rank ratios and `k` cuts. The
//! checker is only trustworthy if it is an exact mirror of the runtime.

use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish_nn::models::{
    build_micro_bert, build_micro_deit, build_micro_mixer, build_micro_resnet18,
    build_micro_resnet50, build_micro_vgg19, build_micro_wide_resnet50, MicroBertConfig,
    MicroDeiTConfig, MicroMixerConfig, MicroResNetConfig, MicroVggConfig,
};
use cuttlefish_nn::{Act, ActKind, Mode, Network, SymShape};
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 2;

/// Builds a batch-`BATCH` activation matching the model's declared
/// symbolic input shape.
fn input_for(shape: SymShape) -> Act {
    match shape {
        SymShape::Flat { features } => Act::flat(Matrix::zeros(BATCH, features)),
        SymShape::Image {
            channels,
            height,
            width,
        } => Act::image(
            Matrix::zeros(BATCH, channels * height * width),
            channels,
            height,
            width,
        )
        .expect("consistent image dims"),
        SymShape::Seq { tokens, dim } => {
            Act::seq(Matrix::zeros(BATCH * tokens, dim), BATCH, tokens)
                .expect("consistent seq dims")
        }
    }
}

/// Whether a runtime activation realizes the symbolic shape at batch
/// `BATCH`.
fn act_matches(act: &Act, sym: SymShape) -> bool {
    match (act.kind(), sym) {
        (ActKind::Flat, SymShape::Flat { features }) => act.data().shape() == (BATCH, features),
        (
            ActKind::Image { c, h, w },
            SymShape::Image {
                channels,
                height,
                width,
            },
        ) => (c, h, w) == (channels, height, width) && act.data().rows() == BATCH,
        (ActKind::Seq { batch, tokens }, SymShape::Seq { tokens: t, dim }) => {
            batch == BATCH && tokens == t && act.data().cols() == dim
        }
        _ => false,
    }
}

/// Asserts inferred output == actual forward output for the network's
/// current (full or factored) state.
fn assert_static_matches_runtime(net: &mut Network, context: &str) {
    let report = net
        .verify()
        .unwrap_or_else(|e| panic!("{context}: verify failed: {e}"));
    let inferred = report
        .output
        .unwrap_or_else(|| panic!("{context}: builder did not declare an input shape"));
    let input = input_for(report.input.expect("input declared"));
    let out = net
        .forward(input, Mode::Eval)
        .unwrap_or_else(|e| panic!("{context}: forward failed: {e}"));
    assert!(
        act_matches(&out, inferred),
        "{context}: static {inferred} vs runtime {:?} of shape {:?}",
        out.kind(),
        out.data().shape()
    );
}

/// The full property: static == runtime on the dense model and after
/// switching to low rank at ratios {0.25, 0.5, 1.0} with k ∈ {0, 1}.
fn check_model(name: &str, build: impl Fn(&mut StdRng) -> Network) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = build(&mut rng);
    assert_static_matches_runtime(&mut net, &format!("{name} (dense)"));
    for &rho in &[0.25f32, 0.5, 1.0] {
        for k in [0usize, 1] {
            let mut net = build(&mut rng);
            let opts = SwitchOptions {
                k,
                plan: RankPlan::FixedRatio { rho },
                extra_bn: false,
                frobenius_decay: None,
            };
            switch_to_low_rank(&mut net, &opts)
                .unwrap_or_else(|e| panic!("{name}: switch rho={rho} k={k} failed: {e}"));
            assert_static_matches_runtime(&mut net, &format!("{name} (factored rho={rho} k={k})"));
        }
    }
}

#[test]
fn resnet18_static_shapes_match_runtime() {
    check_model("micro-resnet18", |rng| {
        build_micro_resnet18(&MicroResNetConfig::tiny(4), rng)
    });
}

#[test]
fn resnet50_static_shapes_match_runtime() {
    check_model("micro-resnet50", |rng| {
        build_micro_resnet50(&MicroResNetConfig::tiny(4), rng)
    });
}

#[test]
fn wide_resnet50_static_shapes_match_runtime() {
    check_model("micro-wideresnet50", |rng| {
        build_micro_wide_resnet50(&MicroResNetConfig::tiny(4), rng)
    });
}

#[test]
fn vgg19_static_shapes_match_runtime() {
    check_model("micro-vgg19", |rng| {
        build_micro_vgg19(&MicroVggConfig::tiny(4), rng)
    });
}

#[test]
fn mixer_static_shapes_match_runtime() {
    check_model("micro-resmlp", |rng| {
        build_micro_mixer(&MicroMixerConfig::tiny(4), rng)
    });
}

#[test]
fn deit_static_shapes_match_runtime() {
    check_model("micro-deit", |rng| {
        build_micro_deit(&MicroDeiTConfig::tiny(4), rng)
    });
}

#[test]
fn bert_static_shapes_match_runtime() {
    check_model("micro-bert", |rng| {
        build_micro_bert(&MicroBertConfig::tiny(4), rng)
    });
}
