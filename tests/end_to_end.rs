//! Cross-crate integration tests: the full Cuttlefish pipeline on real
//! (micro) training runs.

use cuttlefish::adapter::{GlueAdapter, MlmAdapter, VisionAdapter};
use cuttlefish::{run_training, CuttlefishConfig, OptimizerKind, SwitchPolicy, TrainerConfig};
use cuttlefish_data::vision::{VisionSpec, VisionTask};
use cuttlefish_data::{glue_suite, MlmStream};
use cuttlefish_nn::models::{
    build_micro_bert, build_micro_resnet18, MicroBertConfig, MicroResNetConfig,
};
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_perf::arch::resnet18_cifar;
use cuttlefish_perf::DeviceProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_vision() -> (cuttlefish_nn::Network, VisionAdapter) {
    let mut rng = StdRng::seed_from_u64(0);
    let net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
    let adapter = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
    (net, adapter)
}

fn quick_cfg(epochs: usize) -> TrainerConfig {
    let mut c = TrainerConfig::cnn_default(epochs, 3);
    c.batch_size = 32;
    c.schedule = LrSchedule::Constant { lr: 0.05 };
    c.optimizer = OptimizerKind::Sgd {
        momentum: 0.9,
        weight_decay: 5e-3,
    };
    c
}

#[test]
fn cuttlefish_pipeline_on_vision() {
    let (mut net, mut adapter) = tiny_vision();
    let cfg = CuttlefishConfig {
        epsilon: 0.5,
        max_full_rank_fraction: 0.4,
        ..CuttlefishConfig::default()
    };
    let res = run_training(
        &mut net,
        &mut adapter,
        &quick_cfg(8),
        &SwitchPolicy::Cuttlefish(cfg),
        Some(&resnet18_cifar(10)),
    )
    .unwrap();

    // Invariants of a successful Cuttlefish run.
    let e = res.e_hat.expect("switched");
    assert!((1..=8).contains(&e));
    let k = res.k_hat.expect("profiled");
    assert!(k >= 1);
    assert!(res.params_final < res.params_full);
    assert!(res.best_metric > 0.4, "accuracy {}", res.best_metric);
    // The rank history covers exactly the full-rank phase.
    assert_eq!(res.rank_history.len(), e);
    // Every decision is consistent: chosen ranks within [1, full_rank].
    for d in &res.decisions {
        if let Some(r) = d.chosen {
            assert!(r >= 1 && r <= d.full_rank, "{d:?}");
        } else {
            assert!(d.skip.is_some(), "{d:?}");
        }
    }
    // The network still trains/evaluates after the switch (metric curve
    // has a value for every epoch).
    assert_eq!(res.metric_curve.len(), 8);
}

#[test]
fn cuttlefish_beats_spectral_init_from_scratch() {
    // Core claim of the paper's E-selection: some full-rank warm-up beats
    // factorizing at initialization for aggressive compression.
    let ratio = 0.1;
    let (mut net_a, mut ad_a) = tiny_vision();
    let si = run_training(
        &mut net_a,
        &mut ad_a,
        &quick_cfg(8),
        &SwitchPolicy::SpectralInit {
            rank_ratio: ratio,
            frobenius_decay: None,
        },
        None,
    )
    .unwrap();
    let (mut net_b, mut ad_b) = tiny_vision();
    let warm = run_training(
        &mut net_b,
        &mut ad_b,
        &quick_cfg(8),
        &SwitchPolicy::Manual {
            full_rank_epochs: 4,
            k: 1,
            rank_ratio: ratio,
            extra_bn: false,
            frobenius_decay: None,
        },
        None,
    )
    .unwrap();
    // Same final size...
    assert!(
        (si.params_final as f64 - warm.params_final as f64).abs() < 0.1 * warm.params_final as f64
    );
    // ...warm-started should not be (meaningfully) worse.
    assert!(
        warm.best_metric >= si.best_metric - 0.05,
        "warm {} vs si {}",
        warm.best_metric,
        si.best_metric
    );
}

#[test]
fn cuttlefish_pipeline_on_glue() {
    let suite = glue_suite(32, 8, 0);
    let task = suite.into_iter().find(|t| t.name == "SST-2").unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = build_micro_bert(&MicroBertConfig::tiny(2), &mut rng);
    let mut adapter = GlueAdapter::new(task);
    let tcfg = TrainerConfig {
        total_epochs: 5,
        batch_size: 16,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        optimizer: OptimizerKind::AdamW { weight_decay: 0.0 },
        label_smoothing: 0.0,
        grad_clip: Some(1.0),
        seed: 0,
        device: DeviceProfile::v100(),
        sim_batch: 32,
        sim_iters_per_epoch: 100,
        eval_every: 1,
        track_ranks: false,
    };
    let cfg = CuttlefishConfig {
        epsilon: f32::INFINITY,
        window: 1,
        max_full_rank_fraction: 0.5,
        ..CuttlefishConfig::default()
    };
    let res = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::Cuttlefish(cfg),
        None,
    )
    .unwrap();
    assert!(res.e_hat.is_some());
    assert!(res.best_metric > 0.55, "accuracy {}", res.best_metric);
    // Square attention projections may be skipped (NoReduction), but at
    // least one FFN weight must factorize.
    assert!(res.decisions.iter().any(|d| d.chosen.is_some()));
}

#[test]
fn cuttlefish_pipeline_on_mlm() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = build_micro_bert(&MicroBertConfig::tiny_mlm(), &mut rng);
    let mut adapter = MlmAdapter::new(MlmStream::new(32, 8, 0), 6, 24);
    let tcfg = TrainerConfig {
        total_epochs: 6,
        batch_size: 16,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        optimizer: OptimizerKind::AdamW { weight_decay: 0.0 },
        label_smoothing: 0.0,
        grad_clip: Some(1.0),
        seed: 0,
        device: DeviceProfile::v100(),
        sim_batch: 32,
        sim_iters_per_epoch: 100,
        eval_every: 1,
        track_ranks: false,
    };
    let full_loss_start: f32;
    {
        // Track the full-rank loss trend for comparison.
        let mut net2 =
            build_micro_bert(&MicroBertConfig::tiny_mlm(), &mut StdRng::seed_from_u64(2));
        let mut ad2 = MlmAdapter::new(MlmStream::new(32, 8, 0), 6, 24);
        let full = run_training(
            &mut net2,
            &mut ad2,
            &tcfg,
            &SwitchPolicy::FullRankOnly,
            None,
        )
        .unwrap();
        full_loss_start = full.loss_curve[0];
        assert!(full.final_metric < full_loss_start, "MLM loss should fall");
    }
    let cfg = CuttlefishConfig {
        epsilon: f32::INFINITY,
        window: 1,
        max_full_rank_fraction: 0.5,
        ..CuttlefishConfig::default()
    };
    let res = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::Cuttlefish(cfg),
        None,
    )
    .unwrap();
    // Lower-is-better metric: the run must improve over the initial loss.
    assert!(res.final_metric < full_loss_start, "{}", res.final_metric);
    assert!(res.params_final <= res.params_full);
}

#[test]
fn telemetry_stream_matches_run_result() {
    use cuttlefish::run_training_with;
    use cuttlefish_telemetry::{Event, MemoryRecorder};

    let (mut net, mut adapter) = tiny_vision();
    let cfg = CuttlefishConfig {
        epsilon: 0.5,
        max_full_rank_fraction: 0.4,
        ..CuttlefishConfig::default()
    };
    let recorder = MemoryRecorder::new();
    let res = run_training_with(
        &mut net,
        &mut adapter,
        &quick_cfg(8),
        &SwitchPolicy::Cuttlefish(cfg),
        Some(&resnet18_cifar(10)),
        &recorder,
    )
    .unwrap();

    // Exactly one switch, and it reports the same S = (Ê, K̂, R̂) that the
    // RunResult carries.
    let switches = recorder.filtered(|e| matches!(e, Event::SwitchTriggered { .. }));
    assert_eq!(switches.len(), 1, "expected exactly one SwitchTriggered");
    let Event::SwitchTriggered {
        e_hat,
        k_hat,
        decisions,
    } = &switches[0]
    else {
        unreachable!()
    };
    assert_eq!(Some(*e_hat), res.e_hat);
    assert_eq!(Some(*k_hat), res.k_hat);
    assert_eq!(decisions.len(), res.decisions.len());

    // The epoch lifecycle is fully covered and the stream ends in a
    // manifest consistent with the result.
    let starts = recorder.filtered(|e| matches!(e, Event::EpochStarted { .. }));
    let ends = recorder.filtered(|e| matches!(e, Event::EpochCompleted { .. }));
    assert_eq!(starts.len(), 8);
    assert_eq!(ends.len(), 8);
    let manifests = recorder.filtered(|e| matches!(e, Event::Manifest(_)));
    assert_eq!(manifests.len(), 1);
    let Event::Manifest(m) = &manifests[0] else {
        unreachable!()
    };
    assert_eq!(m.e_hat, res.e_hat);
    assert_eq!(m.k_hat, res.k_hat);
    assert_eq!(m.params_full, res.params_full);
    assert_eq!(m.params_final, res.params_final);
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let (mut net, mut adapter) = tiny_vision();
        run_training(
            &mut net,
            &mut adapter,
            &quick_cfg(3),
            &SwitchPolicy::FullRankOnly,
            None,
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_metric, b.best_metric);
    assert_eq!(a.loss_curve, b.loss_curve);
    assert_eq!(a.sim_hours, b.sim_hours);
}
