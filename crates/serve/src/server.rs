//! The batching server: bounded queue, dynamic batch coalescing, worker
//! pool, deadlines, and drain-then-join shutdown.
//!
//! Life of a request:
//!
//! 1. [`Server::submit`] validates the row width and applies **admission
//!    control**: if the bounded queue is full the call returns
//!    [`ServeError::Overloaded`] immediately — it never blocks the client
//!    and never grows the queue past its bound.
//! 2. A worker wakes, then **coalesces**: it takes up to
//!    `max_batch_size` queued requests, waiting at most `max_wait` for
//!    stragglers once the first request is visible.
//! 3. Deadlines are enforced twice: a request whose deadline passed while
//!    queued is rejected **at dequeue** (no wasted inference); a request
//!    whose batch finished too late is rejected **at completion** (the
//!    computed output is discarded rather than delivered late).
//! 4. Every admitted request resolves to exactly one terminal outcome on
//!    its [`ResponseHandle`] — an output row or a typed error.
//!
//! [`Server::shutdown`] drains: workers keep serving until the queue is
//! empty, then exit; the call joins them all, so when it returns every
//! admitted request has already received its terminal outcome and no
//! response can arrive afterwards.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cuttlefish_telemetry::{Event, Recorder, TraceId};

use crate::error::{DeadlineStage, ServeError, ServeResult};
use crate::frozen::{FrozenModel, Replica};
use crate::metrics::ServeMetrics;

/// What happens to requests that are admitted but still queued when a
/// drain begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainMode {
    /// Workers keep serving until the queue is empty, then exit — no
    /// admitted request is lost, at the cost of drain latency. This is
    /// what [`Server::shutdown`] does.
    #[default]
    Graceful,
    /// Queued requests resolve immediately to the typed
    /// [`ServeError::Draining`] rejection; only batches already picked up
    /// by a worker complete. Used by the fleet registry's rollback path,
    /// where the router will resubmit rejected requests elsewhere.
    Reject,
}

/// How workers coalesce queued requests into batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest batch a worker will assemble.
    pub max_batch_size: usize,
    /// How long a worker waits for stragglers after it has at least one
    /// request but fewer than `max_batch_size`.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Server sizing and batching configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads; each owns a private model replica.
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it are rejected with
    /// [`ServeError::Overloaded`].
    pub queue_bound: usize,
    /// Batch coalescing policy.
    pub policy: BatchPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_bound: 64,
            policy: BatchPolicy::default(),
        }
    }
}

/// A client's handle to one in-flight request.
#[derive(Debug)]
pub struct ResponseHandle {
    rx: mpsc::Receiver<ServeResult<Vec<f32>>>,
}

impl ResponseHandle {
    /// Blocks until the request's terminal outcome.
    ///
    /// # Errors
    ///
    /// Returns the serving error the request resolved to, or
    /// [`ServeError::Disconnected`] if the worker died before resolving it.
    pub fn wait(self) -> ServeResult<Vec<f32>> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn poll(&self) -> Option<ServeResult<Vec<f32>>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

struct Pending {
    row: Vec<f32>,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Minted at admission; follows the request across the queue and
    /// worker so its stage spans share one id.
    trace: TraceId,
    tx: mpsc::Sender<ServeResult<Vec<f32>>>,
}

struct State {
    queue: VecDeque<Pending>,
    shutting_down: bool,
    /// `true` once a [`DrainMode::Reject`] drain began: workers flush the
    /// queue with typed [`ServeError::Draining`] rejections instead of
    /// serving it.
    drain_reject: bool,
}

struct Shared {
    state: Mutex<State>,
    not_empty: Condvar,
}

impl Shared {
    /// Locks the state, recovering from a poisoned mutex: the queue
    /// discipline stays consistent under panics because every critical
    /// section leaves the state valid before any fallible call.
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running serving instance: a bounded request queue plus a fixed pool
/// of worker threads, each holding a private [`Replica`] of one frozen
/// model.
pub struct Server {
    shared: Arc<Shared>,
    /// Behind a mutex so [`Server::drain`] can join the pool through
    /// `&self` — the fleet registry holds servers in `Arc`s and drains the
    /// old version's pool while clients still hold clones for submission.
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: ServerConfig,
    input_width: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .finish()
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

impl Server {
    /// Starts a server over `model` with `config.workers` threads.
    ///
    /// All replicas are materialized up front (on the calling thread) so a
    /// model that cannot be replicated fails here, not inside a worker.
    /// The recorder receives one `serve_batch` event per executed batch
    /// and one `serve_request` event per terminal outcome; pass
    /// `Arc::new(cuttlefish_telemetry::NullRecorder)` to discard them.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for zero workers / queue bound /
    /// batch size, and propagates replica construction failures.
    pub fn start(
        model: Arc<FrozenModel>,
        config: ServerConfig,
        recorder: Arc<dyn Recorder + Send + Sync>,
    ) -> ServeResult<Server> {
        Server::start_observed(model, config, recorder, None)
    }

    /// [`Server::start`] with an optional live metrics sink.
    ///
    /// When `metrics` is provided, workers additionally record per-stage
    /// latency histograms (`serve_stage_{queue,batch,infer,respond}_us`),
    /// per-outcome request counters, batch shapes, and the queue-depth
    /// gauge — all lock-free, without storing per-request samples. Under
    /// the `obs` feature, workers also emit one `trace_span` event per
    /// stage per request through the recorder.
    ///
    /// # Errors
    ///
    /// Same contract as [`Server::start`].
    pub fn start_observed(
        model: Arc<FrozenModel>,
        config: ServerConfig,
        recorder: Arc<dyn Recorder + Send + Sync>,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> ServeResult<Server> {
        if config.workers == 0 {
            return Err(ServeError::BadConfig {
                detail: "workers must be >= 1".to_string(),
            });
        }
        let mut replicas = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            replicas.push(model.replica()?);
        }
        Server::start_with_replicas(replicas, config, recorder, metrics)
    }

    /// Starts a server over caller-constructed replicas — the replica
    /// lifecycle entry point for registries that build, warm, and retire
    /// replicas themselves (see `cuttlefish-fleet`). One worker thread is
    /// spawned per replica; `config.workers` is ignored in favor of
    /// `replicas.len()`. All replicas must serve the same model: the first
    /// replica's input width becomes the request contract.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadConfig`] for an empty replica set,
    /// mismatched replica input widths, or zero queue bound / batch size.
    pub fn start_with_replicas(
        replicas: Vec<Replica>,
        config: ServerConfig,
        recorder: Arc<dyn Recorder + Send + Sync>,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> ServeResult<Server> {
        if replicas.is_empty() {
            return Err(ServeError::BadConfig {
                detail: "at least one replica is required".to_string(),
            });
        }
        if config.queue_bound == 0 {
            return Err(ServeError::BadConfig {
                detail: "queue_bound must be >= 1".to_string(),
            });
        }
        if config.policy.max_batch_size == 0 {
            return Err(ServeError::BadConfig {
                detail: "max_batch_size must be >= 1".to_string(),
            });
        }
        let input_width = replicas[0].input_width();
        if let Some(i) = replicas.iter().position(|r| r.input_width() != input_width) {
            return Err(ServeError::BadConfig {
                detail: format!(
                    "replica {i} expects {} input features, replica 0 expects {input_width}",
                    replicas[i].input_width()
                ),
            });
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(config.queue_bound),
                shutting_down: false,
                drain_reject: false,
            }),
            not_empty: Condvar::new(),
        });
        let workers = replicas
            .into_iter()
            .enumerate()
            .map(|(i, replica)| {
                let shared = Arc::clone(&shared);
                let recorder = Arc::clone(&recorder);
                let metrics = metrics.clone();
                let policy = config.policy;
                std::thread::Builder::new()
                    .name(format!("cuttlefish-serve-{i}"))
                    .spawn(move || worker_loop(i, replica, shared, policy, recorder, metrics))
                    .map_err(|e| ServeError::BadConfig {
                        detail: format!("failed to spawn worker {i}: {e}"),
                    })
            })
            .collect::<ServeResult<Vec<_>>>()?;
        Ok(Server {
            shared,
            workers: Mutex::new(workers),
            config,
            input_width,
        })
    }

    /// Submits one request row, optionally with a deadline measured from
    /// now. Non-blocking: the queue either admits the request or the call
    /// returns a typed rejection immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] for a wrong-width row,
    /// [`ServeError::ShuttingDown`] after shutdown began, and
    /// [`ServeError::Overloaded`] when the queue is at its bound.
    pub fn submit(&self, row: Vec<f32>, deadline: Option<Duration>) -> ServeResult<ResponseHandle> {
        if row.len() != self.input_width {
            return Err(ServeError::BadInput {
                detail: format!(
                    "row has {} features, model expects {}",
                    row.len(),
                    self.input_width
                ),
            });
        }
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        {
            let mut st = self.shared.lock();
            if st.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() >= self.config.queue_bound {
                return Err(ServeError::Overloaded {
                    queue_bound: self.config.queue_bound,
                });
            }
            st.queue.push_back(Pending {
                row,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                trace: TraceId::mint(),
                tx,
            });
        }
        self.shared.not_empty.notify_all();
        Ok(ResponseHandle { rx })
    }

    /// Current queue depth (requests admitted but not yet dequeued).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Drains and stops the server: no new submissions are admitted,
    /// workers serve every already-queued request, and all worker threads
    /// are joined before this returns — so afterwards every admitted
    /// request has its terminal outcome and no response arrives later.
    ///
    /// Equivalent to [`Server::drain`] with [`DrainMode::Graceful`], but
    /// consumes the server so a stray handle cannot submit afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerPanicked`] naming the first worker
    /// whose thread join reported a panic (remaining workers are still
    /// joined).
    pub fn shutdown(self) -> ServeResult<()> {
        self.drain(DrainMode::Graceful)
    }

    /// Drains the server through a shared reference: signals shutdown,
    /// resolves the queue per `mode`, and joins every worker thread.
    ///
    /// When this returns, every admitted request has received its terminal
    /// outcome: under [`DrainMode::Graceful`] queued requests were served,
    /// under [`DrainMode::Reject`] they resolved to
    /// [`ServeError::Draining`]. Any request still queued after the pool
    /// exited (possible only if every worker panicked) is also flushed
    /// with [`ServeError::Draining`] — an admitted request is never
    /// silently dropped. Idempotent: later calls join an empty pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::WorkerPanicked`] naming the first worker
    /// whose thread join reported a panic (remaining workers are still
    /// joined and the queue is still flushed).
    pub fn drain(&self, mode: DrainMode) -> ServeResult<()> {
        self.begin_shutdown(mode);
        let handles: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            workers.drain(..).collect()
        };
        let mut panicked = None;
        for (i, handle) in handles.into_iter().enumerate() {
            if handle.join().is_err() && panicked.is_none() {
                panicked = Some(i);
            }
        }
        // The pool is gone; nothing can serve what is still queued. Flush
        // it with the typed rejection so "admitted ⇒ terminal outcome"
        // holds even if every worker panicked mid-run.
        let leftovers: Vec<Pending> = self.shared.lock().queue.drain(..).collect();
        for p in leftovers {
            let _ = p.tx.send(Err(ServeError::Draining));
        }
        match panicked {
            Some(worker) => Err(ServeError::WorkerPanicked { worker }),
            None => Ok(()),
        }
    }

    fn begin_shutdown(&self, mode: DrainMode) {
        {
            let mut st = self.shared.lock();
            st.shutting_down = true;
            if mode == DrainMode::Reject {
                st.drain_reject = true;
            }
        }
        self.shared.not_empty.notify_all();
    }
}

impl Drop for Server {
    /// Fallback for servers dropped without [`Server::shutdown`]: drains
    /// gracefully so queued requests still resolve and no detached thread
    /// outlives the server.
    fn drop(&mut self) {
        let _ = self.drain(DrainMode::Graceful);
    }
}

fn worker_loop(
    worker: usize,
    mut replica: Replica,
    shared: Arc<Shared>,
    policy: BatchPolicy,
    recorder: Arc<dyn Recorder + Send + Sync>,
    metrics: Option<Arc<ServeMetrics>>,
) {
    loop {
        let (batch, depth_after) = {
            let mut st = shared.lock();
            // Wait for work or shutdown.
            loop {
                if st.drain_reject {
                    // Reject-mode drain: everything still queued resolves
                    // to the typed Draining rejection; nothing new is
                    // inferred.
                    let queued: Vec<Pending> = st.queue.drain(..).collect();
                    drop(st);
                    for p in queued {
                        let _ = p.tx.send(Err(ServeError::Draining));
                    }
                    return;
                }
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutting_down {
                    return;
                }
                st = shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // Coalesce: wait up to max_wait for stragglers, unless the
            // batch is already full or the server is draining.
            if !st.shutting_down && st.queue.len() < policy.max_batch_size {
                let until = Instant::now() + policy.max_wait;
                while st.queue.len() < policy.max_batch_size && !st.shutting_down {
                    let now = Instant::now();
                    if now >= until {
                        break;
                    }
                    let (guard, timeout) = shared
                        .not_empty
                        .wait_timeout(st, until - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            if st.drain_reject {
                // A reject drain began while this worker was coalescing:
                // requests it never picked up get the rejection, not a
                // late batch.
                let queued: Vec<Pending> = st.queue.drain(..).collect();
                drop(st);
                for p in queued {
                    let _ = p.tx.send(Err(ServeError::Draining));
                }
                return;
            }
            let take = st.queue.len().min(policy.max_batch_size);
            let batch: Vec<Pending> = st.queue.drain(..take).collect();
            (batch, st.queue.len())
        };
        if depth_after > 0 {
            // The coalescing waits above may have absorbed wakeups meant
            // for idle peers; hand the leftover work to one of them.
            shared.not_empty.notify_one();
        }
        run_batch(
            worker,
            &mut replica,
            batch,
            depth_after,
            &*recorder,
            metrics.as_deref(),
        );
    }
}

/// Emits one `trace_span` event when the `obs` feature is on; compiles
/// to nothing otherwise, keeping the default hot path free of per-stage
/// event traffic.
#[allow(unused_variables)]
fn emit_span(recorder: &dyn Recorder, trace: TraceId, stage: &str, worker: usize, wall_ms: f64) {
    #[cfg(feature = "obs")]
    recorder.record(Event::TraceSpan {
        trace: trace.as_u64(),
        stage: stage.to_string(),
        worker: Some(worker),
        wall_ms,
    });
}

fn run_batch(
    worker: usize,
    replica: &mut Replica,
    batch: Vec<Pending>,
    queue_depth: usize,
    recorder: &dyn Recorder,
    metrics: Option<&ServeMetrics>,
) {
    let dequeued = Instant::now();
    if let Some(m) = metrics {
        m.queue_depth.set(queue_depth as i64);
    }
    // Deadline check #1: drop requests that expired while queued before
    // spending any inference on them.
    let mut live: Vec<(Pending, f64)> = Vec::with_capacity(batch.len());
    for p in batch {
        let queue_ms = ms(dequeued - p.enqueued);
        if let Some(m) = metrics {
            m.stage_queue_us.record_duration_us(dequeued - p.enqueued);
        }
        emit_span(
            recorder,
            p.trace,
            cuttlefish_telemetry::trace::stage::QUEUE,
            worker,
            queue_ms,
        );
        if p.deadline.is_some_and(|d| dequeued > d) {
            if let Some(m) = metrics {
                m.outcome_counter("deadline_dequeue").inc();
            }
            recorder.record(Event::ServeRequest {
                worker,
                batch_size: 0,
                queue_ms,
                infer_ms: 0.0,
                outcome: "deadline_dequeue".to_string(),
            });
            let _ = p.tx.send(Err(ServeError::DeadlineExceeded {
                stage: DeadlineStage::Dequeue,
            }));
        } else {
            live.push((p, queue_ms));
        }
    }
    if live.is_empty() {
        return;
    }
    let batch_size = live.len();
    let rows: Vec<Vec<f32>> = live.iter().map(|(p, _)| p.row.clone()).collect();
    let t0 = Instant::now();
    // Batch-assembly stage: deadline checks plus row copies, attributed
    // to every request that rode in the batch.
    let batch_ms = ms(t0 - dequeued);
    let result = replica.infer_batch(&rows);
    let infer_ms = ms(t0.elapsed());
    if let Some(m) = metrics {
        m.batches.inc();
        m.batch_size.record(batch_size as u64);
        for _ in 0..batch_size {
            m.stage_batch_us.record_f64(batch_ms * 1000.0);
            m.stage_infer_us.record_f64(infer_ms * 1000.0);
        }
    }
    for (p, _) in &live {
        emit_span(
            recorder,
            p.trace,
            cuttlefish_telemetry::trace::stage::BATCH,
            worker,
            batch_ms,
        );
        emit_span(
            recorder,
            p.trace,
            cuttlefish_telemetry::trace::stage::INFER,
            worker,
            infer_ms,
        );
    }
    recorder.record(Event::ServeBatch {
        worker,
        batch_size,
        queue_depth,
        wall_ms: infer_ms,
    });
    match result {
        Ok(outputs) => {
            let done = Instant::now();
            for ((p, queue_ms), out) in live.into_iter().zip(outputs) {
                // Deadline check #2: never deliver a late response.
                let (outcome, terminal) = if p.deadline.is_some_and(|d| done > d) {
                    (
                        "deadline_completion",
                        Err(ServeError::DeadlineExceeded {
                            stage: DeadlineStage::Completion,
                        }),
                    )
                } else {
                    ("ok", Ok(out))
                };
                if let Some(m) = metrics {
                    m.outcome_counter(outcome).inc();
                }
                recorder.record(Event::ServeRequest {
                    worker,
                    batch_size,
                    queue_ms,
                    infer_ms,
                    outcome: outcome.to_string(),
                });
                let trace = p.trace;
                let _ = p.tx.send(terminal);
                let respond_ms = ms(done.elapsed());
                if let Some(m) = metrics {
                    m.stage_respond_us.record_f64(respond_ms * 1000.0);
                }
                emit_span(
                    recorder,
                    trace,
                    cuttlefish_telemetry::trace::stage::RESPOND,
                    worker,
                    respond_ms,
                );
            }
        }
        Err(e) => {
            for (p, queue_ms) in live {
                if let Some(m) = metrics {
                    m.outcome_counter("failed").inc();
                }
                recorder.record(Event::ServeRequest {
                    worker,
                    batch_size,
                    queue_ms,
                    infer_ms,
                    outcome: "failed".to_string(),
                });
                let _ = p.tx.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_nn::checkpoint::Checkpoint;
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use cuttlefish_telemetry::{MemoryRecorder, NullRecorder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frozen() -> Arc<FrozenModel> {
        let build =
            || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(7));
        let mut net = build();
        let ckpt = Checkpoint::capture(&mut net);
        FrozenModel::freeze(build, ckpt).unwrap()
    }

    fn row(model: &FrozenModel, seed: usize) -> Vec<f32> {
        (0..model.input_width())
            .map(|j| ((seed * 131 + j) % 11) as f32 * 0.05)
            .collect()
    }

    #[test]
    fn serves_and_matches_direct_eval() {
        let model = frozen();
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig::default(),
            Arc::new(NullRecorder),
        )
        .unwrap();
        let mut direct = model.replica().unwrap();
        let r = row(&model, 3);
        let served = server.submit(r.clone(), None).unwrap().wait().unwrap();
        assert_eq!(served, direct.infer_one(&r).unwrap());
        server.shutdown().unwrap();
    }

    #[test]
    fn rejects_bad_width_and_overload_without_blocking() {
        let model = frozen();
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                queue_bound: 1,
                // A long straggler wait so the queue backs up deterministically.
                policy: BatchPolicy {
                    max_batch_size: 1,
                    max_wait: Duration::from_millis(50),
                },
            },
            Arc::new(NullRecorder),
        )
        .unwrap();
        assert!(matches!(
            server.submit(vec![0.0; 3], None),
            Err(ServeError::BadInput { .. })
        ));
        // Fill the queue faster than one worker with batch size 1 drains it;
        // with bound 1 a rejection must appear quickly.
        let mut handles = Vec::new();
        let mut overloaded = false;
        for i in 0..64 {
            match server.submit(row(&model, i), None) {
                Ok(h) => handles.push(h),
                Err(ServeError::Overloaded { queue_bound }) => {
                    assert_eq!(queue_bound, 1);
                    overloaded = true;
                    break;
                }
                Err(other) => panic!("unexpected admission error: {other:?}"),
            }
        }
        assert!(overloaded, "queue bound 1 never produced Overloaded");
        for h in handles {
            h.wait().unwrap();
        }
        server.shutdown().unwrap();
    }

    #[test]
    fn expired_deadline_is_rejected_at_dequeue() {
        let model = frozen();
        let recorder = Arc::new(MemoryRecorder::new());
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig::default(),
            Arc::clone(&recorder) as Arc<dyn Recorder + Send + Sync>,
        )
        .unwrap();
        // A deadline of zero is already expired when a worker picks it up.
        let h = server.submit(row(&model, 1), Some(Duration::ZERO)).unwrap();
        assert_eq!(
            h.wait(),
            Err(ServeError::DeadlineExceeded {
                stage: DeadlineStage::Dequeue
            })
        );
        server.shutdown().unwrap();
        let kinds: Vec<String> = recorder
            .events()
            .iter()
            .map(|e| e.kind().to_string())
            .collect();
        assert!(kinds.contains(&"serve_request".to_string()), "{kinds:?}");
    }

    #[test]
    fn reject_drain_resolves_queued_requests_with_typed_draining() {
        let model = frozen();
        // One worker stalled coalescing (huge batch, long straggler wait)
        // so submissions pile up in the queue deterministically.
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                queue_bound: 32,
                policy: BatchPolicy {
                    max_batch_size: 32,
                    max_wait: Duration::from_secs(5),
                },
            },
            Arc::new(NullRecorder),
        )
        .unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| server.submit(row(&model, i), None).unwrap())
            .collect();
        server.drain(DrainMode::Reject).unwrap();
        // Every admitted request has a terminal outcome already, and the
        // queued ones are the typed Draining rejection — never a silent
        // drop (channel disconnect) and never a served response after a
        // reject drain completed.
        let mut drained = 0usize;
        for h in handles {
            match h.poll().expect("queued request left without an outcome") {
                Err(ServeError::Draining) => drained += 1,
                Ok(_) => {} // picked up before the drain began
                Err(other) => panic!("unexpected terminal outcome: {other:?}"),
            }
        }
        assert!(drained > 0, "no request was queued when the drain began");
        // Idempotent: a second drain joins an empty pool.
        server.drain(DrainMode::Reject).unwrap();
    }

    #[test]
    fn start_with_replicas_serves_and_validates() {
        let model = frozen();
        let replicas = vec![model.replica().unwrap(), model.replica().unwrap()];
        let server = Server::start_with_replicas(
            replicas,
            ServerConfig::default(),
            Arc::new(NullRecorder),
            None,
        )
        .unwrap();
        let mut direct = model.replica().unwrap();
        let r = row(&model, 5);
        let served = server.submit(r.clone(), None).unwrap().wait().unwrap();
        assert_eq!(served, direct.infer_one(&r).unwrap());
        server.shutdown().unwrap();
        assert!(matches!(
            Server::start_with_replicas(
                Vec::new(),
                ServerConfig::default(),
                Arc::new(NullRecorder),
                None,
            ),
            Err(ServeError::BadConfig { .. })
        ));
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let model = frozen();
        let server = Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                queue_bound: 16,
                policy: BatchPolicy {
                    max_batch_size: 4,
                    max_wait: Duration::from_millis(20),
                },
            },
            Arc::new(NullRecorder),
        )
        .unwrap();
        let handles: Vec<_> = (0..6)
            .map(|i| server.submit(row(&model, i), None).unwrap())
            .collect();
        server.shutdown().unwrap();
        // Every admitted request already has its terminal outcome.
        for h in handles {
            let outcome = h
                .poll()
                .expect("no outcome delivered before shutdown returned");
            assert!(outcome.is_ok());
        }
    }
}
