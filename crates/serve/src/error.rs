//! Typed errors for the serving subsystem.
//!
//! Every failure a client can observe is a [`ServeError`] variant: the
//! server never panics across the API boundary and never silently drops a
//! request — an admitted request always resolves to exactly one terminal
//! outcome (a response or one of these errors).

use cuttlefish_nn::NnError;
use std::error::Error;
use std::fmt;

/// Result alias for the serving crate.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Which deadline check a request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineStage {
    /// The deadline had already passed when a worker dequeued the request;
    /// no inference was attempted on its behalf.
    Dequeue,
    /// The request was inferred as part of a batch, but the batch finished
    /// after the deadline; the computed output is discarded.
    Completion,
}

impl fmt::Display for DeadlineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlineStage::Dequeue => write!(f, "dequeue"),
            DeadlineStage::Completion => write!(f, "completion"),
        }
    }
}

/// Error type for model freezing, replica construction, and serving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded request queue was full at submit time. Admission
    /// control rejects instead of blocking, so an overloaded server sheds
    /// load at the door rather than growing unbounded latency.
    Overloaded {
        /// The configured queue bound that was hit.
        queue_bound: usize,
    },
    /// The request's deadline expired before a response could be produced.
    DeadlineExceeded {
        /// Which check (dequeue or completion) observed the expiry.
        stage: DeadlineStage,
    },
    /// The server is shutting down (or already shut down) and admits no
    /// new requests.
    ShuttingDown,
    /// The request was admitted but still queued when a drain began under
    /// [`crate::server::DrainMode::Reject`], or was left queued after the
    /// worker pool exited; the request was never inferred. Routers (e.g.
    /// the fleet registry during a hot-swap) treat this as a retryable
    /// signal: resubmit to the replacement server.
    Draining,
    /// The request payload does not match the model's input contract.
    BadInput {
        /// What was wrong with the payload.
        detail: String,
    },
    /// An underlying network operation (restore, forward) failed.
    Model(NnError),
    /// The model failed static verification at freeze time; the rendered
    /// `cuttlefish_nn::VerifyError` explains which check rejected it.
    Verify(String),
    /// A worker thread panicked; its in-flight requests resolve to
    /// [`ServeError::Disconnected`] and shutdown reports the worker.
    WorkerPanicked {
        /// Index of the worker that panicked.
        worker: usize,
    },
    /// The response channel was dropped without a terminal outcome (a
    /// worker died mid-request). Clients should treat this as a failed
    /// request of unknown state.
    Disconnected,
    /// Invalid serving configuration (zero workers, zero queue bound, …).
    BadConfig {
        /// Explanation of the invalid configuration.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queue_bound } => {
                write!(f, "request queue full (bound {queue_bound}); retry later")
            }
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at {stage}")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Draining => {
                write!(f, "server drained before the queued request was served")
            }
            ServeError::BadInput { detail } => write!(f, "bad request input: {detail}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Verify(detail) => {
                write!(f, "model failed static verification: {detail}")
            }
            ServeError::WorkerPanicked { worker } => {
                write!(f, "serving worker {worker} panicked")
            }
            ServeError::Disconnected => {
                write!(f, "response channel disconnected before a terminal outcome")
            }
            ServeError::BadConfig { detail } => write!(f, "bad serving configuration: {detail}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ServeError {
    fn from(e: NnError) -> Self {
        ServeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::Overloaded { queue_bound: 4 }
            .to_string()
            .contains("bound 4"));
        assert!(ServeError::DeadlineExceeded {
            stage: DeadlineStage::Dequeue
        }
        .to_string()
        .contains("dequeue"));
        assert!(ServeError::DeadlineExceeded {
            stage: DeadlineStage::Completion
        }
        .to_string()
        .contains("completion"));
        let e: ServeError = NnError::BadConfig { detail: "x".into() }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<ServeError>();
    }
}
