//! **cuttlefish-serve**: batched inference serving for trained Cuttlefish
//! models.
//!
//! Cuttlefish's payoff is a factorized model that is cheaper per forward
//! pass; this crate is where that cheapness is cashed in. It serves a
//! trained network — dense or factorized, restored from a
//! [`cuttlefish_nn::checkpoint::Checkpoint`] — under concurrent load:
//!
//! * [`FrozenModel`] ([`frozen`]) — an export-time gate. Freezing restores
//!   the checkpoint into a probe network, runs
//!   [`cuttlefish_nn::Network::verify`], and locks the model to eval mode
//!   (dropout identity, BatchNorm running stats). The frozen handle is
//!   immutable and `Arc`-shareable; each worker materializes a private
//!   [`Replica`] with its own preallocated forward workspaces, so the hot
//!   path takes no locks.
//! * [`Server`] ([`server`]) — a bounded request queue with **admission
//!   control** (full queue ⇒ immediate [`ServeError::Overloaded`], never
//!   blocking), a **dynamic batcher** that coalesces single-row requests
//!   up to [`BatchPolicy::max_batch_size`] waiting at most
//!   [`BatchPolicy::max_wait`] for stragglers, and a fixed pool of
//!   `std::thread` workers. Per-request **deadlines** are enforced at
//!   dequeue and again at completion.
//! * Telemetry — workers emit `serve_request` / `serve_batch` events
//!   through any [`cuttlefish_telemetry::Recorder`], and
//!   `telemetry_summary` renders them as a serving report (outcome
//!   counts, batch shapes, latency percentiles).
//! * Live metrics — [`Server::start_observed`] additionally records
//!   lock-free per-stage latency histograms, per-outcome counters, batch
//!   shapes, and a queue-depth gauge into a
//!   [`cuttlefish_telemetry::MetricsRegistry`] (see [`ServeMetrics`]),
//!   readable at any moment while serving continues. Every request also
//!   carries a [`cuttlefish_telemetry::TraceId`] minted at admission;
//!   with the `obs` feature on, workers emit one `trace_span` event per
//!   queue/batch/infer/respond stage so reports can decompose tail
//!   latency by stage.
//!
//! Batched and single-row inference agree bit-for-bit (per-row kernel
//! accumulation is independent of batch composition), so the batcher is
//! invisible in outputs — only in throughput.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cuttlefish_nn::checkpoint::Checkpoint;
//! use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
//! use cuttlefish_serve::{FrozenModel, Server, ServerConfig};
//! use cuttlefish_telemetry::NullRecorder;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let build = || build_micro_resnet18(&MicroResNetConfig::tiny(4),
//!                                     &mut StdRng::seed_from_u64(0));
//! let ckpt = Checkpoint::capture(&mut build());
//! let model = FrozenModel::freeze(build, ckpt).unwrap();
//! let server = Server::start(Arc::clone(&model), ServerConfig::default(),
//!                            Arc::new(NullRecorder)).unwrap();
//! let logits = server
//!     .submit(vec![0.1; model.input_width()], None)
//!     .unwrap()
//!     .wait()
//!     .unwrap();
//! assert_eq!(logits.len(), 4);
//! server.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frozen;
pub mod metrics;
pub mod server;

pub use error::{DeadlineStage, ServeError, ServeResult};
pub use frozen::{FrozenModel, Replica};
pub use metrics::ServeMetrics;
pub use server::{BatchPolicy, DrainMode, ResponseHandle, Server, ServerConfig};
