//! Live serving metrics: pre-resolved registry handles for the server
//! hot path.
//!
//! [`ServeMetrics::new`] registers every serving metric once and keeps
//! the `Arc` handles, so workers record with lock-free atomic ops and
//! never touch the registry's name map per request. Stage histograms are
//! in microsecond ticks (the workspace convention); counters follow
//! Prometheus naming (`*_total`, labels in `{k="v"}` form) so snapshots
//! export cleanly through `cuttlefish_telemetry::prometheus_text`.
//!
//! Outcome counters tally exactly the terminal outcomes that
//! `serve_request` events record, so a registry snapshot reconciles
//! one-to-one with the event-log `RunReport` for the same run.

use std::sync::Arc;

use cuttlefish_telemetry::{labeled, Counter, Gauge, Histogram, MetricsRegistry};

/// Shared handles to the serving metrics of one registry.
#[derive(Clone)]
pub struct ServeMetrics {
    registry: Arc<MetricsRegistry>,
    pub(crate) requests_ok: Arc<Counter>,
    pub(crate) requests_deadline_dequeue: Arc<Counter>,
    pub(crate) requests_deadline_completion: Arc<Counter>,
    pub(crate) requests_failed: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) batch_size: Arc<Histogram>,
    pub(crate) queue_depth: Arc<Gauge>,
    pub(crate) stage_queue_us: Arc<Histogram>,
    pub(crate) stage_batch_us: Arc<Histogram>,
    pub(crate) stage_infer_us: Arc<Histogram>,
    pub(crate) stage_respond_us: Arc<Histogram>,
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics")
            .field("registry", &self.registry)
            .finish()
    }
}

impl ServeMetrics {
    /// Registers (or re-resolves) the serving metrics in `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> ServeMetrics {
        let outcome =
            |name: &str| registry.counter(&labeled("serve_requests_total", &[("outcome", name)]));
        ServeMetrics {
            requests_ok: outcome("ok"),
            requests_deadline_dequeue: outcome("deadline_dequeue"),
            requests_deadline_completion: outcome("deadline_completion"),
            requests_failed: outcome("failed"),
            batches: registry.counter("serve_batches_total"),
            batch_size: registry.histogram("serve_batch_size"),
            queue_depth: registry.gauge("serve_queue_depth"),
            stage_queue_us: registry.histogram("serve_stage_queue_us"),
            stage_batch_us: registry.histogram("serve_stage_batch_us"),
            stage_infer_us: registry.histogram("serve_stage_infer_us"),
            stage_respond_us: registry.histogram("serve_stage_respond_us"),
            registry,
        }
    }

    /// The registry these handles record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The outcome counter matching a `serve_request` outcome string.
    pub(crate) fn outcome_counter(&self, outcome: &str) -> &Counter {
        match outcome {
            "ok" => &self.requests_ok,
            "deadline_dequeue" => &self.requests_deadline_dequeue,
            "deadline_completion" => &self.requests_deadline_completion,
            _ => &self.requests_failed,
        }
    }
}
