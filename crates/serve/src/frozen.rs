//! Frozen models and per-worker serving replicas.
//!
//! A [`FrozenModel`] is the immutable, `Arc`-shareable handle the server
//! hands to its workers. Freezing runs [`Network::verify`] so a model that
//! would fail to serve is rejected up front, and records the declared
//! input shape as the request contract.
//!
//! `Network` is `Send` but not `Sync` (layers cache forward state behind
//! `&mut self`), so the frozen handle does not hold a live network.
//! Instead it holds the checkpoint plus a builder closure, and each worker
//! materializes its own [`Replica`] — giving every worker private forward
//! workspaces (e.g. the conv layers' preallocated `im2col` patch buffers)
//! with zero cross-worker locking on the hot path.

use std::sync::Arc;

use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::{Act, Mode, Network, SymShape, VerifyReport};
use cuttlefish_tensor::Matrix;

use crate::error::{ServeError, ServeResult};

/// An immutable, verified, eval-locked model ready to be served.
///
/// Construct with [`FrozenModel::freeze`] (from an in-memory checkpoint)
/// or [`FrozenModel::from_checkpoint_path`] (from an exported artifact),
/// then share across workers as `Arc<FrozenModel>` and materialize one
/// [`Replica`] per worker.
pub struct FrozenModel {
    checkpoint: Checkpoint,
    builder: Box<dyn Fn() -> Network + Send + Sync>,
    input: SymShape,
    report: VerifyReport,
}

impl std::fmt::Debug for FrozenModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenModel")
            .field("network", &self.checkpoint.network)
            .field("input", &self.input)
            .field("params", &self.checkpoint.params.len())
            .finish()
    }
}

impl FrozenModel {
    /// Freezes `checkpoint` for serving.
    ///
    /// `builder` must construct a fresh network of the architecture the
    /// checkpoint was captured from (the model-zoo builders qualify);
    /// initialization values do not matter because the checkpoint is
    /// restored over them. Freezing builds one probe network, restores the
    /// checkpoint into it, and statically verifies the result, so every
    /// later [`FrozenModel::replica`] call repeats a construction that has
    /// already been proven sound.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] when the checkpoint does not restore
    /// into the built architecture, [`ServeError::Verify`] when the
    /// restored model fails static verification, and
    /// [`ServeError::BadConfig`] when the model declares no input shape or
    /// declares a sequence input (token serving is not supported yet).
    pub fn freeze(
        builder: impl Fn() -> Network + Send + Sync + 'static,
        checkpoint: Checkpoint,
    ) -> ServeResult<Arc<FrozenModel>> {
        let mut probe = builder();
        checkpoint.restore(&mut probe)?;
        let report = probe
            .verify()
            .map_err(|e| ServeError::Verify(e.to_string()))?;
        let input = probe.input_shape().ok_or_else(|| ServeError::BadConfig {
            detail: format!(
                "model `{}` declares no input shape; serving needs the request contract",
                probe.name()
            ),
        })?;
        if matches!(input, SymShape::Seq { .. }) {
            return Err(ServeError::BadConfig {
                detail: format!(
                    "model `{}` takes sequence input {input}; only flat and image inputs are servable",
                    probe.name()
                ),
            });
        }
        Ok(Arc::new(FrozenModel {
            checkpoint,
            builder: Box::new(builder),
            input,
            report,
        }))
    }

    /// Loads an exported checkpoint artifact and freezes it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] wrapping the typed I/O / corruption
    /// error when the file cannot be loaded, plus everything
    /// [`FrozenModel::freeze`] can return.
    pub fn from_checkpoint_path(
        builder: impl Fn() -> Network + Send + Sync + 'static,
        path: impl AsRef<std::path::Path>,
    ) -> ServeResult<Arc<FrozenModel>> {
        let ckpt = Checkpoint::load_from_path(path)?;
        FrozenModel::freeze(builder, ckpt)
    }

    /// The verification report produced at freeze time.
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// The per-sample input shape requests must match.
    pub fn input_shape(&self) -> SymShape {
        self.input
    }

    /// Number of `f32` features one request row must carry
    /// (`channels·height·width` for image models).
    pub fn input_width(&self) -> usize {
        self.input.width()
    }

    /// Network name the frozen checkpoint was captured from.
    pub fn network_name(&self) -> &str {
        &self.checkpoint.network
    }

    /// The frozen checkpoint itself — e.g. for re-exporting the served
    /// artifact with [`Checkpoint::save_to_path`].
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// Materializes a private serving replica: a fresh network with the
    /// frozen weights restored, permanently locked to eval mode.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] if the restore fails — possible only
    /// if the builder is non-deterministic in architecture, since freeze
    /// already proved one restore.
    pub fn replica(&self) -> ServeResult<Replica> {
        let mut net = (self.builder)();
        self.checkpoint.restore(&mut net)?;
        Ok(Replica {
            net,
            input: self.input,
        })
    }
}

/// One worker's private instance of a frozen model.
///
/// A replica only exposes eval-mode inference: dropout is the identity and
/// BatchNorm consumes its frozen running statistics, so outputs are a pure
/// function of the input rows. Batch forwards reuse the network's
/// preallocated workspaces (conv `im2col` patch buffers) across calls, so
/// steady-state serving does not reallocate per request.
#[derive(Debug)]
pub struct Replica {
    net: Network,
    input: SymShape,
}

impl Replica {
    /// Number of `f32` features one request row must carry — the same
    /// contract as [`FrozenModel::input_width`], exposed here so a server
    /// built from bare replicas ([`crate::Server::start_with_replicas`])
    /// can validate requests without the frozen handle.
    pub fn input_width(&self) -> usize {
        self.input.width()
    }

    /// Runs eval-mode inference on a batch of request rows, one output row
    /// per input row, in order.
    ///
    /// Per-row kernel accumulation is independent of batch composition,
    /// so a row's output is bit-for-bit identical whether it is served
    /// alone or coalesced into a larger batch — the round-trip tests rely
    /// on this.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::BadInput`] when the batch is empty or any row
    /// has the wrong width, and [`ServeError::Model`] when the forward
    /// pass itself fails.
    pub fn infer_batch(&mut self, rows: &[Vec<f32>]) -> ServeResult<Vec<Vec<f32>>> {
        if rows.is_empty() {
            return Err(ServeError::BadInput {
                detail: "empty batch".to_string(),
            });
        }
        let want = self.input.width();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != want {
                return Err(ServeError::BadInput {
                    detail: format!("row {i} has {} features, model expects {want}", row.len()),
                });
            }
        }
        let m = Matrix::from_rows(rows).map_err(cuttlefish_nn::NnError::from)?;
        let act = match self.input {
            SymShape::Flat { .. } => Act::flat(m),
            SymShape::Image {
                channels,
                height,
                width,
            } => Act::image(m, channels, height, width)?,
            SymShape::Seq { .. } => {
                return Err(ServeError::BadConfig {
                    detail: "sequence inputs are rejected at freeze time".to_string(),
                })
            }
        };
        let y = self.net.forward(act, Mode::Eval)?;
        let out = y.data();
        Ok((0..out.rows()).map(|i| out.row(i).to_vec()).collect())
    }

    /// Serves a single row (a batch of one).
    ///
    /// # Errors
    ///
    /// Same contract as [`Replica::infer_batch`].
    pub fn infer_one(&mut self, row: &[f32]) -> ServeResult<Vec<f32>> {
        let rows = [row.to_vec()];
        let mut out = self.infer_batch(&rows)?;
        out.pop().ok_or(ServeError::Disconnected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn builder() -> impl Fn() -> Network + Send + Sync + 'static {
        || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(7))
    }

    fn frozen() -> Arc<FrozenModel> {
        let mut net = builder()();
        let ckpt = Checkpoint::capture(&mut net);
        FrozenModel::freeze(builder(), ckpt).unwrap()
    }

    #[test]
    fn freeze_verifies_and_reports_contract() {
        let model = frozen();
        assert_eq!(model.network_name(), "micro-resnet18");
        assert_eq!(model.input_width(), 3 * 8 * 8);
        assert_eq!(model.report().network, "micro-resnet18");
        assert!(format!("{model:?}").contains("micro-resnet18"));
    }

    #[test]
    fn replica_batched_equals_single() {
        let model = frozen();
        let mut replica = model.replica().unwrap();
        let rows: Vec<Vec<f32>> = (0..3)
            .map(|i| {
                (0..model.input_width())
                    .map(|j| ((i * 31 + j) % 7) as f32 * 0.1)
                    .collect()
            })
            .collect();
        let batched = replica.infer_batch(&rows).unwrap();
        for (row, want) in rows.iter().zip(&batched) {
            let single = replica.infer_one(row).unwrap();
            assert_eq!(
                &single, want,
                "batched vs single outputs must match exactly"
            );
        }
    }

    #[test]
    fn bad_rows_are_rejected_typed() {
        let model = frozen();
        let mut replica = model.replica().unwrap();
        assert!(matches!(
            replica.infer_batch(&[]),
            Err(ServeError::BadInput { .. })
        ));
        assert!(matches!(
            replica.infer_batch(&[vec![0.0; 5]]),
            Err(ServeError::BadInput { .. })
        ));
    }

    #[test]
    fn freeze_rejects_missing_input_shape() {
        use cuttlefish_nn::layers::{Linear, Sequential};
        // A hand-built network that never declared an input contract.
        let build = || {
            let root = Sequential::new("root").push(Linear::new(
                "fc",
                4,
                2,
                true,
                &mut StdRng::seed_from_u64(0),
            ));
            Network::new("bare", root, Vec::new()).unwrap()
        };
        let mut probe = build();
        let ckpt = Checkpoint::capture(&mut probe);
        assert!(matches!(
            FrozenModel::freeze(build, ckpt),
            Err(ServeError::BadConfig { .. })
        ));
    }
}
