//! Reconciliation between the two observability planes: the live
//! metrics registry and the event log must describe the same run
//! exactly — per-outcome counter totals equal to the `serve_request`
//! event counts, batch totals equal to `serve_batch` counts, and stage
//! histogram populations consistent with the request flow.

use std::sync::Arc;
use std::time::Duration;

use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_serve::{BatchPolicy, FrozenModel, ServeMetrics, Server, ServerConfig};
use cuttlefish_telemetry::{Event, MemoryRecorder, MetricsRegistry, Recorder, RunReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn frozen() -> Arc<FrozenModel> {
    let build = || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(7));
    let mut net = build();
    let ckpt = Checkpoint::capture(&mut net);
    FrozenModel::freeze(build, ckpt).unwrap()
}

fn row(model: &FrozenModel, seed: usize) -> Vec<f32> {
    (0..model.input_width())
        .map(|j| ((seed * 131 + j) % 11) as f32 * 0.05)
        .collect()
}

/// Runs a small load with a mix of outcomes and returns the recorder
/// and registry afterwards (server fully drained).
fn run_load() -> (Arc<MemoryRecorder>, Arc<MetricsRegistry>) {
    let model = frozen();
    let recorder = Arc::new(MemoryRecorder::new());
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = Arc::new(ServeMetrics::new(Arc::clone(&registry)));
    let server = Server::start_observed(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_bound: 64,
            policy: BatchPolicy {
                max_batch_size: 4,
                max_wait: Duration::from_millis(1),
            },
        },
        Arc::clone(&recorder) as Arc<dyn Recorder + Send + Sync>,
        Some(metrics),
    )
    .unwrap();
    let mut handles = Vec::new();
    for i in 0..40 {
        // Every fourth request carries an already-expired deadline so the
        // run exercises at least two outcomes.
        let deadline = if i % 4 == 3 {
            Some(Duration::ZERO)
        } else {
            None
        };
        if let Ok(h) = server.submit(row(&model, i), deadline) {
            handles.push(h);
        }
    }
    for h in handles {
        let _ = h.wait();
    }
    server.shutdown().unwrap();
    (recorder, registry)
}

#[test]
fn registry_counters_reconcile_exactly_with_event_log() {
    let (recorder, registry) = run_load();
    let snapshot = registry.snapshot();

    // Build the event-log view through the same RunReport machinery the
    // offline report uses.
    let jsonl: String = recorder
        .events()
        .iter()
        .map(|e| e.to_jsonl() + "\n")
        .collect();
    let report = RunReport::from_jsonl(&jsonl);
    assert!(report.skipped_lines.is_empty());

    let mut event_outcomes: std::collections::BTreeMap<String, u64> = Default::default();
    let mut event_batches = 0u64;
    let mut event_batch_items = 0u64;
    for e in report.events() {
        match e {
            Event::ServeRequest { outcome, .. } => {
                *event_outcomes.entry(outcome.clone()).or_insert(0) += 1;
            }
            Event::ServeBatch { batch_size, .. } => {
                event_batches += 1;
                event_batch_items += *batch_size as u64;
            }
            _ => {}
        }
    }
    assert!(
        !event_outcomes.is_empty(),
        "no serve_request events recorded"
    );

    // Per-outcome counters reconcile exactly.
    let mut total_requests = 0u64;
    for (outcome, count) in &event_outcomes {
        let name = format!("serve_requests_total{{outcome=\"{outcome}\"}}");
        assert_eq!(
            snapshot.counter(&name),
            Some(*count),
            "counter {name} disagrees with event log"
        );
        total_requests += count;
    }
    // Outcomes not hit in this run must read zero, not be missing.
    for (name, value) in &snapshot.counters {
        if let Some(outcome) = name
            .strip_prefix("serve_requests_total{outcome=\"")
            .and_then(|r| r.strip_suffix("\"}"))
        {
            if !event_outcomes.contains_key(outcome) {
                assert_eq!(*value, 0, "counter {name} counted ghost requests");
            }
        }
    }
    assert_eq!(total_requests, 40);

    // Batch totals reconcile exactly.
    assert_eq!(snapshot.counter("serve_batches_total"), Some(event_batches));
    let batch_hist = snapshot.histogram("serve_batch_size").unwrap();
    assert_eq!(batch_hist.count, event_batches);
    assert_eq!(batch_hist.sum, event_batch_items);

    // Stage histogram populations: every admitted request passes the
    // queue stage; only inferred (non-expired) requests hit infer.
    let queue_hist = snapshot.histogram("serve_stage_queue_us").unwrap();
    assert_eq!(queue_hist.count, total_requests);
    let infer_hist = snapshot.histogram("serve_stage_infer_us").unwrap();
    let inferred: u64 = event_outcomes
        .iter()
        .filter(|(k, _)| k.as_str() != "deadline_dequeue")
        .map(|(_, n)| n)
        .sum();
    assert_eq!(infer_hist.count, inferred);
}

#[cfg(feature = "obs")]
#[test]
fn trace_spans_decompose_each_request_by_stage() {
    use std::collections::HashMap;

    let (recorder, _registry) = run_load();
    let mut by_trace: HashMap<u64, Vec<String>> = HashMap::new();
    let mut outcomes: HashMap<String, u64> = HashMap::new();
    for e in recorder.events() {
        match e {
            Event::TraceSpan {
                trace,
                stage,
                worker,
                wall_ms,
            } => {
                assert!(worker.is_some(), "serve spans attribute a worker");
                assert!(wall_ms >= 0.0);
                by_trace.entry(trace).or_default().push(stage);
            }
            Event::ServeRequest { outcome, .. } => {
                *outcomes.entry(outcome).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    assert_eq!(by_trace.len(), 40, "one trace id per admitted request");
    let ok = outcomes.get("ok").copied().unwrap_or(0);
    let expired = outcomes.get("deadline_dequeue").copied().unwrap_or(0);
    assert!(ok > 0 && expired > 0, "outcomes: {outcomes:?}");
    let full_traces = by_trace
        .values()
        .filter(|stages| {
            stages.len() == 4
                && ["queue", "batch", "infer", "respond"]
                    .iter()
                    .all(|s| stages.iter().any(|x| x == s))
        })
        .count() as u64;
    let queue_only = by_trace
        .values()
        .filter(|stages| stages.as_slice() == ["queue".to_string()])
        .count() as u64;
    // Delivered verdicts (ok or expired-at-completion) decompose into
    // all four stages; requests expired at dequeue stop after queue.
    let late = outcomes.get("deadline_completion").copied().unwrap_or(0);
    assert_eq!(full_traces, ok + late);
    assert_eq!(queue_only, expired);
}
