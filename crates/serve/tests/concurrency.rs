//! Concurrency contract of the serving queue: under multi-threaded load
//! against a deliberately tiny queue, every submitted request resolves to
//! exactly one terminal outcome (response, Overloaded, or
//! DeadlineExceeded), no response arrives after shutdown returns, and all
//! workers join cleanly.

use std::sync::Arc;
use std::time::Duration;

use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_serve::{BatchPolicy, FrozenModel, ServeError, Server, ServerConfig};
use cuttlefish_telemetry::NullRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn frozen() -> Arc<FrozenModel> {
    let build =
        || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(21));
    let mut net = build();
    let ckpt = Checkpoint::capture(&mut net);
    FrozenModel::freeze(build, ckpt).unwrap()
}

/// Per-client tally of terminal outcomes.
#[derive(Default, Debug)]
struct Tally {
    submitted: usize,
    ok: usize,
    overloaded: usize,
    deadline: usize,
}

#[test]
fn every_request_gets_exactly_one_outcome_under_contention() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 30;

    let model = frozen();
    let server = Arc::new(
        Server::start(
            Arc::clone(&model),
            ServerConfig {
                workers: 2,
                // Small bound so admission control actually fires under load.
                queue_bound: 3,
                policy: BatchPolicy {
                    max_batch_size: 2,
                    max_wait: Duration::from_millis(1),
                },
            },
            Arc::new(NullRecorder),
        )
        .unwrap(),
    );

    let width = model.input_width();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                for i in 0..PER_CLIENT {
                    let row: Vec<f32> = (0..width)
                        .map(|j| ((c + i * 7 + j) % 13) as f32 * 0.1)
                        .collect();
                    // Every 5th request carries an already-expired deadline
                    // so both deadline stages stay reachable under load.
                    let deadline = (i % 5 == 4).then_some(Duration::ZERO);
                    tally.submitted += 1;
                    match server.submit(row, deadline) {
                        Err(ServeError::Overloaded { queue_bound }) => {
                            assert_eq!(queue_bound, 3);
                            tally.overloaded += 1;
                        }
                        Err(other) => panic!("unexpected admission error: {other:?}"),
                        Ok(handle) => match handle.wait() {
                            Ok(out) => {
                                assert_eq!(out.len(), 4, "wrong logit width");
                                tally.ok += 1;
                            }
                            Err(ServeError::DeadlineExceeded { .. }) => tally.deadline += 1,
                            Err(other) => panic!("unexpected terminal outcome: {other:?}"),
                        },
                    }
                }
                tally
            })
        })
        .collect();

    let mut total = Tally::default();
    for c in clients {
        let t = c.join().expect("client thread panicked");
        total.submitted += t.submitted;
        total.ok += t.ok;
        total.overloaded += t.overloaded;
        total.deadline += t.deadline;
    }
    // Exactly one outcome per submission, nothing lost, nothing duplicated.
    assert_eq!(total.submitted, CLIENTS * PER_CLIENT);
    assert_eq!(
        total.ok + total.overloaded + total.deadline,
        total.submitted,
        "outcome accounting leaked: {total:?}"
    );
    assert!(total.ok > 0, "no request ever succeeded: {total:?}");

    // Clean join: shutdown reports no worker panics.
    let server = Arc::into_inner(server).expect("clients still hold server handles");
    server.shutdown().unwrap();
}

#[test]
fn no_responses_arrive_after_shutdown_returns() {
    let model = frozen();
    let server = Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_bound: 16,
            policy: BatchPolicy {
                max_batch_size: 4,
                max_wait: Duration::from_millis(10),
            },
        },
        Arc::new(NullRecorder),
    )
    .unwrap();
    let width = model.input_width();
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let row: Vec<f32> = (0..width).map(|j| ((i + j) % 9) as f32 * 0.1).collect();
            server.submit(row, None).unwrap()
        })
        .collect();
    server.shutdown().unwrap();
    // Shutdown drained the queue and joined the workers, so every handle
    // must already hold its terminal outcome — a poll() cannot come back
    // empty, and therefore no response can materialize later.
    for (i, h) in handles.into_iter().enumerate() {
        let outcome = h
            .poll()
            .unwrap_or_else(|| panic!("request {i} had no outcome after shutdown returned"));
        assert!(outcome.is_ok(), "request {i} failed: {outcome:?}");
    }
}
