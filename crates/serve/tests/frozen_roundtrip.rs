//! Round-trip serving tests: a checkpoint captured from a trained
//! (optionally factorized) model and restored into serving replicas must
//! produce outputs bit-for-bit identical to a direct eval forward on the
//! restored network — across dense and factorized states at
//! ρ ∈ {0.25, 1.0}. A dedicated case additionally pushes the checkpoint
//! through the atomic file path and checks the served outputs survive
//! save → load unchanged.

use std::sync::Arc;
use std::time::Duration;

use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{
    build_micro_mixer, build_micro_resnet18, build_micro_vgg19, MicroMixerConfig,
    MicroResNetConfig, MicroVggConfig,
};
use cuttlefish_nn::Network;
use cuttlefish_serve::{BatchPolicy, FrozenModel, Server, ServerConfig};
use cuttlefish_telemetry::NullRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn deterministic_row(width: usize, seed: usize) -> Vec<f32> {
    (0..width)
        .map(|j| (((seed * 257 + j * 31) % 23) as f32 - 11.0) * 0.07)
        .collect()
}

/// Factorizes `net` at a fixed global ratio (when `rho` is set), captures
/// a checkpoint of it, and returns the frozen model.
fn capture_and_freeze<B>(label: &str, build: B, rho: Option<f32>) -> Arc<FrozenModel>
where
    B: Fn() -> Network + Send + Sync + 'static,
{
    let mut trained = build();
    if let Some(rho) = rho {
        let decisions = switch_to_low_rank(
            &mut trained,
            &SwitchOptions {
                k: 0,
                plan: RankPlan::FixedRatio { rho },
                extra_bn: false,
                frobenius_decay: None,
            },
        )
        .unwrap_or_else(|e| panic!("{label}: switch failed: {e}"));
        assert!(
            decisions.iter().any(|d| d.chosen.is_some()),
            "{label}: rho {rho} factorized nothing"
        );
    }
    let ckpt = Checkpoint::capture(&mut trained);
    FrozenModel::freeze(build, ckpt).unwrap_or_else(|e| panic!("{label}: freeze failed: {e}"))
}

/// Serves six deterministic rows through a batching server and asserts
/// each served output equals a direct eval forward bit-for-bit.
fn roundtrip_case<B>(label: &str, build: B, rho: Option<f32>)
where
    B: Fn() -> Network + Send + Sync + Clone + 'static,
{
    let model = capture_and_freeze(label, build, rho);
    let mut direct = model.replica().unwrap();

    let server = Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_bound: 32,
            policy: BatchPolicy {
                max_batch_size: 4,
                max_wait: Duration::from_millis(5),
            },
        },
        Arc::new(NullRecorder),
    )
    .unwrap();

    let rows: Vec<Vec<f32>> = (0..6)
        .map(|i| deterministic_row(model.input_width(), i))
        .collect();
    let handles: Vec<_> = rows
        .iter()
        .map(|r| server.submit(r.clone(), None).unwrap())
        .collect();
    for (row, handle) in rows.iter().zip(handles) {
        let served = handle
            .wait()
            .unwrap_or_else(|e| panic!("{label}: serve failed: {e}"));
        let want = direct.infer_one(row).unwrap();
        assert_eq!(
            served, want,
            "{label}: served output differs from direct eval forward"
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn resnet18_serves_dense_and_factorized_bit_for_bit() {
    let build =
        || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(11));
    roundtrip_case("resnet18-dense", build.clone(), None);
    roundtrip_case("resnet18-rho25", build.clone(), Some(0.25));
    roundtrip_case("resnet18-rho100", build, Some(1.0));
}

#[test]
fn vgg19_serves_factorized_bit_for_bit() {
    let build = || build_micro_vgg19(&MicroVggConfig::tiny(3), &mut StdRng::seed_from_u64(12));
    roundtrip_case("vgg19-rho25", build.clone(), Some(0.25));
    roundtrip_case("vgg19-rho100", build, Some(1.0));
}

#[test]
fn mixer_serves_factorized_bit_for_bit() {
    let build = || build_micro_mixer(&MicroMixerConfig::tiny(5), &mut StdRng::seed_from_u64(13));
    roundtrip_case("mixer-rho25", build.clone(), Some(0.25));
    roundtrip_case("mixer-rho100", build, Some(1.0));
}

#[test]
fn file_roundtrip_preserves_served_outputs() {
    let build =
        || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(11));
    let in_memory = capture_and_freeze("resnet18-file", build, Some(0.25));

    // Push the same checkpoint through the atomic file path and freeze
    // again from disk; the loaded replica must match the in-memory one
    // bit-for-bit.
    let dir = std::env::temp_dir().join(format!("cuttlefish-serve-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt.json");
    in_memory.checkpoint().save_to_path(&path).unwrap();
    let from_file = FrozenModel::from_checkpoint_path(build, &path).unwrap();

    let mut a = in_memory.replica().unwrap();
    let mut b = from_file.replica().unwrap();
    for i in 0..4 {
        let row = deterministic_row(in_memory.input_width(), i);
        assert_eq!(
            a.infer_one(&row).unwrap(),
            b.infer_one(&row).unwrap(),
            "row {i}: outputs changed across save -> load"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
