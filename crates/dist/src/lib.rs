//! Data-parallel Cuttlefish training with low-rank-compressed gradient
//! exchange.
//!
//! The Pufferfish/Cuttlefish lineage observes that factorized training
//! shrinks not only compute but *communication*: once a layer trains as
//! `U·Vᵀ`, a data-parallel all-reduce moves the factor gradients instead
//! of the dense gradient, cutting bytes on the wire by the same rank
//! ratio ρ as the parameter count. This crate reproduces that effect in
//! process: `N` worker threads train on disjoint shards of a synthetic
//! vision task, exchange gradients through an in-memory collective every
//! lockstep round, and worker 0 runs Algorithm 1 (stable-rank tracking →
//! SVD switch) on behalf of the fleet — the coordinator then broadcasts
//! the chosen per-layer ranks so every replica factorizes identically and
//! the wire format flips from dense to factor frames in the same round.
//!
//! Structure:
//!
//! - [`schema`] — the wire format: a [`schema::ParamSchema`] describes the
//!   exact parameter shapes a frame must carry; gradient and
//!   parameter-state frames are length-validated little-endian `f32`
//!   buffers so byte counts reported by the ledger are real.
//! - [`exchange`] — the pluggable collective: [`GradientExchange`] with a
//!   [`DenseAllReduce`] that refuses factorized schemas (modeling a
//!   legacy fixed-schema collective) and a shape-aware
//!   [`FactorAllReduce`].
//! - [`shard`] — disjoint row-range dataset shards and per-worker RNG
//!   seed derivation from a single run seed.
//! - [`fault`] — a deterministic fault plan: injected stragglers (their
//!   gradients arrive rounds late and are applied or dropped under a
//!   staleness bound), worker crashes, and elastic joins with
//!   digest-verified state catch-up.
//! - [`worker`] — the per-worker thread: owns a model replica, a shard
//!   adapter, and a [`cuttlefish::StepEngine`]; speaks a small
//!   command/reply protocol over channels.
//! - [`coordinator`] — the lockstep driver: [`run_distributed`] /
//!   [`DistTrainer`], the communication ledger, and telemetry emission.
//! - [`metrics`] — live observability: [`run_distributed_observed`]
//!   records lock-free registry metrics each round ([`DistMetrics`]:
//!   per-phase round counters, wire-byte totals, stale/dropped tallies,
//!   compute/exchange stage histograms), and every round carries a trace
//!   id through the worker protocol; the `obs` feature additionally
//!   emits per-stage `trace_span` events through the recorder.
//!
//! Determinism is load-bearing: every replica is constructed from the
//! same builder (identical initialization), applies the same averaged
//! update each round (reduction folds contributions in worker-id order,
//! so the f32 sum order is fixed), and derives its batch RNG from
//! [`shard::worker_seed`]. Faults come from the plan, never from timing,
//! so two runs of the same config are bit-identical — a property the
//! integration tests assert by digesting final parameter state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cuttlefish::CuttlefishError;
use cuttlefish_nn::NnError;
use cuttlefish_tensor::TensorError;
use std::fmt;

pub mod coordinator;
pub mod exchange;
pub mod fault;
pub mod metrics;
pub mod schema;
pub mod shard;
pub mod worker;

pub use coordinator::{
    run_distributed, run_distributed_observed, run_distributed_with, CommLedger, DistConfig,
    DistRunResult, ExchangeKind, WorkerSummary,
};
pub use exchange::{DenseAllReduce, FactorAllReduce, GradientExchange};
pub use fault::{
    contribution_outcome, ContributionOutcome, CrashEvent, FaultPlan, JoinEvent, StragglerEvent,
};
pub use metrics::DistMetrics;
pub use schema::ParamSchema;
pub use shard::{shard_vision_task, worker_seed};
pub use worker::NetBuilder;

/// Errors surfaced by the distributed runtime.
#[derive(Debug)]
pub enum DistError {
    /// A run-level configuration value was invalid.
    Config {
        /// The offending field or concept.
        field: &'static str,
        /// Explanation of the rejected value.
        detail: String,
    },
    /// A wire frame disagreed with the live parameter schema.
    Frame {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// An exchange refused the current schema (e.g. [`DenseAllReduce`]
    /// handed a factorized model).
    Unsupported {
        /// The exchange that refused.
        exchange: &'static str,
        /// Why the schema is not exchangeable.
        detail: String,
    },
    /// A worker thread failed or stopped responding.
    Worker {
        /// The worker id.
        worker: usize,
        /// What went wrong.
        detail: String,
    },
    /// Replicas diverged: a state digest did not match worker 0's.
    Desync {
        /// The worker whose digest disagreed.
        worker: usize,
        /// Worker 0's digest.
        expected: u64,
        /// The diverged digest.
        got: u64,
    },
    /// An underlying training-stack error.
    Train(CuttlefishError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Config { field, detail } => {
                write!(f, "invalid dist configuration: `{field}` {detail}")
            }
            DistError::Frame { detail } => write!(f, "frame/schema mismatch: {detail}"),
            DistError::Unsupported { exchange, detail } => {
                write!(f, "exchange `{exchange}` refused schema: {detail}")
            }
            DistError::Worker { worker, detail } => {
                write!(f, "worker {worker} failed: {detail}")
            }
            DistError::Desync {
                worker,
                expected,
                got,
            } => write!(
                f,
                "worker {worker} desynchronized: state digest {got:#018x} != {expected:#018x}"
            ),
            DistError::Train(e) => write!(f, "training error: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<CuttlefishError> for DistError {
    fn from(e: CuttlefishError) -> Self {
        DistError::Train(e)
    }
}

impl From<NnError> for DistError {
    fn from(e: NnError) -> Self {
        DistError::Train(CuttlefishError::Nn(e))
    }
}

impl From<TensorError> for DistError {
    fn from(e: TensorError) -> Self {
        DistError::Train(CuttlefishError::Tensor(e))
    }
}

/// Result alias for this crate.
pub type DistResult<T> = std::result::Result<T, DistError>;
