//! The per-worker thread.
//!
//! A worker owns one model replica, one dataset shard wrapped in a
//! [`VisionAdapter`], one [`StepEngine`], and one collective instance. It
//! speaks a small command/reply protocol over `mpsc` channels: the
//! coordinator's per-worker sender carries [`Command`]s, a shared reply
//! channel carries [`Reply`]s. Commands are processed strictly in FIFO
//! order, which is what makes the lockstep protocol simple: `Apply` for
//! round `r` is always queued before `Step` for round `r+1`, so a worker
//! can never compute a step against pre-update parameters by accident.

use crate::coordinator::ExchangeKind;
use crate::exchange::GradientExchange;
use crate::schema::{apply_state, capture_state, state_digest, ParamSchema};
use crate::shard::worker_seed;
use crate::{DistError, DistResult};
use cuttlefish::adapter::{TaskAdapter, TaskBatch, VisionAdapter};
use cuttlefish::factorize::{switch_to_low_rank, RankDecision, RankPlan, SwitchOptions};
use cuttlefish::{OptimizerKind, StepEngine};
use cuttlefish_data::VisionTask;
use cuttlefish_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds one fresh replica. Every worker calls the same builder, and the
/// builder must be internally seeded, so all replicas start bit-identical.
pub type NetBuilder = Arc<dyn Fn() -> Network + Send + Sync>;

/// Per-worker static configuration, copied from the run config.
#[derive(Clone)]
pub(crate) struct WorkerSetup {
    pub run_seed: u64,
    pub batch_size: usize,
    pub optimizer: OptimizerKind,
    pub grad_clip: Option<f32>,
    pub label_smoothing: f32,
    pub augment: bool,
    pub exchange: ExchangeKind,
}

/// Coordinator → worker.
pub(crate) enum Command {
    /// Compute one local step (forward/backward on the next shard batch)
    /// and upload the gradient frame. `delay_ms` is a fault-plan sleep;
    /// `trace` is the round's trace id, echoed back on the reply so
    /// stragglers' frames stay attributable to their origin round.
    Step {
        step: usize,
        delay_ms: u64,
        trace: u64,
    },
    /// Load the averaged gradient frame and take one optimizer step.
    Apply { lr: f32, frame: Vec<u8> },
    /// Worker 0 only: run the switch locally and report its decisions.
    PlanSwitch { opts: SwitchOptions },
    /// Everyone else: replay worker 0's chosen ranks exactly.
    ApplySwitch {
        ranks: Vec<(String, usize)>,
        extra_bn: bool,
        frobenius_decay: Option<f32>,
    },
    /// Upload the full parameter + optimizer-slot state.
    CaptureState,
    /// Upload the current 2-D weight matrices of the named targets (for
    /// coordinator-side stable-rank tracking).
    ReportWeights { names: Vec<String> },
    /// Overwrite local state from a peer frame and fast-forward the
    /// optimizer clock to `opt_steps` applied updates.
    SyncState { frame: Vec<u8>, opt_steps: usize },
    /// Evaluate the (global) validation split.
    Evaluate,
    /// Fault injection: die abruptly, replying nothing.
    Crash,
    /// Clean exit.
    Shutdown,
}

/// Worker → coordinator.
pub(crate) enum Reply {
    Grads {
        worker: usize,
        step: usize,
        loss: f32,
        compute_ms: f64,
        frame: Vec<u8>,
        trace: u64,
    },
    SwitchDone {
        worker: usize,
        decisions: Vec<RankDecision>,
        digest: u64,
        params: usize,
    },
    State {
        worker: usize,
        frame: Vec<u8>,
    },
    Weights {
        worker: usize,
        mats: Vec<cuttlefish_tensor::Matrix>,
    },
    Synced {
        worker: usize,
        digest: u64,
    },
    Metric {
        worker: usize,
        value: f32,
    },
    Stopped {
        worker: usize,
    },
    Failed {
        worker: usize,
        detail: String,
    },
}

/// A live worker from the coordinator's point of view (keyed by id in
/// the coordinator's fleet map).
pub(crate) struct WorkerHandle {
    pub tx: Sender<Command>,
    pub join: JoinHandle<()>,
}

struct WorkerState {
    id: usize,
    net: Network,
    adapter: VisionAdapter,
    engine: StepEngine,
    exchange: Box<dyn GradientExchange>,
    schema: ParamSchema,
    rng: StdRng,
    queue: VecDeque<TaskBatch>,
    epoch: usize,
    setup: WorkerSetup,
}

impl WorkerState {
    fn new(
        id: usize,
        setup: WorkerSetup,
        shard: VisionTask,
        builder: &NetBuilder,
    ) -> DistResult<Self> {
        let mut net = builder();
        let schema = ParamSchema::of(&mut net)?;
        let mut adapter = VisionAdapter::new(shard);
        adapter.augment = setup.augment;
        let engine = StepEngine::new(setup.optimizer, setup.grad_clip, setup.label_smoothing);
        let rng = StdRng::seed_from_u64(worker_seed(setup.run_seed, id));
        Ok(WorkerState {
            id,
            net,
            adapter,
            engine,
            exchange: setup.exchange.build(),
            schema,
            rng,
            queue: VecDeque::new(),
            epoch: 0,
            setup,
        })
    }

    fn next_batch(&mut self) -> DistResult<TaskBatch> {
        if self.queue.is_empty() {
            let batches =
                self.adapter
                    .train_batches(self.epoch, self.setup.batch_size, &mut self.rng)?;
            self.epoch += 1;
            self.queue = batches.into();
        }
        self.queue.pop_front().ok_or_else(|| DistError::Worker {
            worker: self.id,
            detail: "shard produced no batches".to_string(),
        })
    }

    fn step(&mut self, step: usize, delay_ms: u64, trace: u64) -> DistResult<Reply> {
        let t0 = Instant::now();
        let batch = self.next_batch()?;
        let loss = self
            .engine
            .forward_backward(&mut self.net, &self.adapter, batch)?;
        let grads = self.net.collect_grads();
        let frame = self.exchange.encode(&self.schema, &grads)?;
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        Ok(Reply::Grads {
            worker: self.id,
            step,
            loss,
            compute_ms: t0.elapsed().as_secs_f64() * 1e3,
            frame,
            trace,
        })
    }

    fn apply(&mut self, lr: f32, frame: &[u8]) -> DistResult<()> {
        let grads = self.exchange.decode(&self.schema, frame)?;
        self.net.load_grads(&grads)?;
        let _ = self.engine.apply(&mut self.net, lr);
        Ok(())
    }

    fn plan_switch(&mut self, opts: &SwitchOptions) -> DistResult<Reply> {
        let decisions = switch_to_low_rank(&mut self.net, opts)?;
        self.schema = ParamSchema::of(&mut self.net)?;
        let digest = state_digest(&capture_state(&mut self.net));
        Ok(Reply::SwitchDone {
            worker: self.id,
            decisions,
            digest,
            params: self.net.param_count(),
        })
    }

    fn apply_switch(
        &mut self,
        ranks: Vec<(String, usize)>,
        extra_bn: bool,
        frobenius_decay: Option<f32>,
    ) -> DistResult<Reply> {
        let opts = SwitchOptions {
            k: 0,
            plan: RankPlan::Explicit {
                ranks: ranks.into_iter().collect::<HashMap<String, usize>>(),
            },
            extra_bn,
            frobenius_decay,
        };
        self.plan_switch(&opts)
    }

    fn sync_state(&mut self, frame: &[u8], opt_steps: usize) -> DistResult<Reply> {
        apply_state(&mut self.net, frame)?;
        // A synced replica must also match its peers' optimizer clock;
        // rebuilding the engine discards any partial local history first.
        self.engine = StepEngine::new(
            self.setup.optimizer,
            self.setup.grad_clip,
            self.setup.label_smoothing,
        );
        self.engine.sync_time(opt_steps);
        let digest = state_digest(&capture_state(&mut self.net));
        Ok(Reply::Synced {
            worker: self.id,
            digest,
        })
    }
}

/// Spawns one worker thread and returns its command sender. The thread
/// replies `Failed` and exits on the first error; it exits silently if
/// the command channel closes.
pub(crate) fn spawn_worker(
    id: usize,
    setup: WorkerSetup,
    shard: VisionTask,
    builder: NetBuilder,
    reply: Sender<Reply>,
) -> WorkerHandle {
    let (tx, rx): (Sender<Command>, Receiver<Command>) = std::sync::mpsc::channel();
    let join = std::thread::spawn(move || {
        let mut state = match WorkerState::new(id, setup, shard, &builder) {
            Ok(s) => s,
            Err(e) => {
                let _ = reply.send(Reply::Failed {
                    worker: id,
                    detail: e.to_string(),
                });
                return;
            }
        };
        while let Ok(cmd) = rx.recv() {
            let outcome: DistResult<Option<Reply>> = match cmd {
                Command::Step {
                    step,
                    delay_ms,
                    trace,
                } => state.step(step, delay_ms, trace).map(Some),
                Command::Apply { lr, frame } => state.apply(lr, &frame).map(|()| None),
                Command::PlanSwitch { opts } => state.plan_switch(&opts).map(Some),
                Command::ApplySwitch {
                    ranks,
                    extra_bn,
                    frobenius_decay,
                } => state
                    .apply_switch(ranks, extra_bn, frobenius_decay)
                    .map(Some),
                Command::CaptureState => Ok(Some(Reply::State {
                    worker: id,
                    frame: capture_state(&mut state.net),
                })),
                Command::ReportWeights { names } => {
                    let mut mats = Vec::with_capacity(names.len());
                    let mut res = Ok(());
                    for name in &names {
                        match state.net.weight_matrix(name) {
                            Ok(m) => mats.push(m),
                            Err(e) => {
                                res = Err(DistError::from(e));
                                break;
                            }
                        }
                    }
                    res.map(|()| Some(Reply::Weights { worker: id, mats }))
                }
                Command::SyncState { frame, opt_steps } => {
                    state.sync_state(&frame, opt_steps).map(Some)
                }
                Command::Evaluate => state
                    .adapter
                    .evaluate(&mut state.net)
                    .map(|value| Some(Reply::Metric { worker: id, value }))
                    .map_err(DistError::from),
                Command::Crash => return,
                Command::Shutdown => {
                    let _ = reply.send(Reply::Stopped { worker: id });
                    return;
                }
            };
            match outcome {
                Ok(Some(r)) => {
                    if reply.send(r).is_err() {
                        return;
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    let _ = reply.send(Reply::Failed {
                        worker: id,
                        detail: e.to_string(),
                    });
                    return;
                }
            }
        }
    });
    WorkerHandle { tx, join }
}
