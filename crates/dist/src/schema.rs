//! The wire format shared by every exchange.
//!
//! A [`ParamSchema`] is the flattened list of `(name, rows, cols)` for
//! every trainable parameter of a replica, in `visit_params` order. Both
//! frame kinds are raw little-endian `f32` buffers validated against the
//! schema on decode, so the byte counts the coordinator's ledger reports
//! are the real payload sizes — the ρ communication drop after the
//! low-rank switch is measured, not estimated.
//!
//! Two frame kinds exist:
//!
//! - **Gradient frames** ([`encode_grads`] / [`decode_grads`]): the
//!   concatenation of every parameter gradient, fixed-size per schema.
//! - **State frames** ([`capture_state`] / [`apply_state`]): parameter
//!   values *plus* optimizer slots (momentum / Adam moments), used for
//!   elastic-join catch-up and straggler resync. Slots are lazily created
//!   by the optimizer, so each is prefixed with its shape and count.
//!
//! [`state_digest`] hashes a frame (FNV-1a 64) so the coordinator can
//! verify that a synced replica landed bit-identical to worker 0.

use crate::{DistError, DistResult};
use cuttlefish_nn::Network;
use cuttlefish_tensor::Matrix;

/// Shape of one trainable parameter on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name (from `visit_params_named`).
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
}

/// The flattened parameter layout of a replica, in visitation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSchema {
    /// Per-parameter shapes.
    pub specs: Vec<ParamSpec>,
    /// Whether any factorization target of the model is currently
    /// factorized (the schema carries `U`/`Vᵀ` factors, not dense
    /// weights).
    pub factored: bool,
}

impl ParamSchema {
    /// Reads the live schema off a network.
    ///
    /// # Errors
    ///
    /// Propagates target-resolution errors from the factorization probe.
    pub fn of(net: &mut Network) -> DistResult<ParamSchema> {
        let specs = net
            .param_specs()
            .into_iter()
            .map(|(name, (rows, cols))| ParamSpec { name, rows, cols })
            .collect();
        let mut factored = false;
        let names: Vec<String> = net.targets().iter().map(|t| t.name.clone()).collect();
        for name in names {
            if net.is_factored(&name)? {
                factored = true;
                break;
            }
        }
        Ok(ParamSchema { specs, factored })
    }

    /// Total number of `f32` scalars in one gradient frame.
    pub fn scalars(&self) -> usize {
        self.specs.iter().map(|s| s.rows * s.cols).sum()
    }

    /// Size of one gradient frame in bytes.
    pub fn frame_bytes(&self) -> usize {
        self.scalars() * 4
    }

    /// Checks a matrix list against the schema, naming the first offender.
    ///
    /// # Errors
    ///
    /// [`DistError::Frame`] on count or shape mismatch.
    pub fn matches(&self, mats: &[Matrix]) -> DistResult<()> {
        if mats.len() != self.specs.len() {
            return Err(DistError::Frame {
                detail: format!(
                    "expected {} parameters, got {}",
                    self.specs.len(),
                    mats.len()
                ),
            });
        }
        for (spec, m) in self.specs.iter().zip(mats) {
            if m.rows() != spec.rows || m.cols() != spec.cols {
                return Err(DistError::Frame {
                    detail: format!(
                        "`{}` expects {}x{}, frame carries {}x{}",
                        spec.name,
                        spec.rows,
                        spec.cols,
                        m.rows(),
                        m.cols()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Serializes one gradient set into a wire frame.
///
/// # Errors
///
/// [`DistError::Frame`] when the gradients disagree with the schema.
pub fn encode_grads(schema: &ParamSchema, grads: &[Matrix]) -> DistResult<Vec<u8>> {
    schema.matches(grads)?;
    let mut out = Vec::with_capacity(schema.frame_bytes());
    for g in grads {
        g.write_le_bytes(&mut out);
    }
    Ok(out)
}

/// Deserializes a wire frame back into per-parameter gradients.
///
/// # Errors
///
/// [`DistError::Frame`] when the byte length disagrees with the schema.
pub fn decode_grads(schema: &ParamSchema, frame: &[u8]) -> DistResult<Vec<Matrix>> {
    if frame.len() != schema.frame_bytes() {
        return Err(DistError::Frame {
            detail: format!(
                "gradient frame is {} bytes, schema expects {}",
                frame.len(),
                schema.frame_bytes()
            ),
        });
    }
    let mut mats = Vec::with_capacity(schema.specs.len());
    let mut off = 0usize;
    for spec in &schema.specs {
        let len = spec.rows * spec.cols * 4;
        let bytes = frame.get(off..off + len).ok_or_else(|| DistError::Frame {
            detail: format!("gradient frame truncated at `{}`", spec.name),
        })?;
        mats.push(Matrix::from_le_bytes(spec.rows, spec.cols, bytes)?);
        off += len;
    }
    Ok(mats)
}

fn push_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn read_u32(bytes: &[u8], off: &mut usize) -> DistResult<usize> {
    let raw = bytes
        .get(*off..*off + 4)
        .ok_or_else(|| DistError::Frame {
            detail: "state frame truncated in header".to_string(),
        })?
        .try_into()
        .map_err(|_| DistError::Frame {
            detail: "state frame header malformed".to_string(),
        })?;
    *off += 4;
    Ok(u32::from_le_bytes(raw) as usize)
}

/// Captures a replica's full trainable state — parameter values and
/// optimizer slots — as one frame for elastic-join / resync transfers.
///
/// Layout, per parameter in visitation order: `[u32 slot_count]`, the
/// value's `f32` data, then each slot as `[u32 rows][u32 cols]` plus its
/// `f32` data. Gradients are deliberately excluded: a synced replica
/// starts its next step from zeroed gradients like everyone else.
pub fn capture_state(net: &mut Network) -> Vec<u8> {
    let mut out = Vec::new();
    net.visit_params(&mut |p| {
        push_u32(&mut out, p.slots.len());
        p.value.write_le_bytes(&mut out);
        for slot in &p.slots {
            push_u32(&mut out, slot.rows());
            push_u32(&mut out, slot.cols());
            slot.write_le_bytes(&mut out);
        }
    });
    out
}

/// Overwrites a replica's parameter values and optimizer slots from a
/// state frame captured on a peer with the *same* schema, zeroing
/// gradients afterwards.
///
/// # Errors
///
/// [`DistError::Frame`] when the frame does not line up with this
/// replica's parameter shapes; the replica may be partially overwritten
/// in that case and must be resynced before further use.
pub fn apply_state(net: &mut Network, frame: &[u8]) -> DistResult<()> {
    let mut off = 0usize;
    let mut failure: Option<DistError> = None;
    net.visit_params_named(&mut |name, p| {
        if failure.is_some() {
            return;
        }
        let mut step = || -> DistResult<()> {
            let n_slots = read_u32(frame, &mut off)?;
            let len = p.value.rows() * p.value.cols() * 4;
            let bytes = frame.get(off..off + len).ok_or_else(|| DistError::Frame {
                detail: format!("state frame truncated at `{name}`"),
            })?;
            p.value = Matrix::from_le_bytes(p.value.rows(), p.value.cols(), bytes)?;
            off += len;
            let mut slots = Vec::with_capacity(n_slots);
            for _ in 0..n_slots {
                let rows = read_u32(frame, &mut off)?;
                let cols = read_u32(frame, &mut off)?;
                let len = rows * cols * 4;
                let bytes = frame.get(off..off + len).ok_or_else(|| DistError::Frame {
                    detail: format!("state frame truncated in `{name}` slots"),
                })?;
                slots.push(Matrix::from_le_bytes(rows, cols, bytes)?);
                off += len;
            }
            p.slots = slots;
            Ok(())
        };
        if let Err(e) = step() {
            failure = Some(e);
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if off != frame.len() {
        return Err(DistError::Frame {
            detail: format!(
                "state frame has {} trailing bytes after all parameters",
                frame.len() - off
            ),
        });
    }
    net.zero_grads();
    Ok(())
}

/// FNV-1a 64 digest of a frame, used to verify bit-identical sync.
pub fn state_digest(frame: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in frame {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Network {
        let mut rng = StdRng::seed_from_u64(7);
        build_micro_resnet18(&MicroResNetConfig::tiny(10), &mut rng)
    }

    #[test]
    fn grad_frame_roundtrip_is_exact() {
        let mut net = tiny_net();
        let schema = ParamSchema::of(&mut net).unwrap();
        assert!(!schema.factored);
        let grads: Vec<Matrix> = schema
            .specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let data = (0..s.rows * s.cols)
                    .map(|j| (i as f32 + 1.0) * 0.125 + j as f32 * 1e-3)
                    .collect();
                Matrix::from_vec(s.rows, s.cols, data).unwrap()
            })
            .collect();
        let frame = encode_grads(&schema, &grads).unwrap();
        assert_eq!(frame.len(), schema.frame_bytes());
        let back = decode_grads(&schema, &frame).unwrap();
        for (a, b) in grads.iter().zip(&back) {
            assert_eq!(a.rows(), b.rows());
            for i in 0..a.rows() {
                for j in 0..a.cols() {
                    assert_eq!(a.get(i, j), b.get(i, j));
                }
            }
        }
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let mut net = tiny_net();
        let schema = ParamSchema::of(&mut net).unwrap();
        let short = vec![0u8; schema.frame_bytes() - 4];
        assert!(matches!(
            decode_grads(&schema, &short),
            Err(DistError::Frame { .. })
        ));
    }

    #[test]
    fn state_frame_roundtrips_and_digest_matches() {
        let mut a = tiny_net();
        let mut b = tiny_net();
        // Perturb `b` so the sync visibly changes it.
        b.visit_params(&mut |p| {
            let m = Matrix::zeros(p.value.rows(), p.value.cols());
            p.value = m;
        });
        let frame = capture_state(&mut a);
        apply_state(&mut b, &frame).unwrap();
        let frame_b = capture_state(&mut b);
        assert_eq!(state_digest(&frame), state_digest(&frame_b));
        assert_eq!(frame, frame_b);
    }

    #[test]
    fn apply_state_rejects_truncated_frame() {
        let mut a = tiny_net();
        let mut frame = capture_state(&mut a);
        frame.truncate(frame.len() / 2);
        let mut b = tiny_net();
        assert!(matches!(
            apply_state(&mut b, &frame),
            Err(DistError::Frame { .. })
        ));
    }
}
