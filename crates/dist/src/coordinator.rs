//! The lockstep coordinator.
//!
//! [`run_distributed`] drives `N` worker threads through
//! `epochs × steps_per_epoch` lockstep rounds. Each round:
//!
//! 1. process elastic joins from the fault plan (spawn → replay the
//!    switch if one happened → digest-verified state sync from worker 0);
//! 2. issue `Step` to every available worker (crashing/straggling ones
//!    per the plan);
//! 3. gather gradient frames — on-time ones plus stragglers' frames that
//!    are *due* this round — and fold them into a mean-gradient frame in
//!    worker-id order (stale frames within the staleness bound
//!    contribute; older ones are dropped);
//! 4. broadcast `Apply` so every on-time replica takes the identical
//!    optimizer step, then resync due stragglers from worker 0.
//!
//! Worker 0 is the fleet anchor: at epoch boundaries the coordinator
//! pulls its weight matrices for stable-rank tracking (Algorithm 1 lines
//! 3–5), and when the tracker converges, worker 0 performs the SVD switch
//! first; its *chosen ranks* — not its weights — are then broadcast so
//! every replica factorizes its own (identical) weights into identical
//! factors. State digests confirm the fleet stayed bit-identical. After
//! the switch the wire schema shrinks to the factor layout and the
//! per-step communication volume drops by the rank ratio ρ, which the
//! [`CommLedger`] measures from actual frame bytes.

use crate::exchange::GradientExchange;
use crate::fault::{contribution_outcome, ContributionOutcome, FaultPlan};
use crate::metrics::DistMetrics;
use crate::schema::{state_digest, ParamSchema};
use crate::shard::shard_vision_task;
use crate::worker::{spawn_worker, Command, NetBuilder, Reply, WorkerHandle, WorkerSetup};
use crate::{DistError, DistResult};
use cuttlefish::factorize::{RankDecision, RankPlan, SwitchOptions};
use cuttlefish::profile::Profiler;
use cuttlefish::rank::{initial_scale, stable_rank_of};
use cuttlefish::tracker::RankTracker;
use cuttlefish::{CuttlefishConfig, OptimizerKind, SwitchPolicy};
use cuttlefish_data::VisionTask;
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_nn::Network;
use cuttlefish_perf::DeviceProfile;
use cuttlefish_telemetry::trace::stage;
use cuttlefish_telemetry::{Event, LayerVerdict, NullRecorder, Recorder, TraceId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

/// Which collective the fleet uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeKind {
    /// [`crate::DenseAllReduce`]: dense layouts only; refuses the
    /// factorized schema at the switch.
    Dense,
    /// [`crate::FactorAllReduce`]: shape-aware on both sides of the
    /// switch.
    Factor,
}

impl ExchangeKind {
    /// Instantiates the collective.
    pub fn build(&self) -> Box<dyn GradientExchange> {
        match self {
            ExchangeKind::Dense => Box::new(crate::DenseAllReduce),
            ExchangeKind::Factor => Box::new(crate::FactorAllReduce),
        }
    }
}

/// Configuration of one distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Initial fleet size (elastic joins may raise it).
    pub workers: usize,
    /// Training epochs; one epoch is `steps_per_epoch` lockstep rounds.
    pub epochs: usize,
    /// Lockstep rounds per epoch.
    pub steps_per_epoch: usize,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Single run seed; per-worker streams derive via
    /// [`crate::worker_seed`].
    pub run_seed: u64,
    /// Optimizer (identical on every replica).
    pub optimizer: OptimizerKind,
    /// Optional global gradient-norm clip (applied to the averaged
    /// gradient, identically everywhere).
    pub grad_clip: Option<f32>,
    /// Label smoothing.
    pub label_smoothing: f32,
    /// Learning-rate schedule, indexed by epoch.
    pub schedule: LrSchedule,
    /// Full→low-rank switch policy, executed on worker 0.
    pub policy: SwitchPolicy,
    /// The gradient collective.
    pub exchange: ExchangeKind,
    /// Shard-level data augmentation.
    pub augment: bool,
    /// Evaluate on worker 0 every this many epochs (the last epoch always
    /// evaluates).
    pub eval_every_epochs: usize,
    /// Maximum staleness (in rounds) at which a straggler's gradient
    /// still contributes; older frames are dropped.
    pub staleness_bound: usize,
    /// Deterministic fault schedule.
    pub faults: FaultPlan,
}

impl DistConfig {
    /// Small SGD defaults for tests and examples: constant LR, no
    /// augmentation, factor exchange, no switch policy, no faults.
    pub fn quick(workers: usize, epochs: usize, steps_per_epoch: usize, run_seed: u64) -> Self {
        DistConfig {
            workers,
            epochs,
            steps_per_epoch,
            batch_size: 16,
            run_seed,
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            grad_clip: None,
            label_smoothing: 0.0,
            schedule: LrSchedule::Constant { lr: 0.05 },
            policy: SwitchPolicy::FullRankOnly,
            exchange: ExchangeKind::Factor,
            augment: false,
            eval_every_epochs: 1,
            staleness_bound: 2,
            faults: FaultPlan::none(),
        }
    }

    /// Total lockstep rounds of the run.
    pub fn total_steps(&self) -> usize {
        self.epochs * self.steps_per_epoch
    }

    /// Validates run-level values and the fault plan.
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] naming the first bad field; policy errors
    /// are forwarded as [`DistError::Train`].
    pub fn validate(&self) -> DistResult<()> {
        let bad = |field: &'static str, detail: &str| DistError::Config {
            field,
            detail: detail.to_string(),
        };
        if self.workers == 0 {
            return Err(bad("workers", "must be > 0"));
        }
        if self.epochs == 0 {
            return Err(bad("epochs", "must be > 0"));
        }
        if self.steps_per_epoch == 0 {
            return Err(bad("steps_per_epoch", "must be > 0"));
        }
        if self.batch_size == 0 {
            return Err(bad("batch_size", "must be > 0"));
        }
        if self.eval_every_epochs == 0 {
            return Err(bad("eval_every_epochs", "must be > 0"));
        }
        self.policy.validate().map_err(DistError::Train)?;
        self.faults.validate(self.workers, self.total_steps())
    }
}

/// Byte-accurate communication accounting for one run.
///
/// Uplink counts every gradient frame the coordinator receives (dropped
/// stale frames still crossed the wire); downlink counts the averaged
/// frame once per receiving replica. Sync bytes (join/straggler state
/// catch-up) and control bytes (the broadcast rank plan) are tracked
/// separately so the per-step ρ drop is visible undiluted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommLedger {
    /// Rounds exchanged at the dense (full-rank) schema.
    pub full_rounds: usize,
    /// Total gradient bytes (up + down) over dense rounds.
    pub full_bytes: u64,
    /// Rounds exchanged at the factorized schema.
    pub low_rounds: usize,
    /// Total gradient bytes (up + down) over factorized rounds.
    pub low_bytes: u64,
    /// Total uplink gradient bytes.
    pub bytes_up: u64,
    /// Total downlink gradient bytes.
    pub bytes_down: u64,
    /// State-frame bytes moved for joins and straggler resyncs.
    pub sync_bytes: u64,
    /// Rank-plan broadcast bytes at the switch.
    pub control_bytes: u64,
}

impl CommLedger {
    fn record_round(&mut self, factored: bool, up: u64, down: u64) {
        self.bytes_up += up;
        self.bytes_down += down;
        if factored {
            self.low_rounds += 1;
            self.low_bytes += up + down;
        } else {
            self.full_rounds += 1;
            self.full_bytes += up + down;
        }
    }

    /// Mean gradient bytes per dense round.
    pub fn full_bytes_per_step(&self) -> f64 {
        if self.full_rounds == 0 {
            return 0.0;
        }
        self.full_bytes as f64 / self.full_rounds as f64
    }

    /// Mean gradient bytes per factorized round.
    pub fn low_bytes_per_step(&self) -> f64 {
        if self.low_rounds == 0 {
            return 0.0;
        }
        self.low_bytes as f64 / self.low_rounds as f64
    }

    /// `low/full` per-step byte ratio — the realized communication ρ.
    /// `None` until both phases have at least one round.
    pub fn post_switch_ratio(&self) -> Option<f64> {
        if self.full_rounds == 0 || self.low_rounds == 0 {
            return None;
        }
        Some(self.low_bytes_per_step() / self.full_bytes_per_step())
    }

    /// All bytes moved: gradients, syncs, and control.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down + self.sync_bytes + self.control_bytes
    }
}

/// Per-worker accounting for the run summary.
#[derive(Debug, Clone, Default)]
pub struct WorkerSummary {
    /// Worker id.
    pub id: usize,
    /// Gradient contributions that reached a reduction (incl. stale).
    pub steps: usize,
    /// Contributions that arrived late but within the staleness bound.
    pub stale: usize,
    /// Contributions dropped for exceeding the bound (or straddling the
    /// switch).
    pub dropped: usize,
    /// Lifecycle transitions as `(step, event)` pairs.
    pub lifecycle: Vec<(usize, String)>,
}

/// Everything a distributed run produces.
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// Epoch of the full→low-rank switch (`None` if it never happened).
    pub e_hat: Option<usize>,
    /// Number of leading targets kept full-rank.
    pub k_hat: Option<usize>,
    /// Worker 0's per-target rank decisions at the switch.
    pub decisions: Vec<RankDecision>,
    /// Per-epoch mean training loss over on-time contributions.
    pub loss_curve: Vec<f32>,
    /// Per-epoch validation metric from worker 0 (NaN on skipped epochs).
    pub metric_curve: Vec<f32>,
    /// Best validation metric.
    pub best_metric: f32,
    /// Final-epoch validation metric.
    pub final_metric: f32,
    /// Trainable parameters before the switch.
    pub params_full: usize,
    /// Trainable parameters at the end of the run.
    pub params_final: usize,
    /// Byte-accurate communication totals.
    pub ledger: CommLedger,
    /// Per-worker summaries, in id order.
    pub workers: Vec<WorkerSummary>,
    /// FNV-1a digest of the fleet's (verified identical) final state.
    pub final_digest: u64,
}

/// Runs a distributed training job without telemetry.
///
/// `builder` must construct the *same* network every call (seed
/// internally): replica equality at initialization is the root of the
/// lockstep determinism argument.
///
/// # Errors
///
/// Configuration, worker, schema, and desync errors.
pub fn run_distributed(
    cfg: &DistConfig,
    task: &VisionTask,
    builder: NetBuilder,
) -> DistResult<DistRunResult> {
    run_distributed_with(cfg, task, builder, &NullRecorder)
}

struct GradMsg {
    loss: f32,
    compute_ms: f64,
    frame: Vec<u8>,
    trace: u64,
}

/// Emits one stage span through the recorder when the `obs` feature is
/// on; compiles to nothing otherwise so the default lockstep loop
/// carries no per-stage event traffic.
#[allow(unused_variables)]
fn emit_span(
    recorder: &dyn Recorder,
    trace: u64,
    stage: &str,
    worker: Option<usize>,
    wall_ms: f64,
) {
    #[cfg(feature = "obs")]
    recorder.record(Event::TraceSpan {
        trace,
        stage: stage.to_string(),
        worker,
        wall_ms,
    });
}

/// Policy state mirrored on the coordinator (profiling, ξ calibration,
/// the stable-rank tracker), fed by worker 0's weights at epoch ends.
struct SwitchController {
    tracker: Option<RankTracker>,
    tracked: Vec<String>,
    xi: HashMap<String, f32>,
    k_hat: Option<usize>,
    cf: Option<CuttlefishConfig>,
    manual: Option<(usize, SwitchOptions)>,
}

impl SwitchController {
    fn new(policy: &SwitchPolicy, mirror: &mut Network) -> DistResult<Self> {
        let mut ctl = SwitchController {
            tracker: None,
            tracked: Vec::new(),
            xi: HashMap::new(),
            k_hat: None,
            cf: None,
            manual: None,
        };
        match policy {
            SwitchPolicy::Cuttlefish(cf) => {
                let profiler = Profiler {
                    device: DeviceProfile::v100(),
                    batch: 1024,
                    rho_bar: cf.rho_bar,
                    v: cf.v,
                };
                let outcome = profiler.determine_k(mirror.targets());
                let mut k = mirror
                    .targets()
                    .iter()
                    .filter(|t| t.stack < outcome.cut_stack)
                    .count();
                if k + 2 > mirror.depth() {
                    k = 1;
                }
                ctl.k_hat = Some(k);
                let tracked = cuttlefish::trainer::tracked_targets(mirror.targets(), k);
                if tracked.is_empty() {
                    return Err(DistError::Config {
                        field: "policy",
                        detail: "no layers left to track after profiling".to_string(),
                    });
                }
                for t in &tracked {
                    let w = mirror.weight_matrix(&t.name)?;
                    ctl.xi.insert(t.name.clone(), initial_scale(&w)?);
                }
                ctl.tracked = tracked.iter().map(|t| t.name.clone()).collect();
                ctl.tracker = Some(RankTracker::new(ctl.tracked.clone(), cf.epsilon, cf.window));
                ctl.cf = Some(cf.clone());
            }
            SwitchPolicy::Manual {
                full_rank_epochs,
                k,
                rank_ratio,
                extra_bn,
                frobenius_decay,
            } => {
                ctl.k_hat = Some(*k);
                ctl.manual = Some((
                    *full_rank_epochs,
                    SwitchOptions {
                        k: *k,
                        plan: RankPlan::FixedRatio { rho: *rank_ratio },
                        extra_bn: *extra_bn,
                        frobenius_decay: *frobenius_decay,
                    },
                ));
            }
            SwitchPolicy::SpectralInit { .. } | SwitchPolicy::FullRankOnly => {}
        }
        Ok(ctl)
    }

    fn wants_weights(&self) -> bool {
        self.tracker.is_some()
    }

    fn record(
        &mut self,
        epoch: usize,
        mats: &[cuttlefish_tensor::Matrix],
        recorder: &dyn Recorder,
    ) -> DistResult<()> {
        let Some(tr) = self.tracker.as_mut() else {
            return Ok(());
        };
        let mut ranks = Vec::with_capacity(mats.len());
        for (name, w) in self.tracked.iter().zip(mats) {
            let rho = stable_rank_of(w)?;
            let xi = self.xi.get(name).copied().unwrap_or(1.0);
            recorder.record(Event::StableRankSampled {
                epoch,
                layer: name.clone(),
                rho,
                scaled_rho: xi * rho,
            });
            ranks.push(rho);
        }
        tr.record(ranks);
        recorder.record(Event::TrackerVerdict {
            epoch,
            epsilon: tr.epsilon(),
            converged: tr.converged(),
            layers: tr
                .verdicts()
                .into_iter()
                .map(|(layer, derivative, stabilized)| LayerVerdict {
                    layer,
                    derivative,
                    stabilized,
                })
                .collect(),
        });
        Ok(())
    }

    /// The switch options to execute after `epoch`, if the policy says
    /// it is time.
    fn due_switch(&self, epoch: usize, total_epochs: usize) -> Option<SwitchOptions> {
        if let (Some(cf), Some(tr)) = (self.cf.as_ref(), self.tracker.as_ref()) {
            let max_full = ((total_epochs as f32) * cf.max_full_rank_fraction).round() as usize;
            if tr.converged() || epoch + 1 >= max_full.max(cf.window + 1) {
                return Some(SwitchOptions {
                    k: self.k_hat.unwrap_or(1),
                    plan: RankPlan::Auto {
                        rule: cf.rank_rule,
                        transformer_rule: cf.transformer_rank_rule,
                        xi: self.xi.clone(),
                        skip_no_reduction: true,
                    },
                    extra_bn: cf.extra_bn,
                    frobenius_decay: cf.frobenius_decay,
                });
            }
            return None;
        }
        if let Some((full_rank_epochs, opts)) = self.manual.as_ref() {
            if epoch + 1 >= *full_rank_epochs {
                return Some(opts.clone());
            }
        }
        None
    }

    fn post_lr_scale(&self) -> f32 {
        self.cf
            .as_ref()
            .map(|c| c.post_switch_lr_scale)
            .unwrap_or(1.0)
    }
}

const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

struct Coordinator<'a> {
    recorder: &'a dyn Recorder,
    exchange: Box<dyn GradientExchange>,
    schema: ParamSchema,
    setup: WorkerSetup,
    builder: NetBuilder,
    task: &'a VisionTask,
    max_workers: usize,
    fleet: BTreeMap<usize, WorkerHandle>,
    live: BTreeSet<usize>,
    reply_tx: Sender<Reply>,
    reply_rx: Receiver<Reply>,
    /// Buffered gradient frames keyed by `(worker, origin step)`.
    buffer: HashMap<(usize, usize), GradMsg>,
    /// Straggling workers: `worker → (due step, origin step)`.
    busy: BTreeMap<usize, (usize, usize)>,
    ledger: CommLedger,
    summaries: BTreeMap<usize, WorkerSummary>,
    applied_steps: usize,
    switched: bool,
    /// First round whose gradients are factor frames; stale dense frames
    /// from before this round can no longer be reduced and are dropped.
    switch_round: Option<usize>,
}

impl<'a> Coordinator<'a> {
    fn send(&self, worker: usize, cmd: Command) -> DistResult<()> {
        let h = self.fleet.get(&worker).ok_or(DistError::Worker {
            worker,
            detail: "not in fleet".to_string(),
        })?;
        h.tx.send(cmd).map_err(|_| DistError::Worker {
            worker,
            detail: "command channel closed".to_string(),
        })
    }

    fn recv(&self) -> DistResult<Reply> {
        match self.reply_rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(Reply::Failed { worker, detail }) => Err(DistError::Worker { worker, detail }),
            Ok(r) => Ok(r),
            Err(_) => Err(DistError::Worker {
                worker: usize::MAX,
                detail: "timed out waiting for a reply".to_string(),
            }),
        }
    }

    fn lifecycle(&mut self, worker: usize, step: usize, event: &str) {
        self.recorder.record(Event::DistWorkerEvent {
            step,
            worker,
            event: event.to_string(),
        });
        let s = self
            .summaries
            .entry(worker)
            .or_insert_with(|| WorkerSummary {
                id: worker,
                ..WorkerSummary::default()
            });
        s.lifecycle.push((step, event.to_string()));
    }

    fn spawn(&mut self, worker: usize, step: usize) -> DistResult<()> {
        let shard = shard_vision_task(self.task, worker, self.max_workers)?;
        let handle = spawn_worker(
            worker,
            self.setup.clone(),
            shard,
            self.builder.clone(),
            self.reply_tx.clone(),
        );
        self.fleet.insert(worker, handle);
        self.live.insert(worker);
        self.lifecycle(worker, step, "spawned");
        Ok(())
    }

    /// Captures worker 0's state frame (post whatever commands are
    /// already queued to it — FIFO ordering makes this "state as of the
    /// latest `Apply`").
    fn capture_anchor(&mut self) -> DistResult<Vec<u8>> {
        self.send(0, Command::CaptureState)?;
        loop {
            match self.recv()? {
                Reply::State { worker: 0, frame } => return Ok(frame),
                Reply::Grads {
                    worker,
                    step,
                    loss,
                    compute_ms,
                    frame,
                    trace,
                } => {
                    // A straggler's late frame can arrive while we wait.
                    self.buffer.insert(
                        (worker, step),
                        GradMsg {
                            loss,
                            compute_ms,
                            frame,
                            trace,
                        },
                    );
                }
                _ => {
                    return Err(DistError::Worker {
                        worker: 0,
                        detail: "unexpected reply while capturing state".to_string(),
                    })
                }
            }
        }
    }

    /// Syncs `worker` to worker 0's current state, verifying the digest.
    fn sync_from_anchor(&mut self, worker: usize, step: usize) -> DistResult<()> {
        let frame = self.capture_anchor()?;
        let expected = state_digest(&frame);
        self.ledger.sync_bytes += frame.len() as u64;
        self.send(
            worker,
            Command::SyncState {
                frame,
                opt_steps: self.applied_steps,
            },
        )?;
        loop {
            match self.recv()? {
                Reply::Synced { worker: w, digest } if w == worker => {
                    if digest != expected {
                        return Err(DistError::Desync {
                            worker,
                            expected,
                            got: digest,
                        });
                    }
                    self.lifecycle(worker, step, "synced");
                    return Ok(());
                }
                Reply::Grads {
                    worker: w,
                    step: s,
                    loss,
                    compute_ms,
                    frame,
                    trace,
                } => {
                    self.buffer.insert(
                        (w, s),
                        GradMsg {
                            loss,
                            compute_ms,
                            frame,
                            trace,
                        },
                    );
                }
                _ => {
                    return Err(DistError::Worker {
                        worker,
                        detail: "unexpected reply while syncing".to_string(),
                    })
                }
            }
        }
    }

    /// Executes the full→low-rank switch fleet-wide: worker 0 plans (runs
    /// Algorithm 1's SVD split) and reports its chosen ranks; those ranks
    /// — not its weights — are broadcast so every other replica
    /// factorizes its own identical weights into identical factors.
    /// On-time replicas' post-switch digests must agree with worker 0's;
    /// straggling replicas apply the layout change too (so later state
    /// syncs find matching shapes) but are digest-checked only after
    /// their resync.
    fn do_switch(
        &mut self,
        opts: SwitchOptions,
        round: usize,
    ) -> DistResult<(Vec<RankDecision>, usize)> {
        let extra_bn = opts.extra_bn;
        let frobenius_decay = opts.frobenius_decay;
        self.send(0, Command::PlanSwitch { opts })?;
        let (decisions, anchor_digest, params) = loop {
            match self.recv()? {
                Reply::SwitchDone {
                    worker: 0,
                    decisions,
                    digest,
                    params,
                } => break (decisions, digest, params),
                Reply::Grads {
                    worker,
                    step,
                    loss,
                    compute_ms,
                    frame,
                    trace,
                } => {
                    self.buffer.insert(
                        (worker, step),
                        GradMsg {
                            loss,
                            compute_ms,
                            frame,
                            trace,
                        },
                    );
                }
                _ => {
                    return Err(DistError::Worker {
                        worker: 0,
                        detail: "unexpected reply while switching".to_string(),
                    })
                }
            }
        };
        let ranks: Vec<(String, usize)> = decisions
            .iter()
            .filter_map(|d| d.chosen.map(|r| (d.name.clone(), r)))
            .collect();
        // Rank-plan broadcast cost: each receiver gets (name, u64 rank).
        let plan_bytes: u64 = ranks.iter().map(|(n, _)| n.len() as u64 + 8).sum();
        let others: Vec<usize> = self.live.iter().copied().filter(|&w| w != 0).collect();
        let mut on_time_pending: BTreeSet<usize> = BTreeSet::new();
        for &w in &others {
            self.send(
                w,
                Command::ApplySwitch {
                    ranks: ranks.clone(),
                    extra_bn,
                    frobenius_decay,
                },
            )?;
            self.ledger.control_bytes += plan_bytes;
            if !self.busy.contains_key(&w) {
                on_time_pending.insert(w);
            }
        }
        // On-time replicas have applied exactly the updates worker 0 has,
        // so their post-switch state must be bit-identical to worker 0's.
        // (Straggling replicas answer too — FIFO after their slow step —
        // but their stale state legitimately differs until resync, so
        // their digest is not compared here.)
        let mut busy_pending: BTreeSet<usize> = others
            .iter()
            .copied()
            .filter(|w| self.busy.contains_key(w))
            .collect();
        while !(on_time_pending.is_empty() && busy_pending.is_empty()) {
            match self.recv()? {
                Reply::SwitchDone { worker, digest, .. } => {
                    if on_time_pending.remove(&worker) {
                        if digest != anchor_digest {
                            return Err(DistError::Desync {
                                worker,
                                expected: anchor_digest,
                                got: digest,
                            });
                        }
                    } else {
                        busy_pending.remove(&worker);
                    }
                }
                Reply::Grads {
                    worker,
                    step,
                    loss,
                    compute_ms,
                    frame,
                    trace,
                } => {
                    self.buffer.insert(
                        (worker, step),
                        GradMsg {
                            loss,
                            compute_ms,
                            frame,
                            trace,
                        },
                    );
                }
                _ => {
                    return Err(DistError::Worker {
                        worker: 0,
                        detail: "unexpected reply during switch broadcast".to_string(),
                    })
                }
            }
        }
        self.switched = true;
        self.switch_round = Some(round);
        Ok((decisions, params))
    }

    /// Waits for one reply matching `want` from `worker`, buffering any
    /// straggler gradient frames that arrive in the meantime. Any other
    /// reply is a protocol violation.
    fn recv_from(
        &mut self,
        worker: usize,
        what: &'static str,
        mut want: impl FnMut(&Reply) -> bool,
    ) -> DistResult<Reply> {
        loop {
            let r = self.recv()?;
            if let Reply::Grads {
                worker: w,
                step,
                loss,
                compute_ms,
                frame,
                trace,
            } = r
            {
                self.buffer.insert(
                    (w, step),
                    GradMsg {
                        loss,
                        compute_ms,
                        frame,
                        trace,
                    },
                );
                continue;
            }
            if want(&r) {
                return Ok(r);
            }
            return Err(DistError::Worker {
                worker,
                detail: format!("unexpected reply while waiting for {what}"),
            });
        }
    }

    /// Consumes a joiner's `SwitchDone` acknowledgement. Its digest is
    /// not compared: a fresh joiner factorized fresh random weights and
    /// is only brought into agreement by the state sync that follows.
    fn drain_switch_ack(&mut self, worker: usize) -> DistResult<()> {
        self.recv_from(
            worker,
            "switch ack",
            |r| matches!(r, Reply::SwitchDone { worker: w, .. } if *w == worker),
        )
        .map(|_| ())
    }

    fn recv_weights(&mut self) -> DistResult<Vec<cuttlefish_tensor::Matrix>> {
        let r = self.recv_from(0, "weights", |r| {
            matches!(r, Reply::Weights { worker: 0, .. })
        })?;
        match r {
            Reply::Weights { mats, .. } => Ok(mats),
            _ => Err(DistError::Worker {
                worker: 0,
                detail: "weights reply vanished".to_string(),
            }),
        }
    }

    fn recv_metric(&mut self) -> DistResult<f32> {
        let r = self.recv_from(0, "metric", |r| {
            matches!(r, Reply::Metric { worker: 0, .. })
        })?;
        match r {
            Reply::Metric { value, .. } => Ok(value),
            _ => Err(DistError::Worker {
                worker: 0,
                detail: "metric reply vanished".to_string(),
            }),
        }
    }

    fn recv_state(&mut self, worker: usize) -> DistResult<Vec<u8>> {
        let r = self.recv_from(
            worker,
            "state",
            |r| matches!(r, Reply::State { worker: w, .. } if *w == worker),
        )?;
        match r {
            Reply::State { frame, .. } => Ok(frame),
            _ => Err(DistError::Worker {
                worker,
                detail: "state reply vanished".to_string(),
            }),
        }
    }

    fn shutdown(mut self) -> DistResult<()> {
        let ids: Vec<usize> = self.live.iter().copied().collect();
        for w in &ids {
            let _ = self.send(*w, Command::Shutdown);
        }
        let mut waiting: BTreeSet<usize> = ids.into_iter().collect();
        while !waiting.is_empty() {
            match self.reply_rx.recv_timeout(REPLY_TIMEOUT) {
                Ok(Reply::Stopped { worker }) => {
                    waiting.remove(&worker);
                }
                Ok(_) => {}
                Err(_) => break,
            }
        }
        for (_, h) in std::mem::take(&mut self.fleet) {
            let _ = h.join.join();
        }
        Ok(())
    }
}

/// Runs a distributed training job, emitting structured telemetry.
///
/// See [`run_distributed`]; every lockstep round becomes one
/// `dist_exchange` event plus per-contribution `dist_worker_step` events,
/// and every fault-plan transition a `dist_worker_event`, so
/// `telemetry_summary` can render the communication-volume drop and the
/// per-worker timelines.
///
/// # Errors
///
/// Configuration, worker, schema, and desync errors.
pub fn run_distributed_with(
    cfg: &DistConfig,
    task: &VisionTask,
    builder: NetBuilder,
    recorder: &dyn Recorder,
) -> DistResult<DistRunResult> {
    run_distributed_observed(cfg, task, builder, recorder, None)
}

/// Runs a distributed training job with telemetry *and* live metrics.
///
/// See [`run_distributed_with`]. When `metrics` is provided, the
/// coordinator additionally records lock-free registry metrics every
/// round — per-phase round counters, uplink/downlink byte totals,
/// stale/dropped contribution counters, and compute/exchange stage
/// latency histograms — readable at any moment while the run continues.
/// Every round also mints a [`TraceId`] that rides the worker protocol;
/// with the `obs` feature on, the coordinator emits one `trace_span`
/// event per gradient contribution (stage `compute`, attributed to the
/// worker) and one per reduction (stage `exchange`, fleet-wide).
///
/// # Errors
///
/// Configuration, worker, schema, and desync errors.
pub fn run_distributed_observed(
    cfg: &DistConfig,
    task: &VisionTask,
    builder: NetBuilder,
    recorder: &dyn Recorder,
    metrics: Option<&DistMetrics>,
) -> DistResult<DistRunResult> {
    cfg.validate()?;
    let total_steps = cfg.total_steps();
    let max_workers = cfg.faults.max_workers(cfg.workers);

    // The coordinator keeps its own mirror replica for planning: at
    // initialization every replica is bit-identical, so the mirror's
    // targets, shapes, and ξ calibration are the fleet's.
    let mut mirror = builder();
    let mut schema = ParamSchema::of(&mut mirror)?;
    let exchange = cfg.exchange.build();
    exchange.accepts(&schema)?;
    let params_full = mirror.param_count();
    let mut controller = SwitchController::new(&cfg.policy, &mut mirror)?;

    let setup = WorkerSetup {
        run_seed: cfg.run_seed,
        batch_size: cfg.batch_size,
        optimizer: cfg.optimizer,
        grad_clip: cfg.grad_clip,
        label_smoothing: cfg.label_smoothing,
        augment: cfg.augment,
        exchange: cfg.exchange,
    };
    let (reply_tx, reply_rx) = channel();
    let mut co = Coordinator {
        recorder,
        exchange,
        schema: schema.clone(),
        setup,
        builder,
        task,
        max_workers,
        fleet: BTreeMap::new(),
        live: BTreeSet::new(),
        reply_tx,
        reply_rx,
        buffer: HashMap::new(),
        busy: BTreeMap::new(),
        ledger: CommLedger::default(),
        summaries: BTreeMap::new(),
        applied_steps: 0,
        switched: false,
        switch_round: None,
    };
    for w in 0..cfg.workers {
        co.spawn(w, 0)?;
    }

    let mut e_hat: Option<usize> = None;
    let mut k_hat = controller.k_hat;
    let mut decisions: Vec<RankDecision> = Vec::new();
    let mut params_final = params_full;
    let mut lr_scale = 1.0f32;
    let mut loss_curve: Vec<f32> = Vec::with_capacity(cfg.epochs);
    let mut metric_curve: Vec<f32> = Vec::with_capacity(cfg.epochs);
    let mut best_metric = f32::NEG_INFINITY;
    let mut final_metric = f32::NAN;
    let mut epoch_loss = 0.0f64;
    let mut epoch_contribs = 0usize;
    let mut epoch_start = Instant::now();

    // Spectral initialization factorizes before the first step; all
    // replicas are still at their identical initial weights, so the rank
    // broadcast degenerates to "everyone factorizes epoch-0 weights".
    if let SwitchPolicy::SpectralInit {
        rank_ratio,
        frobenius_decay,
    } = &cfg.policy
    {
        let opts = SwitchOptions {
            k: 1,
            plan: RankPlan::FixedRatio { rho: *rank_ratio },
            extra_bn: false,
            frobenius_decay: *frobenius_decay,
        };
        let (d, params) = co.do_switch(opts.clone(), 0)?;
        apply_switch_to_mirror(&mut mirror, &d, &opts)?;
        schema = ParamSchema::of(&mut mirror)?;
        co.exchange.accepts(&schema)?;
        co.schema = schema.clone();
        params_final = params;
        decisions = d;
        e_hat = Some(0);
        k_hat = Some(1);
        lr_scale = 1.0;
        recorder.record(Event::SwitchTriggered {
            e_hat: 0,
            k_hat: 1,
            decisions: decisions.iter().map(|d| d.to_event()).collect(),
        });
    }

    for round in 0..total_steps {
        let epoch = round / cfg.steps_per_epoch;
        if round % cfg.steps_per_epoch == 0 {
            epoch_start = Instant::now();
            recorder.record(Event::EpochStarted {
                epoch,
                lr: cfg.schedule.lr_at(epoch) * lr_scale,
            });
        }

        // -- Elastic joins -------------------------------------------
        for j in cfg
            .faults
            .joins_at(round)
            .into_iter()
            .cloned()
            .collect::<Vec<_>>()
        {
            co.spawn(j.worker, round)?;
            co.lifecycle(j.worker, round, "joined");
            if co.switched {
                // Bring the newcomer to the factorized layout first so
                // the state frame's shapes line up.
                co.send(
                    j.worker,
                    Command::ApplySwitch {
                        ranks: decisions
                            .iter()
                            .filter_map(|d| d.chosen.map(|r| (d.name.clone(), r)))
                            .collect(),
                        extra_bn: switch_extra_bn(&cfg.policy),
                        frobenius_decay: switch_frobenius_decay(&cfg.policy),
                    },
                )?;
                co.drain_switch_ack(j.worker)?;
            }
            co.sync_from_anchor(j.worker, round)?;
        }

        // -- Fire the round ------------------------------------------
        // One trace id per lockstep round: it rides every `Step` command
        // and comes back on the gradient reply, so a straggler's frame
        // stays attributed to the round that computed it.
        let round_trace = TraceId::mint();
        let mut on_time: Vec<usize> = Vec::new();
        let ids: Vec<usize> = co.live.iter().copied().collect();
        for w in ids {
            if co.busy.contains_key(&w) {
                continue; // mid-straggle: still computing its old step
            }
            if cfg.faults.crash_at(w, round) {
                let _ = co.send(w, Command::Crash);
                co.live.remove(&w);
                co.lifecycle(w, round, "crashed");
                continue;
            }
            if let Some(s) = cfg.faults.straggler_at(w, round) {
                co.send(
                    w,
                    Command::Step {
                        step: round,
                        delay_ms: s.delay_ms,
                        trace: round_trace.as_u64(),
                    },
                )?;
                co.busy.insert(w, (round + s.delay_steps, round));
                co.lifecycle(w, round, "straggling");
                continue;
            }
            co.send(
                w,
                Command::Step {
                    step: round,
                    delay_ms: 0,
                    trace: round_trace.as_u64(),
                },
            )?;
            on_time.push(w);
        }
        let due: Vec<(usize, usize)> = co
            .busy
            .iter()
            .filter(|(_, (due, _))| *due == round)
            .map(|(w, (_, orig))| (*w, *orig))
            .collect();

        // -- Gather frames -------------------------------------------
        let t_exchange = Instant::now();
        let mut needed: BTreeSet<(usize, usize)> = on_time.iter().map(|&w| (w, round)).collect();
        for &(w, orig) in &due {
            needed.insert((w, orig));
        }
        while needed.iter().any(|k| !co.buffer.contains_key(k)) {
            match co.recv()? {
                Reply::Grads {
                    worker,
                    step,
                    loss,
                    compute_ms,
                    frame,
                    trace,
                } => {
                    co.buffer.insert(
                        (worker, step),
                        GradMsg {
                            loss,
                            compute_ms,
                            frame,
                            trace,
                        },
                    );
                }
                _ => {
                    return Err(DistError::Worker {
                        worker: usize::MAX,
                        detail: "unexpected reply while gathering gradients".to_string(),
                    });
                }
            }
        }

        // -- Reduce --------------------------------------------------
        let mut frames: Vec<(usize, Vec<u8>)> = Vec::with_capacity(needed.len());
        let mut bytes_up = 0u64;
        let mut stale_count = 0usize;
        let mut dropped_count = 0usize;
        for (w, orig) in needed.iter().copied() {
            let Some(msg) = co.buffer.remove(&(w, orig)) else {
                continue;
            };
            let staleness = round - orig;
            bytes_up += msg.frame.len() as u64;
            recorder.record(Event::DistWorkerStep {
                step: orig,
                worker: w,
                loss: msg.loss,
                compute_ms: msg.compute_ms,
                staleness,
            });
            // Compute happened whether or not the frame is folded in, so
            // the compute stage is recorded before staleness filtering.
            emit_span(recorder, msg.trace, stage::COMPUTE, Some(w), msg.compute_ms);
            if let Some(m) = metrics {
                m.stage_compute_us.record_f64(msg.compute_ms * 1e3);
            }
            // Apply-or-drop is decided by the shared policy function in
            // `fault` — the same seam the `cuttlefish-check` lockstep
            // model explores — covering both bounded staleness and frames
            // computed against the pre-switch dense layout.
            let summary = co.summaries.entry(w).or_insert_with(|| WorkerSummary {
                id: w,
                ..WorkerSummary::default()
            });
            match contribution_outcome(round, orig, cfg.staleness_bound, co.switch_round) {
                ContributionOutcome::Dropped { .. } => {
                    summary.dropped += 1;
                    dropped_count += 1;
                    if staleness > 0 {
                        co.lifecycle(w, round, "stale_dropped");
                    }
                    continue;
                }
                ContributionOutcome::Applied { staleness: 0 } => {
                    summary.steps += 1;
                }
                ContributionOutcome::Applied { .. } => {
                    summary.steps += 1;
                    summary.stale += 1;
                    stale_count += 1;
                    co.lifecycle(w, round, "stale_applied");
                }
            }
            epoch_loss += msg.loss as f64;
            epoch_contribs += 1;
            frames.push((w, msg.frame));
        }
        let update = co.exchange.reduce(&co.schema, &frames)?;

        // -- Apply ---------------------------------------------------
        let lr = cfg.schedule.lr_at(epoch) * lr_scale;
        let mut bytes_down = 0u64;
        for &w in &on_time {
            co.send(
                w,
                Command::Apply {
                    lr,
                    frame: update.clone(),
                },
            )?;
            bytes_down += update.len() as u64;
        }
        co.applied_steps += 1;
        co.ledger.record_round(co.switched, bytes_up, bytes_down);
        recorder.record(Event::DistExchange {
            step: round,
            exchange: co.exchange.name().to_string(),
            participants: frames.len(),
            stale: stale_count,
            dropped: dropped_count,
            bytes_up,
            bytes_down,
            factored: co.switched,
        });
        // The exchange stage is the coordinator's view of the round:
        // gather (including waiting on worker compute) → reduce →
        // broadcast of the averaged frame.
        let exchange_ms = t_exchange.elapsed().as_secs_f64() * 1e3;
        emit_span(
            recorder,
            round_trace.as_u64(),
            stage::EXCHANGE,
            None,
            exchange_ms,
        );
        if let Some(m) = metrics {
            m.round_counter(co.switched).inc();
            m.bytes_up.add(bytes_up);
            m.bytes_down.add(bytes_down);
            m.contributions_stale.add(stale_count as u64);
            m.contributions_dropped.add(dropped_count as u64);
            m.stage_exchange_us.record_f64(exchange_ms * 1e3);
        }

        // -- Resync due stragglers to the post-apply anchor state ----
        for (w, _) in due {
            co.busy.remove(&w);
            co.sync_from_anchor(w, round)?;
        }

        // -- Epoch boundary ------------------------------------------
        if (round + 1) % cfg.steps_per_epoch == 0 {
            let mean_loss = (epoch_loss / epoch_contribs.max(1) as f64) as f32;
            loss_curve.push(mean_loss);
            epoch_loss = 0.0;
            epoch_contribs = 0;

            if !co.switched {
                if controller.wants_weights() {
                    co.send(
                        0,
                        Command::ReportWeights {
                            names: controller.tracked.clone(),
                        },
                    )?;
                    let mats = co.recv_weights()?;
                    controller.record(epoch, &mats, recorder)?;
                }
                if let Some(opts) = controller.due_switch(epoch, cfg.epochs) {
                    let (d, params) = co.do_switch(opts.clone(), round + 1)?;
                    apply_switch_to_mirror(&mut mirror, &d, &opts)?;
                    schema = ParamSchema::of(&mut mirror)?;
                    // A dense-only collective refuses the new layout
                    // here, before any worker tries to encode with it.
                    co.exchange.accepts(&schema)?;
                    co.schema = schema.clone();
                    params_final = params;
                    decisions = d;
                    e_hat = Some(epoch + 1);
                    lr_scale = controller.post_lr_scale();
                    recorder.record(Event::SwitchTriggered {
                        e_hat: epoch + 1,
                        k_hat: k_hat.unwrap_or(1),
                        decisions: decisions.iter().map(|d| d.to_event()).collect(),
                    });
                }
            }

            let evaluate =
                (epoch + 1).is_multiple_of(cfg.eval_every_epochs) || epoch + 1 == cfg.epochs;
            let metric = if evaluate {
                co.send(0, Command::Evaluate)?;
                let m = co.recv_metric()?;
                if m > best_metric {
                    best_metric = m;
                }
                final_metric = m;
                m
            } else {
                f32::NAN
            };
            metric_curve.push(metric);
            recorder.record(Event::EpochCompleted {
                epoch,
                loss: mean_loss,
                metric: if metric.is_nan() { None } else { Some(metric) },
                lr,
                wall_ms: epoch_start.elapsed().as_secs_f64() * 1e3,
            });
        }
    }

    // -- Final fleet-wide digest verification ------------------------
    let anchor = co.capture_anchor()?;
    let final_digest = state_digest(&anchor);
    let others: Vec<usize> = co.live.iter().copied().filter(|&w| w != 0).collect();
    for w in others {
        co.send(w, Command::CaptureState)?;
        let frame = co.recv_state(w)?;
        let got = state_digest(&frame);
        if got != final_digest {
            return Err(DistError::Desync {
                worker: w,
                expected: final_digest,
                got,
            });
        }
    }

    let ledger = co.ledger.clone();
    let workers: Vec<WorkerSummary> = co.summaries.values().cloned().collect();
    co.shutdown()?;

    Ok(DistRunResult {
        e_hat,
        k_hat,
        decisions,
        loss_curve,
        metric_curve,
        best_metric,
        final_metric,
        params_full,
        params_final,
        ledger,
        workers,
        final_digest,
    })
}

/// Replays worker 0's decisions on the coordinator's mirror replica so
/// the coordinator's schema tracks the fleet's wire layout.
fn apply_switch_to_mirror(
    mirror: &mut Network,
    decisions: &[RankDecision],
    opts: &SwitchOptions,
) -> DistResult<()> {
    let ranks: HashMap<String, usize> = decisions
        .iter()
        .filter_map(|d| d.chosen.map(|r| (d.name.clone(), r)))
        .collect();
    let replay = SwitchOptions {
        k: 0,
        plan: RankPlan::Explicit { ranks },
        extra_bn: opts.extra_bn,
        frobenius_decay: opts.frobenius_decay,
    };
    cuttlefish::factorize::switch_to_low_rank(mirror, &replay)?;
    Ok(())
}

fn switch_extra_bn(policy: &SwitchPolicy) -> bool {
    match policy {
        SwitchPolicy::Cuttlefish(c) => c.extra_bn,
        SwitchPolicy::Manual { extra_bn, .. } => *extra_bn,
        _ => false,
    }
}

fn switch_frobenius_decay(policy: &SwitchPolicy) -> Option<f32> {
    match policy {
        SwitchPolicy::Cuttlefish(c) => c.frobenius_decay,
        SwitchPolicy::Manual {
            frobenius_decay, ..
        } => *frobenius_decay,
        SwitchPolicy::SpectralInit {
            frobenius_decay, ..
        } => *frobenius_decay,
        SwitchPolicy::FullRankOnly => None,
    }
}
