//! Dataset sharding and per-worker seed derivation.

use crate::{DistError, DistResult};
use cuttlefish_data::VisionTask;

/// Derives a worker's private RNG seed from the single run seed.
///
/// One run seed drives the whole fleet; each worker mixes its id through
/// a SplitMix64 finalizer so the per-worker streams are decorrelated but
/// fully determined by `(run_seed, worker)`. This replaces ad-hoc
/// `seed + worker` schemes, whose streams collide across rounds (worker 1
/// at round 10 reusing worker 11's round-0 seed) and silently correlate
/// shuffles between workers.
pub fn worker_seed(run_seed: u64, worker: usize) -> u64 {
    let mut z = run_seed ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Cuts a disjoint training shard for one worker out of a vision task.
///
/// The training split is divided into `num_shards` equal row ranges
/// (trailing remainder rows are dropped so every worker sees the same
/// number of steps per epoch); the validation split is kept whole on
/// every shard so any worker can evaluate the global metric. Sharding is
/// by contiguous row range — the synthetic generators interleave classes,
/// so contiguous ranges are already class-balanced.
///
/// # Errors
///
/// [`DistError::Config`] when `worker >= num_shards`, `num_shards` is
/// zero, or the split is too small to give every shard at least one row.
pub fn shard_vision_task(
    task: &VisionTask,
    worker: usize,
    num_shards: usize,
) -> DistResult<VisionTask> {
    if num_shards == 0 {
        return Err(DistError::Config {
            field: "num_shards",
            detail: "must be > 0".to_string(),
        });
    }
    if worker >= num_shards {
        return Err(DistError::Config {
            field: "worker",
            detail: format!("id {worker} out of range for {num_shards} shards"),
        });
    }
    let n = task.train_x.rows();
    let per = n / num_shards;
    if per == 0 {
        return Err(DistError::Config {
            field: "num_shards",
            detail: format!("{n} training rows cannot feed {num_shards} shards"),
        });
    }
    let lo = worker * per;
    let hi = lo + per;
    Ok(VisionTask {
        spec: task.spec.clone(),
        train_x: task.train_x.row_range(lo, hi)?,
        train_y: task.train_y[lo..hi].to_vec(),
        val_x: task.val_x.clone(),
        val_y: task.val_y.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_data::VisionSpec;

    #[test]
    fn worker_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|w| worker_seed(42, w)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "workers {i} and {j} collide");
            }
        }
        assert_eq!(worker_seed(42, 3), worker_seed(42, 3));
        assert_ne!(worker_seed(42, 3), worker_seed(43, 3));
    }

    #[test]
    fn shards_are_disjoint_and_cover_equal_rows() {
        let task = VisionTask::generate(&VisionSpec::tiny(), 11);
        let n = task.train_x.rows();
        let shards: Vec<VisionTask> = (0..4)
            .map(|w| shard_vision_task(&task, w, 4).unwrap())
            .collect();
        let per = n / 4;
        for (w, s) in shards.iter().enumerate() {
            assert_eq!(s.train_x.rows(), per);
            assert_eq!(s.train_y.len(), per);
            // Row 0 of shard w is row w*per of the source.
            for j in 0..s.train_x.cols() {
                assert_eq!(s.train_x.get(0, j), task.train_x.get(w * per, j));
            }
            // Validation stays global.
            assert_eq!(s.val_x.rows(), task.val_x.rows());
        }
    }

    #[test]
    fn shard_rejects_out_of_range_worker() {
        let task = VisionTask::generate(&VisionSpec::tiny(), 11);
        assert!(matches!(
            shard_vision_task(&task, 4, 4),
            Err(DistError::Config { .. })
        ));
        assert!(matches!(
            shard_vision_task(&task, 0, 0),
            Err(DistError::Config { .. })
        ));
    }
}
