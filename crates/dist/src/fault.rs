//! Deterministic fault injection.
//!
//! Distributed-training failure modes — stragglers, crashes, elastic
//! membership — are normally timing-dependent and therefore untestable.
//! Here they come from a declarative [`FaultPlan`] checked up front, so a
//! scenario like "worker 2 straggles at step 5 for 3 rounds, worker 3
//! crashes at step 8, worker 4 joins at step 10" replays identically on
//! every run and the tests can assert exact per-step behavior.

use crate::{DistError, DistResult};

/// What the coordinator does with one gathered gradient frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContributionOutcome {
    /// Folded into this round's reduction; `staleness` is how many rounds
    /// late it arrived (0 = on time).
    Applied {
        /// Rounds between the frame's origin step and the current round.
        staleness: usize,
    },
    /// Counted and discarded; `stale` distinguishes a bounded-staleness
    /// drop from a layout drop (frame computed against the pre-switch
    /// dense layout).
    Dropped {
        /// True when the drop was a staleness-bound violation (as opposed
        /// to a pre-switch layout mismatch arriving on time).
        stale: bool,
    },
}

/// Decides apply-or-drop for a gradient frame computed at step `origin`
/// and gathered at step `round`: frames older than `staleness_bound`
/// rounds are dropped, and frames computed before the lockstep switch
/// (`origin < switch_round`) are dropped regardless of staleness because
/// their dense layout cannot fold into a factor reduction.
///
/// This is the single decision point shared by the live coordinator and
/// the `cuttlefish-check` lockstep model, so the schedule explorer
/// exercises exactly the policy production runs.
pub fn contribution_outcome(
    round: usize,
    origin: usize,
    staleness_bound: usize,
    switch_round: Option<usize>,
) -> ContributionOutcome {
    let staleness = round.saturating_sub(origin);
    let pre_switch = switch_round.is_some_and(|s| origin < s);
    if staleness > staleness_bound || pre_switch {
        ContributionOutcome::Dropped {
            stale: staleness > staleness_bound,
        }
    } else {
        ContributionOutcome::Applied { staleness }
    }
}

/// One injected straggler episode: the worker receives its step command
/// at `step`, but its gradient only reaches the coordinator `delay_steps`
/// rounds later (and the worker computes nothing in between — it is
/// busy). `delay_ms` is an actual sleep inside the worker so the episode
/// is visible in `compute_ms` telemetry; keep it small in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StragglerEvent {
    /// The slow worker.
    pub worker: usize,
    /// The lockstep round at which the slow step starts.
    pub step: usize,
    /// How many rounds late the gradient arrives (≥ 1).
    pub delay_steps: usize,
    /// Wall-clock sleep injected into the worker's compute.
    pub delay_ms: u64,
}

/// A worker dies at the start of `step` and never contributes again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing worker.
    pub worker: usize,
    /// The round it dies.
    pub step: usize,
}

/// A fresh worker (id ≥ the initial fleet size) joins at the start of
/// `step`: it is spawned, brought to the current factorization layout,
/// synced to worker 0's exact state (digest-verified), and participates
/// from that same round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEvent {
    /// The joining worker's id.
    pub worker: usize,
    /// The round it joins.
    pub step: usize,
}

/// The full declarative fault schedule for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Straggler episodes.
    pub stragglers: Vec<StragglerEvent>,
    /// Crashes.
    pub crashes: Vec<CrashEvent>,
    /// Elastic joins.
    pub joins: Vec<JoinEvent>,
}

impl FaultPlan {
    /// A plan with no injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The highest worker id the plan ever brings into the fleet, plus
    /// one — the shard count must be cut for this many workers so shards
    /// stay disjoint across the whole membership history.
    pub fn max_workers(&self, initial_workers: usize) -> usize {
        self.joins
            .iter()
            .map(|j| j.worker + 1)
            .max()
            .unwrap_or(0)
            .max(initial_workers)
    }

    /// Validates the plan against a fleet size and run length.
    ///
    /// Worker 0 is the fleet's anchor — it runs Algorithm 1, serves as
    /// the sync source, and guarantees every round has at least one
    /// on-time contribution — so it may neither crash nor straggle. Join
    /// ids must be fresh (≥ `initial_workers`, unique); all steps must
    /// fall inside the run; per-worker episodes must not overlap.
    ///
    /// # Errors
    ///
    /// [`DistError::Config`] naming the first violated rule.
    pub fn validate(&self, initial_workers: usize, total_steps: usize) -> DistResult<()> {
        let bad = |field: &'static str, detail: String| DistError::Config { field, detail };
        let known = self.max_workers(initial_workers);
        for s in &self.stragglers {
            if s.worker == 0 {
                return Err(bad("stragglers", "worker 0 may not straggle".to_string()));
            }
            if s.worker >= known {
                return Err(bad("stragglers", format!("unknown worker {}", s.worker)));
            }
            if s.delay_steps == 0 {
                return Err(bad("stragglers", "delay_steps must be >= 1".to_string()));
            }
            if s.step + s.delay_steps >= total_steps {
                return Err(bad(
                    "stragglers",
                    format!(
                        "worker {} straggling at step {} lands past the run ({} steps)",
                        s.worker, s.step, total_steps
                    ),
                ));
            }
        }
        for c in &self.crashes {
            if c.worker == 0 {
                return Err(bad("crashes", "worker 0 may not crash".to_string()));
            }
            if c.worker >= known {
                return Err(bad("crashes", format!("unknown worker {}", c.worker)));
            }
            if c.step >= total_steps {
                return Err(bad(
                    "crashes",
                    format!("crash at step {} is past the run", c.step),
                ));
            }
        }
        for (i, j) in self.joins.iter().enumerate() {
            if j.worker < initial_workers {
                return Err(bad(
                    "joins",
                    format!(
                        "worker {} is already in the initial fleet of {}",
                        j.worker, initial_workers
                    ),
                ));
            }
            if j.step >= total_steps {
                return Err(bad(
                    "joins",
                    format!("join at step {} is past the run", j.step),
                ));
            }
            if self.joins[..i].iter().any(|p| p.worker == j.worker) {
                return Err(bad("joins", format!("worker {} joins twice", j.worker)));
            }
        }
        // Per-worker episodes must not interleave: while a worker is
        // straggling it cannot also crash, re-straggle, or (for joiners)
        // have not yet joined.
        for s in &self.stragglers {
            let busy = s.step..=s.step + s.delay_steps;
            for o in &self.stragglers {
                if std::ptr::eq(s, o) || o.worker != s.worker {
                    continue;
                }
                if busy.contains(&o.step) {
                    return Err(bad(
                        "stragglers",
                        format!("worker {} has overlapping straggler episodes", s.worker),
                    ));
                }
            }
            for c in &self.crashes {
                if c.worker == s.worker && busy.contains(&c.step) {
                    return Err(bad(
                        "crashes",
                        format!("worker {} crashes mid-straggle", c.worker),
                    ));
                }
            }
            if let Some(j) = self.joins.iter().find(|j| j.worker == s.worker) {
                if s.step <= j.step {
                    return Err(bad(
                        "stragglers",
                        format!("worker {} straggles before joining", s.worker),
                    ));
                }
            }
        }
        for c in &self.crashes {
            if let Some(j) = self.joins.iter().find(|j| j.worker == c.worker) {
                if c.step <= j.step {
                    return Err(bad(
                        "crashes",
                        format!("worker {} crashes before joining", c.worker),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The straggler episode starting at exactly `(worker, step)`, if any.
    pub fn straggler_at(&self, worker: usize, step: usize) -> Option<&StragglerEvent> {
        self.stragglers
            .iter()
            .find(|s| s.worker == worker && s.step == step)
    }

    /// Whether `worker` crashes at the start of `step`.
    pub fn crash_at(&self, worker: usize, step: usize) -> bool {
        self.crashes
            .iter()
            .any(|c| c.worker == worker && c.step == step)
    }

    /// Workers joining at the start of `step`, in id order.
    pub fn joins_at(&self, step: usize) -> Vec<&JoinEvent> {
        let mut js: Vec<&JoinEvent> = self.joins.iter().filter(|j| j.step == step).collect();
        js.sort_by_key(|j| j.worker);
        js
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_validates() {
        assert!(FaultPlan::none().validate(4, 10).is_ok());
        assert_eq!(FaultPlan::none().max_workers(4), 4);
    }

    #[test]
    fn worker_zero_is_protected() {
        let p = FaultPlan {
            crashes: vec![CrashEvent { worker: 0, step: 1 }],
            ..FaultPlan::none()
        };
        assert!(matches!(p.validate(2, 10), Err(DistError::Config { .. })));
        let p = FaultPlan {
            stragglers: vec![StragglerEvent {
                worker: 0,
                step: 1,
                delay_steps: 2,
                delay_ms: 0,
            }],
            ..FaultPlan::none()
        };
        assert!(p.validate(2, 10).is_err());
    }

    #[test]
    fn join_ids_must_be_fresh_and_raise_max_workers() {
        let p = FaultPlan {
            joins: vec![JoinEvent { worker: 1, step: 2 }],
            ..FaultPlan::none()
        };
        assert!(p.validate(2, 10).is_err());
        let p = FaultPlan {
            joins: vec![JoinEvent { worker: 5, step: 2 }],
            ..FaultPlan::none()
        };
        assert!(p.validate(2, 10).is_ok());
        assert_eq!(p.max_workers(2), 6);
    }

    #[test]
    fn overlapping_episodes_are_rejected() {
        let p = FaultPlan {
            stragglers: vec![StragglerEvent {
                worker: 1,
                step: 2,
                delay_steps: 3,
                delay_ms: 0,
            }],
            crashes: vec![CrashEvent { worker: 1, step: 4 }],
            ..FaultPlan::none()
        };
        assert!(p.validate(2, 10).is_err());
    }

    #[test]
    fn contribution_outcome_applies_drops_and_labels() {
        use ContributionOutcome::{Applied, Dropped};
        // On time, no switch.
        assert_eq!(
            contribution_outcome(5, 5, 2, None),
            Applied { staleness: 0 }
        );
        // Tolerably stale.
        assert_eq!(
            contribution_outcome(5, 3, 2, None),
            Applied { staleness: 2 }
        );
        // Past the staleness bound.
        assert_eq!(contribution_outcome(5, 2, 2, None), Dropped { stale: true });
        // On time but computed against the pre-switch layout.
        assert_eq!(
            contribution_outcome(5, 5, 2, Some(6)),
            Dropped { stale: false }
        );
        // Post-switch frames fold normally.
        assert_eq!(
            contribution_outcome(7, 6, 2, Some(6)),
            Applied { staleness: 1 }
        );
        // Stale *and* pre-switch reports the staleness violation.
        assert_eq!(
            contribution_outcome(9, 4, 2, Some(6)),
            Dropped { stale: true }
        );
    }

    #[test]
    fn straggler_past_run_end_is_rejected() {
        let p = FaultPlan {
            stragglers: vec![StragglerEvent {
                worker: 1,
                step: 8,
                delay_steps: 2,
                delay_ms: 0,
            }],
            ..FaultPlan::none()
        };
        assert!(p.validate(2, 10).is_err());
        assert!(p.validate(2, 11).is_ok());
    }
}
