//! Live metrics for distributed runs: pre-resolved registry handles for
//! the coordinator's round loop.
//!
//! [`DistMetrics::new`] registers every distributed-training metric once
//! and keeps the `Arc` handles, so the lockstep loop records with
//! lock-free atomic ops and never touches the registry's name map per
//! round. Stage histograms are in microsecond ticks (the workspace
//! convention); counters follow Prometheus naming (`*_total`, labels in
//! `{k="v"}` form) so snapshots export cleanly through
//! `cuttlefish_telemetry::prometheus_text`.
//!
//! The counters tally exactly what the [`crate::CommLedger`] and
//! per-worker summaries account for offline, so a registry snapshot
//! reconciles one-to-one with the [`crate::DistRunResult`] of the same
//! run — a property the crate's observability test asserts.

use std::sync::Arc;

use cuttlefish_telemetry::{labeled, Counter, Histogram, MetricsRegistry};

/// Shared handles to the distributed-training metrics of one registry.
#[derive(Clone)]
pub struct DistMetrics {
    registry: Arc<MetricsRegistry>,
    pub(crate) rounds_dense: Arc<Counter>,
    pub(crate) rounds_factored: Arc<Counter>,
    pub(crate) bytes_up: Arc<Counter>,
    pub(crate) bytes_down: Arc<Counter>,
    pub(crate) contributions_stale: Arc<Counter>,
    pub(crate) contributions_dropped: Arc<Counter>,
    pub(crate) stage_compute_us: Arc<Histogram>,
    pub(crate) stage_exchange_us: Arc<Histogram>,
}

impl std::fmt::Debug for DistMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistMetrics")
            .field("registry", &self.registry)
            .finish()
    }
}

impl DistMetrics {
    /// Registers (or re-resolves) the distributed metrics in `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> DistMetrics {
        let phase =
            |name: &str| registry.counter(&labeled("dist_rounds_total", &[("phase", name)]));
        DistMetrics {
            rounds_dense: phase("dense"),
            rounds_factored: phase("factored"),
            bytes_up: registry.counter("dist_exchange_bytes_up_total"),
            bytes_down: registry.counter("dist_exchange_bytes_down_total"),
            contributions_stale: registry.counter("dist_contributions_stale_total"),
            contributions_dropped: registry.counter("dist_contributions_dropped_total"),
            stage_compute_us: registry.histogram("dist_stage_compute_us"),
            stage_exchange_us: registry.histogram("dist_stage_exchange_us"),
            registry,
        }
    }

    /// The registry these handles record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The round counter for the current wire phase.
    pub(crate) fn round_counter(&self, factored: bool) -> &Counter {
        if factored {
            &self.rounds_factored
        } else {
            &self.rounds_dense
        }
    }
}
