//! The pluggable gradient collective.
//!
//! A [`GradientExchange`] turns per-worker gradients into wire frames and
//! reduces a round's frames into the averaged update every replica
//! applies. Two implementations ship:
//!
//! - [`DenseAllReduce`] models a legacy collective compiled against the
//!   dense parameter layout: it works until the low-rank switch and then
//!   *refuses* the factorized schema with a typed error, which is exactly
//!   the failure mode of fixed-bucket NCCL-style allreduce plans when the
//!   parameter registry changes shape mid-run.
//! - [`FactorAllReduce`] is shape-aware on both sides of the switch: it
//!   exchanges dense gradients full-rank and `U`/`Vᵀ` factor gradients
//!   after, so its per-step bytes drop by the rank ratio ρ the moment the
//!   fleet factorizes.
//!
//! Reduction folds contributions in ascending worker-id order before
//! scaling by `1/n`. f32 addition is not associative; fixing the fold
//! order is what makes every replica (and every rerun) apply a
//! bit-identical update.

use crate::schema::{decode_grads, encode_grads, ParamSchema};
use crate::{DistError, DistResult};
use cuttlefish_tensor::Matrix;

/// A collective for exchanging one round of gradients.
///
/// Implementations must be `Send`: each worker thread owns one instance
/// (built from the same [`crate::ExchangeKind`]) and the coordinator owns
/// another for reduction.
pub trait GradientExchange: Send {
    /// Stable name, used in telemetry (`"dense_allreduce"`, …).
    fn name(&self) -> &'static str;

    /// Checks that this collective can carry the given schema.
    ///
    /// # Errors
    ///
    /// [`DistError::Unsupported`] when the schema's layout is outside
    /// what this collective was built for.
    fn accepts(&self, schema: &ParamSchema) -> DistResult<()>;

    /// Serializes one worker's gradients into an uplink frame.
    ///
    /// # Errors
    ///
    /// Schema refusal or frame mismatch.
    fn encode(&self, schema: &ParamSchema, grads: &[Matrix]) -> DistResult<Vec<u8>> {
        self.accepts(schema)?;
        encode_grads(schema, grads)
    }

    /// Deserializes a frame back into per-parameter gradients.
    ///
    /// # Errors
    ///
    /// Schema refusal or frame mismatch.
    fn decode(&self, schema: &ParamSchema, frame: &[u8]) -> DistResult<Vec<Matrix>> {
        self.accepts(schema)?;
        decode_grads(schema, frame)
    }

    /// Reduces one round's uplink frames into the mean-gradient downlink
    /// frame. `frames` carries `(worker_id, frame)` pairs; contributions
    /// are folded in ascending worker-id order regardless of arrival
    /// order, so the f32 sum — and therefore every replica's next
    /// parameter state — is deterministic.
    ///
    /// # Errors
    ///
    /// [`DistError::Frame`] on an empty round or any malformed frame.
    fn reduce(&self, schema: &ParamSchema, frames: &[(usize, Vec<u8>)]) -> DistResult<Vec<u8>> {
        if frames.is_empty() {
            return Err(DistError::Frame {
                detail: "cannot reduce an empty round".to_string(),
            });
        }
        let mut order: Vec<usize> = (0..frames.len()).collect();
        order.sort_by_key(|&i| frames[i].0);
        let mut acc: Option<Vec<Matrix>> = None;
        for i in order {
            let grads = self.decode(schema, &frames[i].1)?;
            match acc.as_mut() {
                None => acc = Some(grads),
                Some(sum) => {
                    for (s, g) in sum.iter_mut().zip(&grads) {
                        s.axpy(1.0, g)?;
                    }
                }
            }
        }
        let mut mean = acc.ok_or_else(|| DistError::Frame {
            detail: "reduction produced no accumulator".to_string(),
        })?;
        let inv = 1.0 / frames.len() as f32;
        for m in &mut mean {
            m.scale_in_place(inv);
        }
        self.encode(schema, &mean)
    }
}

/// Dense-layout allreduce: valid only while every parameter is full-rank.
#[derive(Debug, Default, Clone, Copy)]
pub struct DenseAllReduce;

impl GradientExchange for DenseAllReduce {
    fn name(&self) -> &'static str {
        "dense_allreduce"
    }

    fn accepts(&self, schema: &ParamSchema) -> DistResult<()> {
        if schema.factored {
            return Err(DistError::Unsupported {
                exchange: "dense_allreduce",
                detail: "model is factorized; dense collective only carries full-rank layouts"
                    .to_string(),
            });
        }
        Ok(())
    }
}

/// Shape-aware allreduce: carries whatever layout the schema describes,
/// dense before the switch and `U`/`Vᵀ` factors after.
#[derive(Debug, Default, Clone, Copy)]
pub struct FactorAllReduce;

impl GradientExchange for FactorAllReduce {
    fn name(&self) -> &'static str {
        "factor_allreduce"
    }

    fn accepts(&self, _schema: &ParamSchema) -> DistResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ParamSpec;

    fn toy_schema(factored: bool) -> ParamSchema {
        ParamSchema {
            specs: vec![
                ParamSpec {
                    name: "a".to_string(),
                    rows: 2,
                    cols: 3,
                },
                ParamSpec {
                    name: "b".to_string(),
                    rows: 1,
                    cols: 4,
                },
            ],
            factored,
        }
    }

    fn grads(scale: f32) -> Vec<Matrix> {
        vec![
            Matrix::from_vec(2, 3, (0..6).map(|i| scale * (i as f32 + 1.0)).collect()).unwrap(),
            Matrix::from_vec(1, 4, (0..4).map(|i| scale * (i as f32 - 2.0)).collect()).unwrap(),
        ]
    }

    #[test]
    fn reduce_averages_in_worker_order() {
        let schema = toy_schema(false);
        let ex = FactorAllReduce;
        // Deliver frames out of worker order; the mean must not care.
        let frames = vec![
            (2usize, ex.encode(&schema, &grads(3.0)).unwrap()),
            (0usize, ex.encode(&schema, &grads(1.0)).unwrap()),
            (1usize, ex.encode(&schema, &grads(2.0)).unwrap()),
        ];
        let mean = ex
            .decode(&schema, &ex.reduce(&schema, &frames).unwrap())
            .unwrap();
        let want = grads(2.0); // (1 + 2 + 3) / 3
        for (m, w) in mean.iter().zip(&want) {
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    assert!((m.get(i, j) - w.get(i, j)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn dense_refuses_factored_schema() {
        let schema = toy_schema(true);
        let err = DenseAllReduce.accepts(&schema).unwrap_err();
        assert!(matches!(
            err,
            DistError::Unsupported {
                exchange: "dense_allreduce",
                ..
            }
        ));
        assert!(FactorAllReduce.accepts(&schema).is_ok());
    }

    #[test]
    fn reduce_rejects_empty_round() {
        let schema = toy_schema(false);
        assert!(matches!(
            FactorAllReduce.reduce(&schema, &[]),
            Err(DistError::Frame { .. })
        ));
    }
}
