//! Reconciliation between the two observability planes of a distributed
//! run: the live metrics registry must describe exactly the same run as
//! the offline [`DistRunResult`] accounting — round counters equal to
//! the ledger's phase totals, byte counters equal to the ledger's wire
//! totals, and stale/dropped tallies equal to the per-worker summaries.

use std::sync::Arc;

use cuttlefish::SwitchPolicy;
use cuttlefish_data::{VisionSpec, VisionTask};
use cuttlefish_dist::{
    run_distributed_observed, DistConfig, DistMetrics, FaultPlan, NetBuilder, StragglerEvent,
};
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_telemetry::{MemoryRecorder, MetricsRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn builder() -> NetBuilder {
    Arc::new(|| {
        let mut rng = StdRng::seed_from_u64(7);
        build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng)
    })
}

/// A small run that exercises both wire phases (manual switch after the
/// first epoch) and a straggler (so the stale path is live).
fn observed_run() -> (
    cuttlefish_dist::DistRunResult,
    MemoryRecorder,
    Arc<MetricsRegistry>,
) {
    let task = VisionTask::generate(&VisionSpec::tiny(), 3);
    let mut cfg = DistConfig::quick(3, 2, 3, 42);
    cfg.policy = SwitchPolicy::Manual {
        full_rank_epochs: 1,
        k: 1,
        rank_ratio: 0.25,
        extra_bn: false,
        frobenius_decay: None,
    };
    cfg.faults = FaultPlan {
        stragglers: vec![StragglerEvent {
            worker: 1,
            step: 1,
            delay_steps: 1,
            delay_ms: 5,
        }],
        crashes: vec![],
        joins: vec![],
    };
    let recorder = MemoryRecorder::new();
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = DistMetrics::new(Arc::clone(&registry));
    let res = run_distributed_observed(&cfg, &task, builder(), &recorder, Some(&metrics)).unwrap();
    (res, recorder, registry)
}

#[test]
fn registry_reconciles_exactly_with_run_result() {
    let (res, _recorder, registry) = observed_run();
    let snap = registry.snapshot();

    // Round counters per wire phase match the ledger.
    assert_eq!(
        snap.counter("dist_rounds_total{phase=\"dense\"}"),
        Some(res.ledger.full_rounds as u64)
    );
    assert_eq!(
        snap.counter("dist_rounds_total{phase=\"factored\"}"),
        Some(res.ledger.low_rounds as u64)
    );
    assert_eq!(res.ledger.full_rounds + res.ledger.low_rounds, 6);
    assert!(res.ledger.full_rounds > 0 && res.ledger.low_rounds > 0);

    // Wire bytes match the ledger exactly.
    assert_eq!(
        snap.counter("dist_exchange_bytes_up_total"),
        Some(res.ledger.bytes_up)
    );
    assert_eq!(
        snap.counter("dist_exchange_bytes_down_total"),
        Some(res.ledger.bytes_down)
    );

    // Stale/dropped tallies match the per-worker summaries.
    let stale: u64 = res.workers.iter().map(|w| w.stale as u64).sum();
    let dropped: u64 = res.workers.iter().map(|w| w.dropped as u64).sum();
    assert!(
        stale >= 1,
        "straggler should have contributed a stale frame"
    );
    assert_eq!(snap.counter("dist_contributions_stale_total"), Some(stale));
    assert_eq!(
        snap.counter("dist_contributions_dropped_total"),
        Some(dropped)
    );

    // Every received contribution records a compute-stage sample (even
    // dropped ones — the compute happened); every round records one
    // exchange-stage sample.
    let contributions: u64 = res
        .workers
        .iter()
        .map(|w| (w.steps + w.dropped) as u64)
        .sum();
    let compute = snap.histogram("dist_stage_compute_us").unwrap();
    assert_eq!(compute.count, contributions);
    let exchange = snap.histogram("dist_stage_exchange_us").unwrap();
    assert_eq!(exchange.count, 6);
    assert!(
        compute.sum > 0,
        "compute stages should take measurable time"
    );
}

#[cfg(feature = "obs")]
#[test]
fn trace_spans_attribute_compute_to_rounds() {
    use std::collections::HashSet;

    use cuttlefish_telemetry::Event;

    let (res, recorder, _registry) = observed_run();
    let mut exchange_traces: HashSet<u64> = HashSet::new();
    let mut compute_traces: Vec<u64> = Vec::new();
    for e in recorder.events() {
        if let Event::TraceSpan {
            trace,
            stage,
            worker,
            wall_ms,
        } = e
        {
            assert!(wall_ms >= 0.0);
            match stage.as_str() {
                "compute" => {
                    assert!(worker.is_some(), "compute spans attribute a worker");
                    compute_traces.push(trace);
                }
                "exchange" => {
                    assert!(worker.is_none(), "exchange spans are fleet-wide");
                    assert!(exchange_traces.insert(trace), "one exchange span per round");
                }
                other => panic!("unexpected dist stage {other}"),
            }
        }
    }
    assert_eq!(exchange_traces.len(), 6, "one trace per lockstep round");
    let contributions: usize = res.workers.iter().map(|w| w.steps + w.dropped).sum();
    assert_eq!(compute_traces.len(), contributions);
    // A straggler's frame carries its origin round's trace, so every
    // compute span joins to some exchange span's trace.
    for t in &compute_traces {
        assert!(exchange_traces.contains(t), "orphan compute span");
    }
}
