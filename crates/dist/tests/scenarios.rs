//! End-to-end distributed scenarios: convergence parity, the ρ
//! communication drop, fault handling, and telemetry rendering.

use cuttlefish::{CuttlefishConfig, SwitchPolicy};
use cuttlefish_data::{VisionSpec, VisionTask};
use cuttlefish_dist::{
    run_distributed, run_distributed_with, CrashEvent, DistConfig, DistError, ExchangeKind,
    FaultPlan, JoinEvent, NetBuilder, StragglerEvent,
};
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_telemetry::{MemoryRecorder, RunReport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn builder() -> NetBuilder {
    Arc::new(|| {
        let mut rng = StdRng::seed_from_u64(7);
        build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng)
    })
}

fn tiny_task() -> VisionTask {
    VisionTask::generate(&VisionSpec::tiny(), 3)
}

fn manual_policy(full_rank_epochs: usize) -> SwitchPolicy {
    SwitchPolicy::Manual {
        full_rank_epochs,
        k: 1,
        rank_ratio: 0.25,
        extra_bn: false,
        frobenius_decay: None,
    }
}

#[test]
fn four_worker_run_tracks_single_worker_loss() {
    let task = tiny_task();
    let four = run_distributed(&DistConfig::quick(4, 4, 2, 42), &task, builder()).unwrap();
    let one = run_distributed(&DistConfig::quick(1, 4, 2, 42), &task, builder()).unwrap();
    assert_eq!(four.loss_curve.len(), one.loss_curve.len());
    // The runs sample different batches (disjoint shards vs full-set
    // shuffle) and BatchNorm sees different batch compositions, so the
    // curves agree statistically, not pointwise: both must converge and
    // stay within a bounded gap of each other every epoch.
    for (epoch, (a, b)) in four.loss_curve.iter().zip(&one.loss_curve).enumerate() {
        assert!(a.is_finite() && b.is_finite());
        assert!(
            (a - b).abs() < 0.75,
            "epoch {epoch}: 4-worker loss {a} strayed from single-worker loss {b}"
        );
    }
    let (f0, f_end) = (four.loss_curve[0], *four.loss_curve.last().unwrap());
    let (o0, o_end) = (one.loss_curve[0], *one.loss_curve.last().unwrap());
    assert!(
        f_end < 0.6 * f0,
        "4-worker run failed to converge: {f0} -> {f_end}"
    );
    assert!(
        o_end < 0.6 * o0,
        "1-worker run failed to converge: {o0} -> {o_end}"
    );
}

#[test]
fn post_switch_comm_volume_drops_by_rank_ratio() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(4, 4, 2, 42);
    cfg.policy = manual_policy(2);
    let res = run_distributed(&cfg, &task, builder()).unwrap();

    assert_eq!(res.e_hat, Some(2));
    assert!(res.params_final < res.params_full);
    let rho = res.params_final as f64 / res.params_full as f64;
    let ratio = res
        .ledger
        .post_switch_ratio()
        .expect("run crossed the switch, both phases must have rounds");
    // Frames carry exactly one f32 per live parameter, so the measured
    // per-step byte ratio IS the parameter ratio ρ.
    assert!(
        (ratio - rho).abs() < 1e-9,
        "bytes/step ratio {ratio} != parameter ratio {rho}"
    );
    assert!(
        ratio < 0.9,
        "switch should shrink communication, got {ratio}"
    );
    assert!(res.ledger.full_rounds > 0 && res.ledger.low_rounds > 0);
}

#[test]
fn dense_exchange_refuses_to_cross_the_switch() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(2, 3, 2, 42);
    cfg.policy = manual_policy(1);
    cfg.exchange = ExchangeKind::Dense;
    let err = run_distributed(&cfg, &task, builder()).unwrap_err();
    assert!(
        matches!(
            err,
            DistError::Unsupported {
                exchange: "dense_allreduce",
                ..
            }
        ),
        "expected typed refusal, got: {err}"
    );
}

#[test]
fn straggler_within_bound_contributes_stale_and_stays_deterministic() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(4, 2, 3, 42);
    cfg.staleness_bound = 2;
    cfg.faults = FaultPlan {
        stragglers: vec![StragglerEvent {
            worker: 1,
            step: 1,
            delay_steps: 1,
            delay_ms: 5,
        }],
        crashes: vec![],
        joins: vec![],
    };
    let a = run_distributed(&cfg, &task, builder()).unwrap();
    let w1 = &a.workers[1];
    assert!(w1.stale >= 1, "delayed gradient should apply as stale");
    assert_eq!(w1.dropped, 0);
    assert!(w1.lifecycle.iter().any(|(_, e)| e == "straggling"));
    assert!(w1.lifecycle.iter().any(|(_, e)| e == "synced"));
    // Fault injection must not break replay determinism.
    let b = run_distributed(&cfg, &task, builder()).unwrap();
    assert_eq!(a.final_digest, b.final_digest);
}

#[test]
fn staleness_beyond_bound_drops_the_gradient() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(4, 2, 3, 42);
    cfg.staleness_bound = 1;
    cfg.faults = FaultPlan {
        stragglers: vec![StragglerEvent {
            worker: 2,
            step: 1,
            delay_steps: 3,
            delay_ms: 5,
        }],
        crashes: vec![],
        joins: vec![],
    };
    let res = run_distributed(&cfg, &task, builder()).unwrap();
    let w2 = &res.workers[2];
    assert!(w2.dropped >= 1, "over-stale gradient should be dropped");
    assert!(w2.lifecycle.iter().any(|(_, e)| e == "stale_dropped"));
}

#[test]
fn crashed_worker_leaves_and_the_run_completes() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(3, 2, 3, 42);
    cfg.faults = FaultPlan {
        stragglers: vec![],
        crashes: vec![CrashEvent { worker: 2, step: 2 }],
        joins: vec![],
    };
    let res = run_distributed(&cfg, &task, builder()).unwrap();
    let w2 = &res.workers[2];
    assert!(w2.lifecycle.iter().any(|(_, e)| e == "crashed"));
    // The survivors keep stepping after the departure.
    assert!(res.workers[0].steps > w2.steps);
    assert!(res.loss_curve.iter().all(|l| l.is_finite()));
}

#[test]
fn elastic_join_catches_up_and_is_digest_verified() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(2, 2, 3, 42);
    cfg.faults = FaultPlan {
        stragglers: vec![],
        crashes: vec![],
        joins: vec![JoinEvent { worker: 2, step: 2 }],
    };
    let res = run_distributed(&cfg, &task, builder()).unwrap();
    assert_eq!(res.workers.len(), 3);
    let joiner = &res.workers[2];
    assert!(joiner.lifecycle.iter().any(|(_, e)| e == "joined"));
    // `synced` only lands after the digest check passed, and the run-end
    // fleet digest re-verifies the joiner stayed in lockstep afterwards.
    assert!(joiner.lifecycle.iter().any(|(_, e)| e == "synced"));
    assert!(joiner.steps > 0);
    assert!(res.ledger.sync_bytes > 0);
}

#[test]
fn cuttlefish_policy_switches_the_whole_fleet() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(2, 4, 2, 42);
    // ε = ∞ makes the tracker converge on its first verdict, so the
    // switch lands early regardless of the synthetic task's spectra; the
    // vanilla rank rule is aggressive enough to shrink even the tiny
    // model's near-full-rank layers.
    cfg.policy = SwitchPolicy::Cuttlefish(CuttlefishConfig {
        epsilon: f32::INFINITY,
        window: 1,
        rank_rule: cuttlefish::RankRule::Vanilla,
        ..CuttlefishConfig::default()
    });
    let res = run_distributed(&cfg, &task, builder()).unwrap();
    assert!(res.e_hat.is_some(), "automated switch should trigger");
    assert!(res.k_hat.is_some());
    assert!(!res.decisions.is_empty());
    assert!(res.params_final < res.params_full);
    assert!(res.ledger.post_switch_ratio().is_some());
}

#[test]
fn telemetry_report_renders_communication_volume() {
    let task = tiny_task();
    let mut cfg = DistConfig::quick(2, 3, 2, 42);
    cfg.policy = manual_policy(1);
    let recorder = MemoryRecorder::new();
    run_distributed_with(&cfg, &task, builder(), &recorder).unwrap();

    let jsonl = recorder
        .events()
        .iter()
        .map(|e| e.to_json().encode())
        .collect::<Vec<_>>()
        .join("\n");
    let report = RunReport::from_jsonl(&jsonl);
    let rendered = report.render();
    assert!(rendered.contains("distributed training"), "{rendered}");
    assert!(rendered.contains("communication volume"), "{rendered}");
    assert!(
        rendered.contains("post-switch bytes/step ratio"),
        "{rendered}"
    );
    assert!(rendered.contains("per-worker timeline"), "{rendered}");
}
