//! All-reduce correctness: the distributed gradient must equal the
//! single-worker gradient, dense and factorized.

use cuttlefish::adapter::{TaskAdapter, TaskBatch, VisionAdapter};
use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish::{OptimizerKind, StepEngine};
use cuttlefish_data::{VisionSpec, VisionTask};
use cuttlefish_dist::schema::{decode_grads, ParamSchema};
use cuttlefish_dist::{
    shard_vision_task, worker_seed, DenseAllReduce, FactorAllReduce, GradientExchange,
};
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_nn::Network;
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKERS: usize = 4;
const BATCH: usize = 16;
const RUN_SEED: u64 = 99;

fn build_net() -> Network {
    let mut rng = StdRng::seed_from_u64(7);
    build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng)
}

fn engine() -> StepEngine {
    StepEngine::new(
        OptimizerKind::Sgd {
            momentum: 0.9,
            weight_decay: 1e-4,
        },
        None,
        0.0,
    )
}

/// One deterministic batch per worker, from that worker's shard and
/// seeded RNG stream.
fn worker_batches(task: &VisionTask) -> Vec<(VisionAdapter, TaskBatch)> {
    (0..WORKERS)
        .map(|w| {
            let shard = shard_vision_task(task, w, WORKERS).unwrap();
            let mut adapter = VisionAdapter::new(shard);
            adapter.augment = false;
            let mut rng = StdRng::seed_from_u64(worker_seed(RUN_SEED, w));
            let batch = adapter
                .train_batches(0, BATCH, &mut rng)
                .unwrap()
                .into_iter()
                .next()
                .unwrap();
            (adapter, batch)
        })
        .collect()
}

/// Factorizes a freshly-built replica at a fixed global ratio. All
/// replicas start identical, so repeating this per worker yields
/// identical factor layouts and values.
fn factorize(net: &mut Network, rho: f32) {
    let opts = SwitchOptions {
        k: 1,
        plan: RankPlan::FixedRatio { rho },
        extra_bn: false,
        frobenius_decay: None,
    };
    switch_to_low_rank(net, &opts).unwrap();
}

/// Computes the reduced (mean) gradient over per-worker backward passes
/// and the reference gradient from accumulating the same batches into a
/// single replica, then asserts they agree within `tol`.
fn assert_reduce_matches_accumulation(
    exchange: &dyn GradientExchange,
    prep: impl Fn(&mut Network),
    tol: f32,
) {
    let task = VisionTask::generate(&VisionSpec::tiny(), 3);
    let batches = worker_batches(&task);

    // Per-worker gradients on separate (identical) replicas.
    let mut frames: Vec<(usize, Vec<u8>)> = Vec::new();
    let mut schema: Option<ParamSchema> = None;
    for (w, (adapter, batch)) in batches.iter().enumerate() {
        let mut net = build_net();
        prep(&mut net);
        let s = ParamSchema::of(&mut net).unwrap();
        let eng = engine();
        eng.forward_backward(&mut net, adapter, batch.clone())
            .unwrap();
        let grads = net.collect_grads();
        frames.push((w, exchange.encode(&s, &grads).unwrap()));
        schema = Some(s);
    }
    let schema = schema.unwrap();

    // Reference: one replica accumulates all four batches (gradients sum
    // in the network between applies), then scale by 1/N.
    let mut reference = build_net();
    prep(&mut reference);
    let eng = engine();
    for (adapter, batch) in &batches {
        eng.forward_backward(&mut reference, adapter, batch.clone())
            .unwrap();
    }
    let expected: Vec<Matrix> = reference
        .collect_grads()
        .into_iter()
        .map(|g| g.scale(1.0 / WORKERS as f32))
        .collect();

    let reduced = decode_grads(&schema, &exchange.reduce(&schema, &frames).unwrap()).unwrap();
    assert_eq!(reduced.len(), expected.len());
    let mut checked = 0usize;
    for (got, want) in reduced.iter().zip(&expected) {
        for i in 0..got.rows() {
            for j in 0..got.cols() {
                let d = (got.get(i, j) - want.get(i, j)).abs();
                assert!(d <= tol, "gradient mismatch {d} at ({i},{j}) exceeds {tol}");
                checked += 1;
            }
        }
    }
    assert!(checked > 0);
}

#[test]
fn dense_allreduce_matches_single_worker_gradient() {
    assert_reduce_matches_accumulation(&DenseAllReduce, |_| {}, 1e-6);
}

#[test]
fn factor_allreduce_composes_exactly_at_quarter_rank() {
    assert_reduce_matches_accumulation(&FactorAllReduce, |net| factorize(net, 0.25), 1e-6);
}

#[test]
fn factor_allreduce_composes_exactly_at_half_rank() {
    assert_reduce_matches_accumulation(&FactorAllReduce, |net| factorize(net, 0.5), 1e-6);
}

#[test]
fn dense_allreduce_rejects_factorized_model() {
    let mut net = build_net();
    factorize(&mut net, 0.25);
    let schema = ParamSchema::of(&mut net).unwrap();
    assert!(schema.factored);
    let err = DenseAllReduce.accepts(&schema).unwrap_err();
    assert!(matches!(
        err,
        cuttlefish_dist::DistError::Unsupported {
            exchange: "dense_allreduce",
            ..
        }
    ));
    // The shape-aware collective carries the same schema fine, and its
    // factor frames are smaller than the dense layout by construction.
    FactorAllReduce.accepts(&schema).unwrap();
    let mut dense_net = build_net();
    let dense_schema = ParamSchema::of(&mut dense_net).unwrap();
    assert!(schema.frame_bytes() < dense_schema.frame_bytes());
}
