//! Bit-identical replay: the same config must produce the same run.

use cuttlefish_data::{VisionSpec, VisionTask};
use cuttlefish_dist::{run_distributed, worker_seed, DistConfig, NetBuilder};
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn builder() -> NetBuilder {
    Arc::new(|| {
        let mut rng = StdRng::seed_from_u64(7);
        build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng)
    })
}

#[test]
fn two_four_worker_runs_are_bit_identical() {
    let task = VisionTask::generate(&VisionSpec::tiny(), 3);
    let cfg = DistConfig::quick(4, 2, 3, 42);
    let a = run_distributed(&cfg, &task, builder()).unwrap();
    let b = run_distributed(&cfg, &task, builder()).unwrap();
    assert_eq!(a.final_digest, b.final_digest);
    // Loss curves must agree bitwise, not just approximately: the whole
    // schedule (batch order, reduction order, apply order) is replayed.
    assert_eq!(
        a.loss_curve.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        b.loss_curve.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(a.ledger.total_bytes(), b.ledger.total_bytes());
}

#[test]
fn different_run_seed_changes_the_trajectory() {
    let task = VisionTask::generate(&VisionSpec::tiny(), 3);
    let a = run_distributed(&DistConfig::quick(4, 1, 3, 42), &task, builder()).unwrap();
    let b = run_distributed(&DistConfig::quick(4, 1, 3, 43), &task, builder()).unwrap();
    assert_ne!(a.final_digest, b.final_digest);
}

#[test]
fn worker_seeds_derive_distinct_streams_from_one_run_seed() {
    let seeds: Vec<u64> = (0..8).map(|w| worker_seed(42, w)).collect();
    for (i, a) in seeds.iter().enumerate() {
        for b in &seeds[i + 1..] {
            assert_ne!(a, b, "worker seeds collided");
        }
    }
    // Same inputs, same seed; different run, different seed.
    assert_eq!(worker_seed(42, 3), worker_seed(42, 3));
    assert_ne!(worker_seed(42, 3), worker_seed(43, 3));
}
