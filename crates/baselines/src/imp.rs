//! Iterative Magnitude Pruning with weight rewinding (Frankle et al.,
//! "Stabilizing the Lottery Ticket Hypothesis", 2019).
//!
//! Each round: train to completion, prune 20% of the remaining weights by
//! global magnitude, rewind the survivors to their values at an early
//! epoch, repeat. The total compute is `rounds + 1` full trainings — which
//! is why the paper's Table 1 reports IMP at 0.09–0.14× the speed of
//! ordinary training despite its excellent accuracy.

use crate::masking::{WeightMasks, WeightSnapshot};
use crate::util::{train_with_hook, LoopCfg, Phase};
use cuttlefish::adapter::TaskAdapter;
use cuttlefish::CfResult;
use cuttlefish_nn::{Network, TargetInfo};
use cuttlefish_perf::TrainingClock;
use serde::{Deserialize, Serialize};

/// IMP configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpConfig {
    /// Pruning rounds (each removes `prune_fraction` of survivors).
    pub rounds: usize,
    /// Fraction of remaining weights pruned per round (paper: 0.2).
    pub prune_fraction: f32,
    /// Epoch whose weights are rewound to (paper: epoch 6).
    pub rewind_epoch: usize,
}

impl Default for ImpConfig {
    fn default() -> Self {
        ImpConfig {
            rounds: 5,
            prune_fraction: 0.2,
            rewind_epoch: 1,
        }
    }
}

/// IMP outcome.
#[derive(Debug, Clone)]
pub struct ImpResult {
    /// Best metric of the final (most pruned) training round.
    pub best_metric: f32,
    /// Surviving (nonzero) weight count among prunable weights.
    pub remaining_params: usize,
    /// Kept fraction among prunable weights.
    pub density: f32,
    /// Simulated end-to-end hours — all rounds included.
    pub sim_hours: f64,
}

/// Runs IMP end to end.
///
/// # Errors
///
/// Propagates adapter/network errors.
#[allow(clippy::too_many_arguments)]
pub fn run_imp(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    cfg: &LoopCfg,
    imp: &ImpConfig,
    rng: &mut rand::rngs::StdRng,
    clock_targets: &[TargetInfo],
    device: cuttlefish_perf::DeviceProfile,
    sim_batch: usize,
    sim_iters_per_epoch: usize,
) -> CfResult<ImpResult> {
    let mut masks = WeightMasks::full(net);
    let mut clock = TrainingClock::new(device);

    // Warm up to the rewind epoch once and snapshot.
    let warm = LoopCfg {
        epochs: imp.rewind_epoch.max(1),
        ..cfg.clone()
    };
    train_with_hook(net, adapter, &warm, rng, &mut |_, _| Ok(()))?;
    clock.add_training_iterations(
        clock_targets,
        sim_batch,
        sim_iters_per_epoch * warm.epochs,
        |_| None,
    );
    let snapshot = WeightSnapshot::capture(net);

    let mut last_best = 0.0f32;
    for round in 0..=imp.rounds {
        let stats = train_with_hook(net, adapter, cfg, rng, &mut |n, phase| {
            if phase == Phase::AfterStep {
                masks.apply(n);
            }
            Ok(())
        })?;
        clock.add_training_iterations(
            clock_targets,
            sim_batch,
            sim_iters_per_epoch * cfg.epochs,
            |_| None,
        );
        last_best = stats.best_metric;
        if round < imp.rounds {
            masks.prune_smallest_remaining(net, imp.prune_fraction);
            snapshot.restore(net);
            masks.apply(net);
        }
    }
    Ok(ImpResult {
        best_metric: last_best,
        remaining_params: masks.remaining_count(),
        density: masks.density(),
        sim_hours: clock.hours(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::adapter::VisionAdapter;
    use cuttlefish::OptimizerKind;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use cuttlefish_nn::schedule::LrSchedule;
    use cuttlefish_perf::arch::resnet18_cifar;
    use cuttlefish_perf::DeviceProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_cfg(epochs: usize) -> LoopCfg {
        LoopCfg {
            epochs,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.05 },
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            label_smoothing: 0.0,
        }
    }

    #[test]
    fn imp_prunes_and_still_learns() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
        let imp = ImpConfig {
            rounds: 2,
            prune_fraction: 0.3,
            rewind_epoch: 1,
        };
        let res = run_imp(
            &mut net,
            &mut ad,
            &quick_cfg(2),
            &imp,
            &mut rng,
            &resnet18_cifar(10),
            DeviceProfile::v100(),
            1024,
            49,
        )
        .unwrap();
        // Two rounds of 30%: density ≈ 0.49.
        assert!(res.density < 0.55 && res.density > 0.4, "{}", res.density);
        assert!(res.best_metric > 0.4, "{}", res.best_metric);
        assert!(res.sim_hours > 0.0);
    }

    #[test]
    fn imp_time_scales_with_rounds() {
        let run_with = |rounds: usize| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
            let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
            let imp = ImpConfig {
                rounds,
                prune_fraction: 0.2,
                rewind_epoch: 1,
            };
            run_imp(
                &mut net,
                &mut ad,
                &quick_cfg(1),
                &imp,
                &mut rng,
                &resnet18_cifar(10),
                DeviceProfile::v100(),
                1024,
                49,
            )
            .unwrap()
            .sim_hours
        };
        let one = run_with(1);
        let three = run_with(3);
        assert!(three > 1.5 * one, "{three} vs {one}");
    }
}
