//! XNOR-Net (Rastegari et al., ECCV 2016): training with binary weights.
//!
//! Before every forward pass each dense target weight is replaced by its
//! binary approximation `sign(W) · α` with a per-output-column scale
//! `α_j = mean(|W[:, j]|)`; after the backward pass the real-valued
//! weights are restored and updated with the straight-through-estimator
//! gradients. As in the paper's experiments, the binarization is emulated
//! in FP32 (PyTorch lacks a fast binary conv), so the method is *slower*
//! than dense training (Table 1 reports 0.23–0.35×) while its effective
//! storage is 1 bit/weight (reported as 3.1% compression).

use crate::util::{train_with_hook, LoopCfg, Phase};
use cuttlefish::adapter::TaskAdapter;
use cuttlefish::CfResult;
use cuttlefish_nn::Network;
use cuttlefish_tensor::Matrix;
use std::collections::HashMap;

/// XNOR-Net outcome.
#[derive(Debug, Clone)]
pub struct XnorResult {
    /// Best metric of the binarized training run.
    pub best_metric: f32,
    /// Effective compression rate (1-bit weights ⇒ 1/32 ≈ 3.1%).
    pub effective_compression: f32,
    /// Simulated-time multiplier vs. dense training (re-binarization each
    /// iteration, emulated binary ops).
    pub time_multiplier: f64,
}

/// Binarizes a matrix column-wise: `sign(w)·mean(|w|)` per column.
pub fn binarize_columns(w: &Matrix) -> Matrix {
    let (rows, cols) = w.shape();
    let mut alphas = vec![0.0f32; cols];
    for (j, alpha) in alphas.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for i in 0..rows {
            acc += w.get(i, j).abs();
        }
        *alpha = acc / rows.max(1) as f32;
    }
    Matrix::from_fn(rows, cols, |i, j| {
        let v = w.get(i, j);
        if v >= 0.0 {
            alphas[j]
        } else {
            -alphas[j]
        }
    })
}

/// Runs XNOR-style binarized training with the straight-through estimator.
///
/// # Errors
///
/// Propagates adapter/network errors.
pub fn run_xnor(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    cfg: &LoopCfg,
    rng: &mut rand::rngs::StdRng,
) -> CfResult<XnorResult> {
    let mut real_weights: HashMap<String, Matrix> = HashMap::new();
    let stats = train_with_hook(net, adapter, cfg, rng, &mut |n, phase| {
        match phase {
            Phase::BeforeForward => {
                // Swap in binarized weights (keep the real ones aside).
                real_weights.clear();
                n.visit_weights(&mut |name, w| {
                    if let Some(dense) = w.dense_mut() {
                        let real = dense.clone();
                        *dense = binarize_columns(&real);
                        real_weights.insert(name.to_string(), real);
                    }
                });
            }
            Phase::BeforeStep => {
                // STE: restore real weights so the update applies to them;
                // gradients were computed against the binarized weights.
                n.visit_weights(&mut |name, w| {
                    if let (Some(real), Some(dense)) = (real_weights.remove(name), w.dense_mut()) {
                        *dense = real;
                    }
                });
            }
            Phase::AfterStep | Phase::AfterEpoch(_) => {}
        }
        Ok(())
    })?;
    // Evaluate the final *binarized* model: binarize once more for the
    // reported metric (training's evaluate already ran on real weights;
    // report the binary model, which is what gets deployed).
    let mut stash: HashMap<String, Matrix> = HashMap::new();
    net.visit_weights(&mut |name, w| {
        if let Some(dense) = w.dense_mut() {
            stash.insert(name.to_string(), dense.clone());
            *dense = binarize_columns(&stash[name]);
        }
    });
    let binary_metric = adapter.evaluate(net)?;
    net.visit_weights(&mut |name, w| {
        if let (Some(real), Some(dense)) = (stash.remove(name), w.dense_mut()) {
            *dense = real;
        }
    });
    Ok(XnorResult {
        best_metric: binary_metric.max(if adapter.higher_is_better() {
            f32::NEG_INFINITY
        } else {
            stats.best_metric
        }),
        effective_compression: 1.0 / 32.0,
        time_multiplier: 4.3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::adapter::VisionAdapter;
    use cuttlefish::OptimizerKind;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use cuttlefish_nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binarize_produces_two_levels_per_column() {
        let w = Matrix::from_rows(&[vec![0.5, -2.0], vec![-1.5, 1.0]]).unwrap();
        let b = binarize_columns(&w);
        // Column 0: α = 1.0 → {1, -1}; column 1: α = 1.5 → {-1.5, 1.5}.
        assert_eq!(b.get(0, 0), 1.0);
        assert_eq!(b.get(1, 0), -1.0);
        assert_eq!(b.get(0, 1), -1.5);
        assert_eq!(b.get(1, 1), 1.5);
    }

    #[test]
    fn binarization_preserves_scale() {
        let w = Matrix::from_fn(8, 4, |i, j| ((i * 4 + j) as f32 * 0.37).sin());
        let b = binarize_columns(&w);
        // Norm of binarized weight stays within 2x of original.
        let ratio = b.frobenius_norm() / w.frobenius_norm();
        assert!(ratio > 0.5 && ratio < 2.0, "{ratio}");
    }

    #[test]
    fn xnor_trains_and_reports_compression() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
        let cfg = LoopCfg {
            epochs: 4,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.03 },
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 0.0,
            },
            label_smoothing: 0.0,
        };
        let res = run_xnor(&mut net, &mut ad, &cfg, &mut rng).unwrap();
        assert!((res.effective_compression - 0.03125).abs() < 1e-6);
        assert!(res.time_multiplier > 1.0);
        // Binary model should still beat chance (4 classes).
        assert!(res.best_metric > 0.3, "{}", res.best_metric);
        // Real-valued weights must have been restored (not ±α).
        let mut distinct = std::collections::HashSet::new();
        net.visit_weights(&mut |_, w| {
            if let Some(d) = w.dense() {
                for v in d.as_slice().iter().take(16) {
                    distinct.insert(v.to_bits());
                }
            }
        });
        assert!(
            distinct.len() > 4,
            "weights look binarized: {}",
            distinct.len()
        );
    }
}
