//! EB-Train (You et al., ICLR 2020): "early-bird" structured tickets.
//!
//! Train with an L1 penalty on BatchNorm scales (network slimming); each
//! epoch, form the channel-pruning mask that removes the `prune_fraction`
//! smallest `|γ|` globally, and compare it against a short FIFO of recent
//! masks. When the maximum pairwise Hamming distance falls below a
//! threshold the *early-bird ticket* has emerged: prune those channels
//! (zeroing their γ/β permanently) and continue training the slimmed
//! network.

use crate::util::{train_with_hook, LoopCfg, Phase};
use cuttlefish::adapter::TaskAdapter;
use cuttlefish::CfResult;
use cuttlefish_nn::{Network, TargetKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// EB-Train configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EbConfig {
    /// Fraction of channels pruned (the paper evaluates 30% and 50%).
    pub prune_fraction: f32,
    /// L1 coefficient on BN γ during the search phase.
    pub l1_gamma: f32,
    /// FIFO length for mask-stability detection.
    pub fifo_len: usize,
    /// Hamming-distance threshold declaring the ticket stable.
    pub distance_threshold: f32,
}

impl Default for EbConfig {
    fn default() -> Self {
        EbConfig {
            prune_fraction: 0.3,
            l1_gamma: 1e-4,
            fifo_len: 3,
            distance_threshold: 0.05,
        }
    }
}

/// EB-Train outcome.
#[derive(Debug, Clone)]
pub struct EbResult {
    /// Epoch at which the early-bird ticket emerged (0-based), if it did.
    pub eb_epoch: Option<usize>,
    /// Best metric after pruned training.
    pub best_metric: f32,
    /// Estimated parameter count of the channel-pruned architecture.
    pub params_estimate: usize,
    /// Fraction of channels kept.
    pub kept_fraction: f32,
}

/// Current global channel mask: true = kept. Exactly the
/// `prune_fraction` smallest `|γ|` are pruned, ties broken by channel
/// index (so identical initial γ values still yield a well-defined mask).
fn channel_mask(net: &mut Network, prune_fraction: f32) -> Vec<bool> {
    let mut gammas: Vec<f32> = Vec::new();
    net.visit_gammas(&mut |_, g, _| {
        gammas.extend(g.value.as_slice().iter().map(|v| v.abs()));
    });
    let k = ((gammas.len() as f32) * prune_fraction) as usize;
    let mut order: Vec<usize> = (0..gammas.len()).collect();
    order.sort_by(|&a, &b| {
        gammas[a]
            .partial_cmp(&gammas[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut mask = vec![true; gammas.len()];
    for &i in order.iter().take(k) {
        mask[i] = false;
    }
    mask
}

fn hamming(a: &[bool], b: &[bool]) -> f32 {
    let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
    diff as f32 / a.len().max(1) as f32
}

/// Estimates the parameter count of the pruned architecture: each conv
/// keeps `kept_out` of its filters and sees `kept_in` of its inputs, so
/// its parameters scale by `kept_in · kept_out` (linear heads scale by
/// `kept_in` only). `kept` is a single global kept-fraction — adequate for
/// the table-level comparison.
fn pruned_params_estimate(net: &mut Network, kept: f32) -> usize {
    net.targets()
        .iter()
        .map(|t| {
            let (r, c) = t.matrix_shape();
            let full = r * c;
            match t.kind {
                TargetKind::Conv { .. } => (full as f32 * kept * kept) as usize,
                TargetKind::Linear { .. } => (full as f32 * kept) as usize,
            }
        })
        .sum()
}

/// Runs EB-Train end to end.
///
/// # Errors
///
/// Propagates adapter/network errors.
pub fn run_eb(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    cfg: &LoopCfg,
    eb: &EbConfig,
    rng: &mut rand::rngs::StdRng,
) -> CfResult<EbResult> {
    let mut fifo: VecDeque<Vec<bool>> = VecDeque::new();
    let mut eb_epoch: Option<usize> = None;
    let mut final_mask: Option<Vec<bool>> = None;

    let prune_fraction = eb.prune_fraction;
    let l1 = eb.l1_gamma;
    let fifo_len = eb.fifo_len;
    let threshold = eb.distance_threshold;

    let stats = train_with_hook(net, adapter, cfg, rng, &mut |n, phase| {
        match phase {
            Phase::BeforeStep => {
                if eb_epoch.is_none() {
                    // Slimming: L1 subgradient on every BN γ.
                    n.visit_gammas(&mut |_, g, _| {
                        let sign = g.value.map(|v| v.signum());
                        g.accumulate_grad(l1, &sign);
                    });
                }
            }
            Phase::AfterStep => {
                if let Some(mask) = &final_mask {
                    // Keep pruned channels dead.
                    let mut idx = 0usize;
                    n.visit_gammas(&mut |_, g, b| {
                        for j in 0..g.value.cols() {
                            if !mask[idx] {
                                g.value.set(0, j, 0.0);
                                b.value.set(0, j, 0.0);
                            }
                            idx += 1;
                        }
                    });
                }
            }
            Phase::AfterEpoch(epoch) => {
                if eb_epoch.is_none() {
                    let mask = channel_mask(n, prune_fraction);
                    let stable = fifo.len() == fifo_len
                        && fifo.iter().all(|m| hamming(m, &mask) < threshold);
                    fifo.push_back(mask.clone());
                    if fifo.len() > fifo_len {
                        fifo.pop_front();
                    }
                    if stable {
                        eb_epoch = Some(epoch);
                        final_mask = Some(mask);
                    }
                }
            }
            Phase::BeforeForward => {}
        }
        Ok(())
    })?;

    // If the ticket never stabilized, prune at the end anyway (the paper's
    // fallback is the full slimming schedule).
    let mask = final_mask.unwrap_or_else(|| channel_mask(net, eb.prune_fraction));
    let kept = mask.iter().filter(|&&m| m).count() as f32 / mask.len().max(1) as f32;
    Ok(EbResult {
        eb_epoch,
        best_metric: stats.best_metric,
        params_estimate: pruned_params_estimate(net, kept),
        kept_fraction: kept,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::adapter::VisionAdapter;
    use cuttlefish::OptimizerKind;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use cuttlefish_nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hamming_distance_basics() {
        assert_eq!(hamming(&[true, true], &[true, true]), 0.0);
        assert_eq!(hamming(&[true, false], &[false, true]), 1.0);
    }

    #[test]
    fn channel_mask_prunes_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let mask = channel_mask(&mut net, 0.3);
        let kept = mask.iter().filter(|&&m| m).count() as f32 / mask.len() as f32;
        assert!((kept - 0.7).abs() < 0.05, "kept {kept}");
    }

    #[test]
    fn eb_run_finds_ticket_and_learns() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let full = net.param_count();
        let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
        let cfg = LoopCfg {
            epochs: 8,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.05 },
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            label_smoothing: 0.0,
        };
        let eb = EbConfig {
            fifo_len: 2,
            distance_threshold: 0.2,
            ..EbConfig::default()
        };
        let res = run_eb(&mut net, &mut ad, &cfg, &eb, &mut rng).unwrap();
        assert!(res.kept_fraction < 0.8);
        assert!(res.params_estimate < full);
        assert!(res.best_metric > 0.35, "{}", res.best_metric);
    }
}
