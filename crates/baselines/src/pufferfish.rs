//! Pufferfish (Wang et al., MLSys 2021): low-rank training with manually
//! tuned hyperparameters — fixed global rank ratio ρ = 1/4, hand-picked
//! full-rank epochs `E` and hybrid boundary `K`.
//!
//! This module provides the paper's tuned settings (Tables 8–10) as
//! [`cuttlefish::SwitchPolicy::Manual`] values so the shared trainer can
//! run them on identical data/models.

use cuttlefish::SwitchPolicy;

/// The tuned (E, K) pairs the paper reports for Pufferfish (Tables 8–10),
/// scaled to a micro run of `total_epochs` by keeping the paper's E/T
/// fraction (E = 80 of 300 ⇒ ~27%).
pub fn policy_for(model: &str, total_epochs: usize) -> SwitchPolicy {
    let e = |frac: f64| ((total_epochs as f64 * frac).round() as usize).max(1);
    let (full_rank_epochs, k) = match model {
        // Table 8: ResNet-18 uses E = 80/300, K = 3; VGG-19 E = 80/300, K = 9.
        "resnet18" => (e(80.0 / 300.0), 3),
        "vgg19" => (e(80.0 / 300.0), 9),
        // Table 9: ImageNet CNNs use E = 10/90, K = 40 (of 54); scaled by
        // stack position for micro models the bench maps K by fraction.
        "resnet50" => (e(10.0 / 90.0), 17),
        "wideresnet50" => (e(10.0 / 90.0), 17),
        // Table 10: DeiT/ResMLP use E = 80/300 and a K tuned to match the
        // Cuttlefish model sizes.
        "deit" => (e(80.0 / 300.0), 7),
        "resmlp" => (e(80.0 / 300.0), 7),
        _ => (e(80.0 / 300.0), 1),
    };
    SwitchPolicy::Manual {
        full_rank_epochs,
        k,
        rank_ratio: 0.25,
        extra_bn: false,
        frobenius_decay: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_follow_paper_fractions() {
        let SwitchPolicy::Manual {
            full_rank_epochs,
            k,
            rank_ratio,
            ..
        } = policy_for("resnet18", 30)
        else {
            panic!("manual policy expected")
        };
        assert_eq!(full_rank_epochs, 8); // 80/300 of 30
        assert_eq!(k, 3);
        assert!((rank_ratio - 0.25).abs() < 1e-6);
    }

    #[test]
    fn vgg_keeps_more_layers() {
        let SwitchPolicy::Manual { k: k_vgg, .. } = policy_for("vgg19", 300) else {
            panic!()
        };
        let SwitchPolicy::Manual { k: k_rn, .. } = policy_for("resnet18", 300) else {
            panic!()
        };
        assert!(k_vgg > k_rn, "paper: VGG K = 9 vs ResNet K = 3");
    }

    #[test]
    fn unknown_model_gets_default() {
        assert!(matches!(
            policy_for("mystery", 10),
            SwitchPolicy::Manual { k: 1, .. }
        ));
    }
}
