//! GraSP (Wang, Zhang & Grosse, ICLR 2020): pruning at initialization by
//! Gradient Signal Preservation.
//!
//! The score of weight θ is `S(θ) = -θ ⊙ (H·g)` where `g` is the loss
//! gradient and `H` the Hessian at initialization; weights with the
//! *largest* scores most reduce the post-pruning gradient norm and are
//! removed. `H·g` is estimated by the finite difference
//! `(∇L(θ + δ·g) − ∇L(θ)) / δ`.

use crate::masking::WeightMasks;
use crate::util::{train_with_hook, LoopCfg, Phase};
use cuttlefish::adapter::{TaskAdapter, TaskBatch};
use cuttlefish::CfResult;
use cuttlefish_nn::{Mode, Network};
use cuttlefish_tensor::Matrix;
use std::collections::HashMap;

/// GraSP outcome.
#[derive(Debug, Clone)]
pub struct GraspResult {
    /// Best metric of the masked training run.
    pub best_metric: f32,
    /// Surviving weight count among prunable weights.
    pub remaining_params: usize,
    /// Kept fraction.
    pub density: f32,
}

/// Collects per-target dense-weight gradients into a map.
fn target_grads(net: &mut Network) -> HashMap<String, Matrix> {
    let mut grads = HashMap::new();
    net.visit_weights(&mut |name, w| {
        let name = name.to_string();
        let mut first = true;
        w.visit_params(&mut |p| {
            // For a dense weight the first (and only) param is W itself.
            if first {
                grads.insert(name.clone(), p.grad.clone());
                first = false;
            }
        });
    });
    grads
}

fn backward_once(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    batch: &TaskBatch,
) -> CfResult<()> {
    net.zero_grads();
    let logits = net.forward(batch.input.clone(), Mode::Train)?;
    let (_, grad) = adapter.loss_and_grad(&logits, &batch.target, 0.0)?;
    net.backward(grad)?;
    Ok(())
}

/// Computes GraSP masks keeping `keep_fraction` of prunable weights.
///
/// # Errors
///
/// Propagates adapter/network errors.
pub fn grasp_masks(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    batch_size: usize,
    keep_fraction: f32,
    rng: &mut rand::rngs::StdRng,
) -> CfResult<WeightMasks> {
    let batches = adapter.train_batches(0, batch_size, rng)?;
    let batch = &batches[0];
    // g = ∇L(θ).
    backward_once(net, adapter, batch)?;
    let g = target_grads(net);
    // θ ← θ + δ·g (per target weight only).
    let delta = 1e-3f32;
    net.visit_weights(&mut |name, w| {
        if let (Some(gm), Some(dense)) = (g.get(name), w.dense_mut()) {
            dense
                .axpy(delta, gm)
                .expect("gradient shape matches weight");
        }
    });
    // g' = ∇L(θ + δ·g); Hg ≈ (g' − g)/δ.
    backward_once(net, adapter, batch)?;
    let g2 = target_grads(net);
    // Restore θ.
    net.visit_weights(&mut |name, w| {
        if let (Some(gm), Some(dense)) = (g.get(name), w.dense_mut()) {
            dense
                .axpy(-delta, gm)
                .expect("gradient shape matches weight");
        }
    });
    net.zero_grads();

    // Scores S = -θ ⊙ Hg. Per GraSP, removing the weights with the
    // *highest* scores best preserves the post-pruning gradient norm, so
    // exactly the lowest `keep_fraction` of scores survive (index-based
    // selection handles the many exactly-zero scores from inactive units).
    let mut scores: Vec<f32> = Vec::new();
    let mut per_target: Vec<(String, Matrix)> = Vec::new();
    net.visit_weights(&mut |name, w| {
        if let (Some(g1), Some(g2m), Some(dense)) = (g.get(name), g2.get(name), w.dense()) {
            let hg = g2m.sub(g1).expect("shapes agree").scale(1.0 / delta);
            let s = dense.hadamard(&hg).expect("shapes agree").scale(-1.0);
            scores.extend_from_slice(s.as_slice());
            per_target.push((name.to_string(), s));
        }
    });
    let keep = ((scores.len() as f32) * keep_fraction).round() as usize;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut keep_flags = vec![false; scores.len()];
    for &i in order.iter().take(keep) {
        keep_flags[i] = true;
    }

    let mut masks = HashMap::new();
    let mut offset = 0usize;
    for (name, s) in per_target {
        let len = s.len();
        let flags = &keep_flags[offset..offset + len];
        let mask = Matrix::from_fn(s.rows(), s.cols(), |i, j| {
            if flags[i * s.cols() + j] {
                1.0
            } else {
                0.0
            }
        });
        masks.insert(name, mask);
        offset += len;
    }
    Ok(WeightMasks::from_map(masks))
}

/// Runs GraSP: mask at init, then ordinary masked training.
///
/// # Errors
///
/// Propagates adapter/network errors.
pub fn run_grasp(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    cfg: &LoopCfg,
    keep_fraction: f32,
    rng: &mut rand::rngs::StdRng,
) -> CfResult<GraspResult> {
    let masks = grasp_masks(net, adapter, cfg.batch_size, keep_fraction, rng)?;
    masks.apply(net);
    let stats = train_with_hook(net, adapter, cfg, rng, &mut |n, phase| {
        if phase == Phase::AfterStep {
            masks.apply(n);
        }
        Ok(())
    })?;
    Ok(GraspResult {
        best_metric: stats.best_metric,
        remaining_params: masks.remaining_count(),
        density: masks.density(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::adapter::VisionAdapter;
    use cuttlefish::OptimizerKind;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use cuttlefish_nn::schedule::LrSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masks_keep_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
        let masks = grasp_masks(&mut net, &mut ad, 32, 0.4, &mut rng).unwrap();
        let d = masks.density();
        assert!((d - 0.4).abs() < 0.1, "density {d}");
    }

    #[test]
    fn grasp_trains_masked_and_learns() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
        let cfg = LoopCfg {
            epochs: 3,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.05 },
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            label_smoothing: 0.0,
        };
        let res = run_grasp(&mut net, &mut ad, &cfg, 0.5, &mut rng).unwrap();
        assert!(res.density < 0.62, "{}", res.density);
        assert!(res.best_metric > 0.35, "{}", res.best_metric);
        // Masked weights stay zero after training.
        let mut zeros = 0usize;
        net.visit_weights(&mut |_, w| {
            if let Some(d) = w.dense() {
                zeros += d.as_slice().iter().filter(|&&v| v == 0.0).count();
            }
        });
        assert!(zeros > 0);
    }
}
