//! SI&FD (Khodak et al., ICLR 2021): factorized training from scratch with
//! **spectral initialization** and **Frobenius decay** — always `E = 0`,
//! `K = 1`, with the global rank ratio ρ tuned per task so that model
//! sizes match the ones Cuttlefish discovers (paper Table 12).

use cuttlefish::SwitchPolicy;

/// The paper's tuned ρ values (Table 12).
pub fn tuned_rho(model: &str, dataset: &str) -> f32 {
    match (model, dataset) {
        ("resnet18", "cifar10") => 0.08,
        ("resnet18", "cifar100") => 0.105,
        ("resnet18", "svhn") => 0.032,
        ("vgg19", "cifar10") => 0.1,
        ("vgg19", "cifar100") => 0.165,
        ("vgg19", "svhn") => 0.059,
        _ => 0.1,
    }
}

/// Builds the SI&FD policy for a model/dataset pair. Micro-scale weights
/// have far fewer redundant directions than the paper's, so `rho_floor`
/// lets callers clamp the tuned ratio to something trainable (the bench
/// harness instead tunes ρ to match Cuttlefish's discovered sizes, exactly
/// like the paper's †footnote).
pub fn policy_for(model: &str, dataset: &str, rho_floor: f32) -> SwitchPolicy {
    SwitchPolicy::SpectralInit {
        rank_ratio: tuned_rho(model, dataset).max(rho_floor),
        frobenius_decay: Some(1e-4),
    }
}

/// SI&FD with an explicitly chosen ρ (the "tuned to match Cuttlefish's
/// sizes" variant used in Tables 1 and 19).
pub fn policy_with_rho(rho: f32) -> SwitchPolicy {
    SwitchPolicy::SpectralInit {
        rank_ratio: rho,
        frobenius_decay: Some(1e-4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table12_values() {
        assert!((tuned_rho("resnet18", "svhn") - 0.032).abs() < 1e-6);
        assert!((tuned_rho("vgg19", "cifar100") - 0.165).abs() < 1e-6);
    }

    #[test]
    fn harder_tasks_get_higher_rho() {
        // CIFAR-100 needs more rank than SVHN (paper's observation).
        assert!(tuned_rho("resnet18", "cifar100") > tuned_rho("resnet18", "svhn"));
        assert!(tuned_rho("vgg19", "cifar100") > tuned_rho("vgg19", "svhn"));
    }

    #[test]
    fn policy_is_spectral_init_with_fd() {
        let SwitchPolicy::SpectralInit {
            rank_ratio,
            frobenius_decay,
        } = policy_for("resnet18", "cifar10", 0.2)
        else {
            panic!()
        };
        assert!((rank_ratio - 0.2).abs() < 1e-6, "floor applies");
        assert!(frobenius_decay.is_some());
    }
}
