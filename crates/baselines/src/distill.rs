//! Knowledge distillation (Hinton et al.) — the DistilBERT / TinyBERT
//! stand-ins for Table 4.
//!
//! A smaller student is trained on the GLUE task with the blended loss
//! `α·CE(student, labels) + (1 − α)·T²·KL(p_T(teacher) ‖ p_T(student))`,
//! where `p_T` is the temperature-softened softmax.

use crate::util::LoopCfg;
use cuttlefish::adapter::{GlueAdapter, Target, TaskAdapter};
use cuttlefish::{CfResult, CuttlefishError};
use cuttlefish_data::text::GlueTask;
use cuttlefish_nn::{Act, Mode, Network};
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;

/// Distillation hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillConfig {
    /// Weight of the hard-label cross-entropy.
    pub alpha: f32,
    /// Softmax temperature.
    pub temperature: f32,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            alpha: 0.5,
            temperature: 2.0,
        }
    }
}

fn softmax_rows_with_t(logits: &Matrix, t: f32) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for i in 0..logits.rows() {
        let row = logits.row(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b / t));
        let mut denom = 0.0f32;
        let dst = out.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            let e = (v / t - max).exp();
            dst[j] = e;
            denom += e;
        }
        for v in dst.iter_mut() {
            *v /= denom.max(f32::MIN_POSITIVE);
        }
    }
    out
}

/// Soft cross-entropy gradient for distillation: `(p_s − p_t)·T / B`,
/// following the standard `T²`-weighted KL whose gradient w.r.t. student
/// logits is `T·(softmax(z_s/T) − softmax(z_t/T))`.
fn soft_ce_grad(student_logits: &Matrix, teacher_logits: &Matrix, t: f32) -> Matrix {
    let ps = softmax_rows_with_t(student_logits, t);
    let pt = softmax_rows_with_t(teacher_logits, t);
    ps.sub(&pt)
        .expect("student/teacher widths agree")
        .scale(t / student_logits.rows().max(1) as f32)
}

/// Trains `student` on `task` distilling from the (already fine-tuned)
/// `teacher`; returns the student's best validation metric.
///
/// # Errors
///
/// Propagates adapter/network errors; rejects regression tasks (the paper
/// distills classification heads).
pub fn distill_train(
    student: &mut Network,
    teacher: &mut Network,
    task: &GlueTask,
    cfg: &LoopCfg,
    dcfg: &DistillConfig,
    rng: &mut StdRng,
) -> CfResult<f32> {
    if task.classes < 2 {
        return Err(CuttlefishError::BadConfig {
            detail: "distillation requires a classification task".to_string(),
        });
    }
    let mut adapter = GlueAdapter::new(task.clone());
    let alpha = dcfg.alpha;
    let temp = dcfg.temperature;

    // Custom loop: the hook interface can't inject a second model into the
    // loss, so distillation runs its own batch loop reusing the adapter.
    let mut best = f32::NEG_INFINITY;
    for epoch in 0..cfg.epochs {
        let lr = cfg.schedule.lr_at(epoch);
        let batches = adapter.train_batches(epoch, cfg.batch_size, rng)?;
        let mut opt = match cfg.optimizer {
            cuttlefish::OptimizerKind::AdamW { weight_decay } => {
                cuttlefish_nn::optim::AdamW::new(weight_decay)
            }
            cuttlefish::OptimizerKind::Sgd { .. } => {
                return Err(CuttlefishError::BadConfig {
                    detail: "distillation preset uses AdamW".to_string(),
                })
            }
        };
        for batch in batches {
            let Target::Classes(labels) = &batch.target else {
                continue;
            };
            let teacher_logits = teacher.forward(batch.input.clone(), Mode::Eval)?;
            let student_logits = student.forward(batch.input, Mode::Train)?;
            let (_, hard_grad) =
                cuttlefish_nn::loss::cross_entropy(student_logits.data(), labels, 0.0)?;
            let soft_grad = soft_ce_grad(student_logits.data(), teacher_logits.data(), temp);
            let grad = hard_grad.scale(alpha).add(&soft_grad.scale(1.0 - alpha))?;
            student.backward(Act::flat(grad))?;
            opt.next_step();
            student.step(&mut opt, lr);
            student.zero_grads();
        }
        let m = adapter.evaluate(student)?;
        best = best.max(m);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::OptimizerKind;
    use cuttlefish_data::glue_suite;
    use cuttlefish_nn::models::{build_micro_bert, BertHead, MicroBertConfig};
    use cuttlefish_nn::schedule::LrSchedule;
    use rand::SeedableRng;

    #[test]
    fn soft_grad_vanishes_when_models_agree() {
        let logits = Matrix::from_rows(&[vec![1.0, -1.0], vec![0.3, 0.7]]).unwrap();
        let g = soft_ce_grad(&logits, &logits, 2.0);
        assert!(g.max_abs() < 1e-6);
    }

    #[test]
    fn soft_grad_points_toward_teacher() {
        // Teacher prefers class 1; student uniform → gradient pushes
        // logit 1 up (negative grad on class 1).
        let student = Matrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let teacher = Matrix::from_rows(&[vec![-2.0, 2.0]]).unwrap();
        let g = soft_ce_grad(&student, &teacher, 1.0);
        assert!(g.get(0, 1) < 0.0);
        assert!(g.get(0, 0) > 0.0);
    }

    #[test]
    fn distillation_improves_student() {
        let suite = glue_suite(24, 8, 0);
        let task = suite.iter().find(|t| t.name == "SST-2").unwrap().clone();
        let mut rng = StdRng::seed_from_u64(0);
        let teacher_cfg = MicroBertConfig {
            vocab: 24,
            max_tokens: 8,
            dim: 16,
            depth: 2,
            heads: 2,
            mlp_ratio: 2,
            head: BertHead::Classification { classes: 2 },
        };
        let mut teacher = build_micro_bert(&teacher_cfg, &mut rng);
        // Fine-tune the teacher briefly.
        let cfg = LoopCfg {
            epochs: 5,
            batch_size: 16,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            optimizer: OptimizerKind::AdamW { weight_decay: 0.0 },
            label_smoothing: 0.0,
        };
        let mut ad = GlueAdapter::new(task.clone());
        crate::util::train_with_hook(&mut teacher, &mut ad, &cfg, &mut rng, &mut |_, _| Ok(()))
            .unwrap();

        // Student: half depth/width.
        let student_cfg = MicroBertConfig {
            dim: 8,
            depth: 1,
            heads: 2,
            ..teacher_cfg
        };
        let mut student = build_micro_bert(&student_cfg, &mut rng);
        let metric = distill_train(
            &mut student,
            &mut teacher,
            &task,
            &cfg,
            &DistillConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(metric > 0.55, "student metric {metric}");
    }

    #[test]
    fn regression_tasks_rejected() {
        let suite = glue_suite(24, 8, 0);
        let sts = suite.iter().find(|t| t.name == "STS-B").unwrap().clone();
        let mut rng = StdRng::seed_from_u64(1);
        let cfgs = MicroBertConfig::tiny(2);
        let mut a = build_micro_bert(&cfgs, &mut rng);
        let mut b = build_micro_bert(&cfgs, &mut rng);
        let cfg = LoopCfg {
            epochs: 1,
            batch_size: 8,
            schedule: LrSchedule::Constant { lr: 1e-3 },
            optimizer: OptimizerKind::AdamW { weight_decay: 0.0 },
            label_smoothing: 0.0,
        };
        assert!(distill_train(
            &mut a,
            &mut b,
            &sts,
            &cfg,
            &DistillConfig::default(),
            &mut rng
        )
        .is_err());
    }
}
