//! Baseline training methods from the Cuttlefish paper's evaluation
//! (§4.1 "Baseline methods").
//!
//! | Module | Paper baseline | Approach |
//! |---|---|---|
//! | [`pufferfish`] | Pufferfish (Wang et al. 2021) | manually tuned `E`, `K`, fixed global ρ = 1/4 |
//! | [`si_fd`] | SI&FD (Khodak et al. 2020) | spectral init at `E = 0`, `K = 1`, tuned ρ, Frobenius decay |
//! | [`lc`] | LC compression (Idelbayev & Carreira-Perpiñán 2020) | alternating L/C optimization that *learns* per-layer ranks |
//! | [`masking`] + [`imp`] | IMP (Frankle et al. 2019) | iterative magnitude pruning with weight rewinding |
//! | [`grasp`] | GraSP (Wang et al. 2020) | prune-at-init by gradient signal preservation |
//! | [`eb`] | EB-Train (You et al. 2020) | early-bird structured tickets from BN-γ slimming |
//! | [`xnor`] | XNOR-Net (Rastegari et al. 2016) | binary weights via straight-through estimator |
//! | [`distill`] | DistilBERT / TinyBERT | smaller students trained with logit distillation |
//!
//! Pufferfish and SI&FD reuse the `cuttlefish` crate's trainer with its
//! `Manual` / `SpectralInit` switch policies; the others implement their
//! own training loops on the same substrate so every method sees identical
//! data, models, and optimizers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distill;
pub mod eb;
pub mod grasp;
pub mod imp;
pub mod lc;
pub mod masking;
pub mod pufferfish;
pub mod si_fd;
pub mod util;
pub mod xnor;
