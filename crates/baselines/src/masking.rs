//! Weight masks for unstructured-pruning baselines (IMP, GraSP).
//!
//! A mask is a 0/1 matrix per dense factorization target. `apply` zeroes
//! masked weights in place; pruning baselines call it after every
//! optimizer step so momentum cannot resurrect pruned weights.

use cuttlefish_nn::{Network, Param};
use cuttlefish_tensor::Matrix;
use std::collections::HashMap;

/// Per-target binary masks.
#[derive(Debug, Clone)]
pub struct WeightMasks {
    masks: HashMap<String, Matrix>,
}

impl WeightMasks {
    /// Creates all-ones masks over every dense target weight of `net`.
    pub fn full(net: &mut Network) -> Self {
        let mut masks = HashMap::new();
        net.visit_weights(&mut |name, w| {
            if let Some(dense) = w.dense() {
                masks.insert(
                    name.to_string(),
                    Matrix::from_fn(dense.rows(), dense.cols(), |_, _| 1.0),
                );
            }
        });
        WeightMasks { masks }
    }

    /// Creates masks from explicit matrices (used by GraSP scoring).
    pub fn from_map(masks: HashMap<String, Matrix>) -> Self {
        WeightMasks { masks }
    }

    /// Number of masked (zeroed) weights.
    pub fn pruned_count(&self) -> usize {
        self.masks
            .values()
            .map(|m| m.as_slice().iter().filter(|&&v| v == 0.0).count())
            .sum()
    }

    /// Number of surviving weights.
    pub fn remaining_count(&self) -> usize {
        self.masks
            .values()
            .map(|m| m.as_slice().iter().filter(|&&v| v != 0.0).count())
            .sum()
    }

    /// Overall kept fraction.
    pub fn density(&self) -> f32 {
        let total: usize = self.masks.values().map(|m| m.len()).sum();
        if total == 0 {
            return 1.0;
        }
        self.remaining_count() as f32 / total as f32
    }

    /// Zeroes masked weights in `net` (call after each optimizer step).
    pub fn apply(&self, net: &mut Network) {
        net.visit_weights(&mut |name, w| {
            if let (Some(mask), Some(dense)) = (self.masks.get(name), w.dense_mut()) {
                for (v, &m) in dense.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *v *= m;
                }
            }
        });
    }

    /// Prunes the globally-smallest |weight| entries among currently
    /// unmasked weights so that `fraction` of the *remaining* weights are
    /// removed (the IMP per-round rule, 20% in the paper).
    pub fn prune_smallest_remaining(&mut self, net: &mut Network, fraction: f32) {
        // Collect magnitudes of surviving weights.
        let mut magnitudes: Vec<f32> = Vec::new();
        net.visit_weights(&mut |name, w| {
            if let (Some(mask), Some(dense)) = (self.masks.get(name), w.dense()) {
                for (v, &m) in dense.as_slice().iter().zip(mask.as_slice()) {
                    if m != 0.0 {
                        magnitudes.push(v.abs());
                    }
                }
            }
        });
        if magnitudes.is_empty() {
            return;
        }
        let k = ((magnitudes.len() as f32) * fraction).floor() as usize;
        if k == 0 {
            return;
        }
        magnitudes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let threshold = magnitudes[k - 1];
        // Zero mask entries at or below the threshold (capped at k cuts to
        // handle ties deterministically in visit order).
        let mut cut = 0usize;
        net.visit_weights(&mut |name, w| {
            if let (Some(mask), Some(dense)) = (self.masks.get_mut(name), w.dense()) {
                for (idx, &v) in dense.as_slice().iter().enumerate() {
                    if cut >= k {
                        break;
                    }
                    if mask.as_slice()[idx] != 0.0 && v.abs() <= threshold {
                        mask.as_mut_slice()[idx] = 0.0;
                        cut += 1;
                    }
                }
            }
        });
        self.apply(net);
    }
}

/// Snapshot of every parameter value of a network (for IMP rewinding).
#[derive(Debug, Clone)]
pub struct WeightSnapshot {
    values: Vec<Matrix>,
}

impl WeightSnapshot {
    /// Captures all parameter values.
    pub fn capture(net: &mut Network) -> Self {
        let mut values = Vec::new();
        net.visit_params(&mut |p: &mut Param| values.push(p.value.clone()));
        WeightSnapshot { values }
    }

    /// Restores the captured values (and clears optimizer slots, matching
    /// lottery-ticket rewinding).
    ///
    /// # Panics
    ///
    /// Panics if the network's parameter structure changed since capture.
    pub fn restore(&self, net: &mut Network) {
        let mut i = 0usize;
        net.visit_params(&mut |p: &mut Param| {
            assert!(
                i < self.values.len() && p.value.shape() == self.values[i].shape(),
                "parameter structure changed since snapshot"
            );
            p.value = self.values[i].clone();
            p.slots.clear();
            p.zero_grad();
            i += 1;
        });
        assert_eq!(
            i,
            self.values.len(),
            "parameter count changed since snapshot"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng)
    }

    #[test]
    fn full_mask_is_dense() {
        let mut n = net();
        let m = WeightMasks::full(&mut n);
        assert_eq!(m.pruned_count(), 0);
        assert!((m.density() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn prune_removes_requested_fraction() {
        let mut n = net();
        let mut m = WeightMasks::full(&mut n);
        let total = m.remaining_count();
        m.prune_smallest_remaining(&mut n, 0.2);
        let after = m.remaining_count();
        let removed = total - after;
        let expect = (total as f32 * 0.2) as usize;
        assert!(
            (removed as i64 - expect as i64).unsigned_abs() as usize <= total / 100 + 1,
            "removed {removed}, expected ≈{expect}"
        );
        // Iterative: pruning again removes 20% of the *remaining*.
        m.prune_smallest_remaining(&mut n, 0.2);
        let after2 = m.remaining_count();
        assert!(after2 < after);
        assert!(after2 as f32 > total as f32 * 0.6);
    }

    #[test]
    fn apply_zeroes_masked_weights() {
        let mut n = net();
        let mut m = WeightMasks::full(&mut n);
        m.prune_smallest_remaining(&mut n, 0.5);
        // Count zeros among dense weights.
        let mut zeros = 0usize;
        let mut total = 0usize;
        n.visit_weights(&mut |_, w| {
            if let Some(d) = w.dense() {
                zeros += d.as_slice().iter().filter(|&&v| v == 0.0).count();
                total += d.len();
            }
        });
        assert!(zeros as f32 > 0.45 * total as f32);
    }

    #[test]
    fn snapshot_restores_values_and_clears_slots() {
        let mut n = net();
        let snap = WeightSnapshot::capture(&mut n);
        // Perturb everything and add fake optimizer state.
        n.visit_params(&mut |p| {
            p.value.scale_in_place(2.0);
            p.slots.push(Matrix::zeros(p.value.rows(), p.value.cols()));
        });
        snap.restore(&mut n);
        let mut any_slot = false;
        let mut idx = 0usize;
        n.visit_params(&mut |p| {
            any_slot |= !p.slots.is_empty();
            idx += 1;
        });
        assert!(!any_slot);
        assert!(idx > 0);
        // Values actually restored: capture again and compare.
        let snap2 = WeightSnapshot::capture(&mut n);
        assert_eq!(snap.values.len(), snap2.values.len());
        for (a, b) in snap.values.iter().zip(&snap2.values) {
            assert_eq!(a, b);
        }
    }
}
