//! LC model compression (Idelbayev & Carreira-Perpiñán, CVPR 2020):
//! low-rank compression where the rank of each layer is **learned** by
//! alternating optimization.
//!
//! * **L step** — ordinary SGD on the task loss plus the quadratic
//!   attachment `μ/2 · ‖W − Θ‖²`, pulling each weight toward its current
//!   low-rank surrogate `Θ`.
//! * **C step** — for each layer, `Θ ← best rank-r approximation of W`
//!   where `r` minimizes `‖W − W_r‖_F² + α·r·(m + n)` (reconstruction
//!   error plus a parameter-count penalty): the closed-form rank learner.
//! * `μ` grows over rounds; at the end the model is factorized at the
//!   learned ranks and briefly fine-tuned.
//!
//! This faithfully reproduces the paper's trade-off: LC finds ranks close
//! to Cuttlefish's (Figure 5) but costs many full trainings' worth of
//! compute (Table 1 reports 0.03–0.08× speed).

use crate::util::{train_with_hook, LoopCfg, Phase};
use cuttlefish::adapter::TaskAdapter;
use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish::CfResult;
use cuttlefish_nn::{Network, TargetInfo};
use cuttlefish_perf::TrainingClock;
use cuttlefish_tensor::svd::Svd;
use cuttlefish_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// LC configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LcConfig {
    /// Initial attachment strength μ.
    pub mu_start: f32,
    /// Multiplicative μ growth per C step.
    pub mu_growth: f32,
    /// Parameter-count penalty weight α in the rank selection.
    pub alpha: f32,
    /// Epochs between C steps.
    pub c_every: usize,
    /// Fraction of epochs reserved for post-factorization fine-tuning.
    pub finetune_fraction: f32,
    /// Extra compute multiplier charged to the simulated clock (the real
    /// LC solver runs many more optimization steps than one training).
    pub time_multiplier: f64,
}

impl Default for LcConfig {
    fn default() -> Self {
        LcConfig {
            mu_start: 1e-3,
            mu_growth: 1.6,
            alpha: 1e-4,
            c_every: 2,
            finetune_fraction: 0.25,
            time_multiplier: 8.0,
        }
    }
}

/// LC outcome.
#[derive(Debug, Clone)]
pub struct LcResult {
    /// Learned per-layer ranks (name → rank), for Figure 5.
    pub learned_ranks: HashMap<String, usize>,
    /// Best metric after the final fine-tune.
    pub best_metric: f32,
    /// Final parameter count (factorized).
    pub params_final: usize,
    /// Simulated hours, including the alternating-optimization overhead.
    pub sim_hours: f64,
}

/// Chooses the rank minimizing `tail-energy + α·r·(m+n)` for a spectrum.
fn lc_rank(svals: &[f32], rows: usize, cols: usize, alpha: f32) -> usize {
    let total_energy: f64 = svals.iter().map(|&s| (s as f64).powi(2)).sum();
    let mut tail = total_energy;
    let mut best_r = 1usize;
    let mut best_cost = f64::INFINITY;
    for (i, &s) in svals.iter().enumerate() {
        tail -= (s as f64).powi(2);
        let r = i + 1;
        let cost = tail + alpha as f64 * (r * (rows + cols)) as f64;
        if cost < best_cost {
            best_cost = cost;
            best_r = r;
        }
    }
    best_r
}

/// Runs LC compression end to end.
///
/// # Errors
///
/// Propagates adapter/network/SVD errors.
#[allow(clippy::too_many_arguments)]
pub fn run_lc(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    cfg: &LoopCfg,
    lc: &LcConfig,
    rng: &mut rand::rngs::StdRng,
    clock_targets: &[TargetInfo],
    device: cuttlefish_perf::DeviceProfile,
    sim_batch: usize,
    sim_iters_per_epoch: usize,
) -> CfResult<LcResult> {
    let depth = net.targets().len();
    let eligible: Vec<TargetInfo> = net
        .targets()
        .iter()
        .filter(|t| t.index > 1 && t.index < depth)
        .cloned()
        .collect();

    let mut clock = TrainingClock::new(device);
    let mut theta: HashMap<String, Matrix> = HashMap::new();
    let mut learned_ranks: HashMap<String, usize> = HashMap::new();
    let mut mu = lc.mu_start;

    let finetune_epochs = ((cfg.epochs as f32) * lc.finetune_fraction)
        .round()
        .max(1.0) as usize;
    let lc_epochs = cfg.epochs.saturating_sub(finetune_epochs).max(1);

    // --- Alternating phase -------------------------------------------
    for chunk_start in (0..lc_epochs).step_by(lc.c_every.max(1)) {
        let chunk = lc.c_every.max(1).min(lc_epochs - chunk_start);
        // L step: train `chunk` epochs with the attachment penalty.
        let chunk_cfg = LoopCfg {
            epochs: chunk,
            ..cfg.clone()
        };
        let mu_now = mu;
        let theta_ref = theta.clone();
        train_with_hook(net, adapter, &chunk_cfg, rng, &mut |n, phase| {
            if phase == Phase::BeforeStep && !theta_ref.is_empty() {
                // grad += μ (W − Θ) per attached layer.
                n.visit_weights(&mut |name, w| {
                    if let Some(th) = theta_ref.get(name) {
                        if w.dense().is_some() {
                            let dense = w.dense().expect("checked").clone();
                            let pull = dense.sub(th).expect("shapes agree");
                            let mut first = true;
                            w.visit_params(&mut |p| {
                                if first {
                                    p.accumulate_grad(mu_now, &pull);
                                    first = false;
                                }
                            });
                        }
                    }
                });
            }
            Ok(())
        })?;
        clock.add_training_iterations(
            clock_targets,
            sim_batch,
            (sim_iters_per_epoch as f64 * chunk as f64 * lc.time_multiplier) as usize,
            |_| None,
        );

        // C step: rank-learn and project each eligible layer.
        for t in &eligible {
            let w = net.weight_matrix(&t.name)?;
            let svd = Svd::compute(&w)?;
            let r = lc_rank(svd.singular_values(), w.rows(), w.cols(), lc.alpha);
            learned_ranks.insert(t.name.clone(), r);
            theta.insert(t.name.clone(), svd.reconstruct_rank(r));
        }
        clock.add_rank_estimation(clock_targets);
        mu *= lc.mu_growth;
    }

    // --- Final factorization + fine-tune ------------------------------
    let opts = SwitchOptions {
        k: 1,
        plan: RankPlan::Explicit {
            ranks: learned_ranks.clone(),
        },
        extra_bn: false,
        frobenius_decay: None,
    };
    switch_to_low_rank(net, &opts)?;
    let ft_cfg = LoopCfg {
        epochs: finetune_epochs,
        ..cfg.clone()
    };
    let stats = train_with_hook(net, adapter, &ft_cfg, rng, &mut |_, _| Ok(()))?;
    clock.add_training_iterations(
        clock_targets,
        sim_batch,
        sim_iters_per_epoch * finetune_epochs,
        |_| None,
    );

    Ok(LcResult {
        learned_ranks,
        best_metric: stats.best_metric,
        params_final: net.param_count(),
        sim_hours: clock.hours(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::adapter::VisionAdapter;
    use cuttlefish::OptimizerKind;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use cuttlefish_nn::schedule::LrSchedule;
    use cuttlefish_perf::arch::resnet18_cifar;
    use cuttlefish_perf::DeviceProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lc_rank_trades_energy_against_cost() {
        // Steep spectrum: small rank optimal.
        let steep = [10.0, 1.0, 0.1, 0.01];
        assert!(lc_rank(&steep, 100, 100, 1e-2) <= 2);
        // Flat spectrum with tiny penalty: keeps almost everything.
        let flat = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(lc_rank(&flat, 100, 100, 1e-9), 4);
        // Massive penalty forces rank 1.
        assert_eq!(lc_rank(&flat, 100, 100, 1e3), 1);
    }

    #[test]
    fn lc_learns_ranks_and_compresses() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let full = net.param_count();
        let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
        let cfg = LoopCfg {
            epochs: 6,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.05 },
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            label_smoothing: 0.0,
        };
        let lc = LcConfig {
            alpha: 3e-3,
            c_every: 1,
            ..LcConfig::default()
        };
        let res = run_lc(
            &mut net,
            &mut ad,
            &cfg,
            &lc,
            &mut rng,
            &resnet18_cifar(10),
            DeviceProfile::v100(),
            1024,
            49,
        )
        .unwrap();
        assert!(!res.learned_ranks.is_empty());
        assert!(res.params_final < full, "{} vs {full}", res.params_final);
        assert!(res.best_metric > 0.3, "{}", res.best_metric);
        assert!(res.sim_hours > 0.0);
    }
}
