//! Shared mini training loop for baselines that need custom hooks
//! (masking after steps, penalty gradients, binarization around the
//! forward pass).

use cuttlefish::adapter::TaskAdapter;
use cuttlefish::{CfResult, OptimizerKind};
use cuttlefish_nn::optim::{AdamW, Sgd};
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_nn::{Mode, Network};
use rand::rngs::StdRng;

/// Where a hook fires in the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Just before the forward pass of a batch.
    BeforeForward,
    /// After backward, before the optimizer step (penalty gradients).
    BeforeStep,
    /// After the optimizer step (masking, restoring real weights).
    AfterStep,
    /// After each epoch completes; payload is the epoch index.
    AfterEpoch(usize),
}

/// Basic loop configuration.
#[derive(Debug, Clone)]
pub struct LoopCfg {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// LR schedule.
    pub schedule: LrSchedule,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Label smoothing.
    pub label_smoothing: f32,
}

/// Loop outcome.
#[derive(Debug, Clone)]
pub struct LoopStats {
    /// Best validation metric seen.
    pub best_metric: f32,
    /// Metric at the final epoch.
    pub final_metric: f32,
    /// Mean training loss per epoch.
    pub loss_curve: Vec<f32>,
}

enum Opt {
    Sgd(Sgd),
    AdamW(AdamW),
}

/// Trains `net` with `hook` invoked at every [`Phase`].
///
/// # Errors
///
/// Propagates adapter and network errors.
pub fn train_with_hook(
    net: &mut Network,
    adapter: &mut dyn TaskAdapter,
    cfg: &LoopCfg,
    rng: &mut StdRng,
    hook: &mut dyn FnMut(&mut Network, Phase) -> CfResult<()>,
) -> CfResult<LoopStats> {
    let mut opt = match cfg.optimizer {
        OptimizerKind::Sgd {
            momentum,
            weight_decay,
        } => Opt::Sgd(Sgd::new(momentum, weight_decay)),
        OptimizerKind::AdamW { weight_decay } => Opt::AdamW(AdamW::new(weight_decay)),
    };
    let mut best = if adapter.higher_is_better() {
        f32::NEG_INFINITY
    } else {
        f32::INFINITY
    };
    let mut final_metric = f32::NAN;
    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let lr = cfg.schedule.lr_at(epoch);
        let batches = adapter.train_batches(epoch, cfg.batch_size, rng)?;
        let nb = batches.len().max(1);
        let mut epoch_loss = 0.0f64;
        for batch in batches {
            hook(net, Phase::BeforeForward)?;
            let logits = net.forward(batch.input, Mode::Train)?;
            let (loss, grad) =
                adapter.loss_and_grad(&logits, &batch.target, cfg.label_smoothing)?;
            epoch_loss += loss as f64;
            net.backward(grad)?;
            net.apply_frobenius_decay()?;
            hook(net, Phase::BeforeStep)?;
            match &mut opt {
                Opt::Sgd(o) => net.step(o, lr),
                Opt::AdamW(o) => {
                    o.next_step();
                    net.step(o, lr);
                }
            }
            net.zero_grads();
            hook(net, Phase::AfterStep)?;
        }
        loss_curve.push((epoch_loss / nb as f64) as f32);
        hook(net, Phase::AfterEpoch(epoch))?;
        let m = adapter.evaluate(net)?;
        final_metric = m;
        if adapter.higher_is_better() {
            best = best.max(m);
        } else {
            best = best.min(m);
        }
    }
    Ok(LoopStats {
        best_metric: best,
        final_metric,
        loss_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::adapter::VisionAdapter;
    use cuttlefish_data::vision::{VisionSpec, VisionTask};
    use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
    use rand::SeedableRng;

    #[test]
    fn hook_fires_in_all_phases_and_training_learns() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng);
        let mut ad = VisionAdapter::new(VisionTask::generate(&VisionSpec::tiny(), 0));
        let cfg = LoopCfg {
            epochs: 4,
            batch_size: 32,
            schedule: LrSchedule::Constant { lr: 0.05 },
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            label_smoothing: 0.0,
        };
        let mut phases = std::collections::HashSet::new();
        let stats = train_with_hook(&mut net, &mut ad, &cfg, &mut rng, &mut |_, phase| {
            phases.insert(std::mem::discriminant(&phase));
            Ok(())
        })
        .unwrap();
        assert_eq!(phases.len(), 4);
        assert!(stats.best_metric > 0.4, "{}", stats.best_metric);
        assert_eq!(stats.loss_curve.len(), 4);
    }
}
