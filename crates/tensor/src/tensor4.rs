use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense 4-D tensor in `(N, C, H, W)` layout.
///
/// Used for activation batches and convolution kernels. Convolution kernels
/// are stored as `(out_channels, in_channels, k, k)` and can be unrolled to
/// the `(in_channels·k², out_channels)` matrix whose rank Cuttlefish tracks
/// (see [`Tensor4::unroll_conv_kernel`]).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor4({}x{}x{}x{}, |x|={:.4})",
            self.n,
            self.c,
            self.h,
            self.w,
            self.data.iter().map(|v| v.abs()).fold(0.0f32, f32::max)
        )
    }
}

impl Tensor4 {
    /// Creates a zero tensor with the given shape.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the buffer length does
    /// not equal `n*c*h*w`.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != n * c * h * w {
            return Err(TensorError::InvalidDimension {
                op: "Tensor4::from_vec",
                detail: format!(
                    "buffer of length {} cannot be viewed as {n}x{c}x{h}x{w}",
                    data.len()
                ),
            });
        }
        Ok(Tensor4 { n, c, h, w, data })
    }

    /// Builds a tensor by evaluating `f(n, c, h, w)` at every position.
    pub fn from_fn(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(n * c * h * w);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        data.push(f(ni, ci, hi, wi));
                    }
                }
            }
        }
        Tensor4 { n, c, h, w, data }
    }

    /// `(N, C, H, W)` shape tuple.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel dimension.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on out-of-range indices.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        self.data[((n * self.c + c) * self.h + h) * self.w + w]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on out-of-range indices.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        self.data[((n * self.c + c) * self.h + h) * self.w + w] = v;
    }

    /// Flattens each sample to a row, yielding an `(N, C·H·W)` matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
            .expect("shape arithmetic is exact")
    }

    /// Rebuilds an `(N, C·H·W)` matrix into a tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the matrix does not have
    /// `n` rows of `c*h*w` elements.
    pub fn from_matrix(m: &Matrix, c: usize, h: usize, w: usize) -> Result<Self> {
        if m.cols() != c * h * w {
            return Err(TensorError::ShapeMismatch {
                op: "Tensor4::from_matrix",
                lhs: vec![m.rows(), m.cols()],
                rhs: vec![c, h, w],
            });
        }
        Tensor4::from_vec(m.rows(), c, h, w, m.as_slice().to_vec())
    }

    /// Unrolls a convolution kernel stored as `(out=n, in=c, k, k)` into the
    /// paper's 2-D view of shape `(in·k², out)`: each **column** is one
    /// vectorized filter (§2.1, "Convolution layer").
    pub fn unroll_conv_kernel(&self) -> Matrix {
        let out_ch = self.n;
        let rows = self.c * self.h * self.w;
        let mut m = Matrix::zeros(rows, out_ch);
        for o in 0..out_ch {
            for ci in 0..self.c {
                for hi in 0..self.h {
                    for wi in 0..self.w {
                        let r = (ci * self.h + hi) * self.w + wi;
                        m.set(r, o, self.get(o, ci, hi, wi));
                    }
                }
            }
        }
        m
    }

    /// Rolls the paper's `(in·k², out)` 2-D view back into a 4-D kernel of
    /// shape `(out, in, k, k)` — the inverse of [`Tensor4::unroll_conv_kernel`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `m.rows() != in_ch * k * k`.
    pub fn roll_conv_kernel(m: &Matrix, in_ch: usize, k: usize) -> Result<Self> {
        if m.rows() != in_ch * k * k {
            return Err(TensorError::ShapeMismatch {
                op: "roll_conv_kernel",
                lhs: vec![m.rows(), m.cols()],
                rhs: vec![in_ch, k, k],
            });
        }
        let out_ch = m.cols();
        let mut t = Tensor4::zeros(out_ch, in_ch, k, k);
        for o in 0..out_ch {
            for ci in 0..in_ch {
                for hi in 0..k {
                    for wi in 0..k {
                        let r = (ci * k + hi) * k + wi;
                        t.set(o, ci, hi, wi, m.get(r, o));
                    }
                }
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accessors() {
        let t = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.shape(), (2, 3, 4, 5));
        assert_eq!(t.len(), 120);
        assert!(!t.is_empty());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor4::zeros(2, 2, 2, 2);
        t.set(1, 0, 1, 0, 7.5);
        assert_eq!(t.get(1, 0, 1, 0), 7.5);
        assert_eq!(t.get(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 3]).is_err());
        assert!(Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn matrix_roundtrip() {
        let t = Tensor4::from_fn(2, 3, 2, 2, |n, c, h, w| {
            (n * 100 + c * 10 + h * 2 + w) as f32
        });
        let m = t.to_matrix();
        assert_eq!(m.shape(), (2, 12));
        let back = Tensor4::from_matrix(&m, 3, 2, 2).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn unroll_roll_kernel_roundtrip() {
        let kern = Tensor4::from_fn(4, 3, 3, 3, |o, c, h, w| (o * 27 + c * 9 + h * 3 + w) as f32);
        let m = kern.unroll_conv_kernel();
        assert_eq!(m.shape(), (27, 4));
        let back = Tensor4::roll_conv_kernel(&m, 3, 3).unwrap();
        assert_eq!(back, kern);
    }

    #[test]
    fn unroll_columns_are_filters() {
        // Filter 1 set to all ones, filter 0 to zeros: column 1 must be ones.
        let mut kern = Tensor4::zeros(2, 1, 2, 2);
        for h in 0..2 {
            for w in 0..2 {
                kern.set(1, 0, h, w, 1.0);
            }
        }
        let m = kern.unroll_conv_kernel();
        for r in 0..4 {
            assert_eq!(m.get(r, 0), 0.0);
            assert_eq!(m.get(r, 1), 1.0);
        }
    }

    #[test]
    fn roll_rejects_bad_rows() {
        let m = Matrix::zeros(10, 4);
        assert!(Tensor4::roll_conv_kernel(&m, 3, 3).is_err());
    }
}
