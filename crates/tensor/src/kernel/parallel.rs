//! Deterministic multi-threaded GEMM (cargo feature `parallel`).
//!
//! The output rows are split into contiguous, `MR`-aligned stripes and each
//! stripe runs the *entire* blocked loop nest on its own scoped thread
//! (`B` packing is duplicated per thread — a deliberate trade for
//! determinism and zero cross-thread coordination). Stripes write disjoint
//! row ranges of `C` and every element keeps the exact k-ascending
//! accumulation order of the serial path, so the result is bit-identical
//! at any thread count — there is no reduction step whose order could
//! vary. Dependency-free: plain `std::thread::scope`, threads joined
//! before return.

use super::blocked::gemm_blocked;
use super::{stripe_rows, GemmView, MicroKernel};

/// Splits `c` into the row stripes computed by [`stripe_rows`] and runs
/// [`gemm_blocked`] on each stripe in its own scoped thread. `nthreads >= 2`
/// and `m >= 2·MR` are guaranteed by the dispatch threshold. The stripe
/// plan is the single source of truth shared with the `cuttlefish-check`
/// model checker, which asserts its disjointness and coverage under every
/// explored interleaving.
pub(crate) fn gemm_striped(g: &GemmView<'_>, c: &mut [f32], kernel: MicroKernel, nthreads: usize) {
    debug_assert_eq!(c.len(), g.m * g.n);
    std::thread::scope(|scope| {
        let mut rest = c;
        for (i0, rows) in stripe_rows(g.m, nthreads) {
            let (chunk, tail) = rest.split_at_mut(rows * g.n);
            rest = tail;
            let sub = GemmView {
                m: rows,
                n: g.n,
                k: g.k,
                a: &g.a[i0 * g.a_rs..],
                a_rs: g.a_rs,
                a_cs: g.a_cs,
                b: g.b,
                b_rs: g.b_rs,
                b_cs: g.b_cs,
            };
            scope.spawn(move || gemm_blocked(&sub, chunk, kernel));
        }
    });
}
