//! Panel packing for the blocked GEMM core.
//!
//! Operands are repacked into the layout the micro-kernel streams:
//!
//! * `A` blocks become `ceil(mc/MR)` row panels; panel `p` holds rows
//!   `p·MR..p·MR+MR` k-major, i.e. `panel[kk·MR + r] = A[i0 + p·MR + r,
//!   k0 + kk]`.
//! * `B` blocks become `ceil(nc/NR)` column panels; panel `p` holds columns
//!   `p·NR..p·NR+NR` k-major, i.e. `panel[kk·NR + c] = B[k0 + kk,
//!   j0 + p·NR + c]`.
//!
//! Partial edge panels are zero-padded to full `MR`/`NR` width so the
//! micro-kernel never branches; padded lanes are discarded on tile
//! store-back, so they cannot affect results. Reads go through the
//! [`GemmView`] strides, which is how the transposed variants reuse this
//! code without materializing a transpose.

use super::{GemmView, MR, NR};

/// Packs the `mc×kc` block of `A` starting at `(ic, pc)` into `out`
/// (length at least `ceil(mc/MR)·MR·kc`).
pub(crate) fn pack_a_block(
    g: &GemmView<'_>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    out: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let i0 = ic + p * MR;
        let rows = MR.min(ic + mc - i0);
        let panel = &mut out[p * MR * kc..(p + 1) * MR * kc];
        for (kk, lanes) in panel.chunks_exact_mut(MR).enumerate() {
            let koff = (pc + kk) * g.a_cs;
            for (r, slot) in lanes.iter_mut().enumerate() {
                *slot = if r < rows {
                    g.a[(i0 + r) * g.a_rs + koff]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs the `kc×nc` block of `B` starting at `(pc, jc)` into `out`
/// (length at least `ceil(nc/NR)·NR·kc`).
pub(crate) fn pack_b_block(
    g: &GemmView<'_>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    out: &mut [f32],
) {
    let panels = nc.div_ceil(NR);
    for p in 0..panels {
        let j0 = jc + p * NR;
        let cols = NR.min(jc + nc - j0);
        let panel = &mut out[p * NR * kc..(p + 1) * NR * kc];
        for (kk, lanes) in panel.chunks_exact_mut(NR).enumerate() {
            let base = (pc + kk) * g.b_rs;
            if g.b_cs == 1 {
                // Contiguous source row: bulk copy the valid run.
                lanes[..cols].copy_from_slice(&g.b[base + j0..base + j0 + cols]);
                for slot in &mut lanes[cols..] {
                    *slot = 0.0;
                }
            } else {
                for (c, slot) in lanes.iter_mut().enumerate() {
                    *slot = if c < cols {
                        g.b[base + (j0 + c) * g.b_cs]
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}
