//! AVX2 + FMA micro-kernel (x86_64).
//!
//! The 6×16 tile lives in 12 `ymm` accumulators (6 rows × 2 eight-lane
//! vectors), leaving registers for the broadcast `A` scalar and the two `B`
//! vectors. Each term is one fused multiply-add: a single rounding where
//! the scalar path rounds twice, which is the entire (documented, bounded,
//! property-tested) numeric difference between the ISA paths.
//!
//! This is the only unsafe code in the crate (with its NEON sibling): the
//! crate-level `deny(unsafe_code)` is relaxed here because `std::arch`
//! intrinsics require it. Safety rests on two invariants: the dispatch
//! layer only hands out this kernel after runtime detection of AVX2+FMA,
//! and every pointer dereference is covered by the panel/tile length
//! checks in the safe wrapper. `unsafe_op_in_unsafe_fn` is denied so each
//! pointer operation sits in its own `unsafe` block with its own
//! `// SAFETY:` contract (enforced workspace-wide by `cuttlefish-lint`).
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use super::{MR, NR, TILE};

/// Safe wrapper: validates panel lengths, then enters the `target_feature`
/// implementation. Callers guarantee AVX2+FMA support by construction (the
/// dispatch layer only selects this kernel when detection succeeded).
pub(crate) fn kernel_avx2(kc: usize, pa: &[f32], pb: &[f32], tile: &mut [f32; TILE]) {
    assert!(pa.len() >= kc * MR, "packed A panel too short");
    assert!(pb.len() >= kc * NR, "packed B panel too short");
    // SAFETY: AVX2+FMA presence was verified at dispatch time via
    // `is_x86_feature_detected!`, satisfying the callee's target-feature
    // contract; the panel-length asserts above satisfy its bounds contract.
    unsafe { kernel_avx2_impl(kc, pa, pb, tile) }
}

/// # Safety
///
/// The caller must guarantee that the CPU supports AVX2 and FMA, that
/// `pa.len() >= kc * MR`, and that `pb.len() >= kc * NR`. The tile is a
/// fixed-size `MR*NR` array, so tile accesses are in range by construction.
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2_impl(kc: usize, pa: &[f32], pb: &[f32], tile: &mut [f32; TILE]) {
    use std::arch::x86_64::*;

    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for (r, lanes) in acc.iter_mut().enumerate() {
        // SAFETY: r < MR, so r*NR + 8 + 8 <= MR*NR = TILE and both 8-lane
        // loads stay inside the fixed-size tile array.
        unsafe {
            lanes[0] = _mm256_loadu_ps(tile.as_ptr().add(r * NR));
            lanes[1] = _mm256_loadu_ps(tile.as_ptr().add(r * NR + 8));
        }
    }
    for k in 0..kc {
        // SAFETY: k < kc and the caller guarantees pb.len() >= kc*NR, so
        // k*NR + 8 + 8 <= kc*NR and both B loads are in bounds.
        let (b0, b1) = unsafe {
            let bp = pb.as_ptr().add(k * NR);
            (_mm256_loadu_ps(bp), _mm256_loadu_ps(bp.add(8)))
        };
        let ap = pa.as_ptr();
        for (r, lanes) in acc.iter_mut().enumerate() {
            // SAFETY: k < kc, r < MR, and the caller guarantees
            // pa.len() >= kc*MR, so k*MR + r indexes inside the A panel.
            let a = unsafe { *ap.add(k * MR + r) };
            let av = _mm256_set1_ps(a);
            lanes[0] = _mm256_fmadd_ps(av, b0, lanes[0]);
            lanes[1] = _mm256_fmadd_ps(av, b1, lanes[1]);
        }
    }
    for (r, lanes) in acc.iter().enumerate() {
        // SAFETY: r < MR, so r*NR + 8 + 8 <= TILE and both 8-lane stores
        // stay inside the fixed-size tile array.
        unsafe {
            _mm256_storeu_ps(tile.as_mut_ptr().add(r * NR), lanes[0]);
            _mm256_storeu_ps(tile.as_mut_ptr().add(r * NR + 8), lanes[1]);
        }
    }
}
