//! AVX2 + FMA micro-kernel (x86_64).
//!
//! The 6×16 tile lives in 12 `ymm` accumulators (6 rows × 2 eight-lane
//! vectors), leaving registers for the broadcast `A` scalar and the two `B`
//! vectors. Each term is one fused multiply-add: a single rounding where
//! the scalar path rounds twice, which is the entire (documented, bounded,
//! property-tested) numeric difference between the ISA paths.
//!
//! This is the only unsafe code in the crate (with its NEON sibling): the
//! crate-level `deny(unsafe_code)` is relaxed here because `std::arch`
//! intrinsics require it. Safety rests on two invariants: the dispatch
//! layer only hands out this kernel after runtime detection of AVX2+FMA,
//! and every pointer dereference is covered by the panel/tile length
//! checks in the safe wrapper.
#![allow(unsafe_code)]

use super::{MR, NR, TILE};

/// Safe wrapper: validates panel lengths, then enters the `target_feature`
/// implementation. Callers guarantee AVX2+FMA support by construction (the
/// dispatch layer only selects this kernel when detection succeeded).
pub(crate) fn kernel_avx2(kc: usize, pa: &[f32], pb: &[f32], tile: &mut [f32; TILE]) {
    assert!(pa.len() >= kc * MR, "packed A panel too short");
    assert!(pb.len() >= kc * NR, "packed B panel too short");
    // SAFETY: AVX2+FMA presence was verified at dispatch time via
    // `is_x86_feature_detected!`; bounds are asserted above; the tile is a
    // fixed-size array, so every load/store below is in range.
    unsafe { kernel_avx2_impl(kc, pa, pb, tile) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2_impl(kc: usize, pa: &[f32], pb: &[f32], tile: &mut [f32; TILE]) {
    use std::arch::x86_64::*;

    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for (r, lanes) in acc.iter_mut().enumerate() {
        lanes[0] = _mm256_loadu_ps(tile.as_ptr().add(r * NR));
        lanes[1] = _mm256_loadu_ps(tile.as_ptr().add(r * NR + 8));
    }
    for k in 0..kc {
        let bp = pb.as_ptr().add(k * NR);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        let ap = pa.as_ptr().add(k * MR);
        for (r, lanes) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ap.add(r));
            lanes[0] = _mm256_fmadd_ps(av, b0, lanes[0]);
            lanes[1] = _mm256_fmadd_ps(av, b1, lanes[1]);
        }
    }
    for (r, lanes) in acc.iter().enumerate() {
        _mm256_storeu_ps(tile.as_mut_ptr().add(r * NR), lanes[0]);
        _mm256_storeu_ps(tile.as_mut_ptr().add(r * NR + 8), lanes[1]);
    }
}
