//! NEON micro-kernel (aarch64).
//!
//! The 6×16 tile lives in 24 `q` accumulators (6 rows × 4 four-lane
//! vectors) out of the 32 available, leaving room for the broadcast `A`
//! scalar and the four `B` vectors. `vfmaq_f32` fuses each term into one
//! rounding, so this path shares the FMA drift bound documented on the
//! dispatch module, not bit-identity with the scalar path.
//!
//! See `x86.rs` for why `unsafe` is allowed here and nowhere else, and for
//! the `unsafe_op_in_unsafe_fn` + per-block `// SAFETY:` convention.
#![allow(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use super::{MR, NR, TILE};

/// Safe wrapper: validates panel lengths, then enters the `target_feature`
/// implementation. NEON is baseline on aarch64 and is additionally verified
/// at dispatch time.
pub(crate) fn kernel_neon(kc: usize, pa: &[f32], pb: &[f32], tile: &mut [f32; TILE]) {
    assert!(pa.len() >= kc * MR, "packed A panel too short");
    assert!(pb.len() >= kc * NR, "packed B panel too short");
    // SAFETY: NEON presence was verified at dispatch time via
    // `is_aarch64_feature_detected!`, satisfying the callee's
    // target-feature contract; the panel-length asserts above satisfy its
    // bounds contract.
    unsafe { kernel_neon_impl(kc, pa, pb, tile) }
}

/// # Safety
///
/// The caller must guarantee that the CPU supports NEON, that
/// `pa.len() >= kc * MR`, and that `pb.len() >= kc * NR`. The tile is a
/// fixed-size `MR*NR` array, so tile accesses are in range by construction.
#[target_feature(enable = "neon")]
unsafe fn kernel_neon_impl(kc: usize, pa: &[f32], pb: &[f32], tile: &mut [f32; TILE]) {
    use std::arch::aarch64::*;

    let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
    for (r, lanes) in acc.iter_mut().enumerate() {
        for (q, lane) in lanes.iter_mut().enumerate() {
            // SAFETY: r < MR and q < 4, so r*NR + q*4 + 4 <= MR*NR = TILE
            // and the 4-lane load stays inside the fixed-size tile array.
            *lane = unsafe { vld1q_f32(tile.as_ptr().add(r * NR + q * 4)) };
        }
    }
    for k in 0..kc {
        // SAFETY: k < kc and the caller guarantees pb.len() >= kc*NR, so
        // k*NR + 12 + 4 <= kc*NR and all four B loads are in bounds.
        let (b0, b1, b2, b3) = unsafe {
            let bp = pb.as_ptr().add(k * NR);
            (
                vld1q_f32(bp),
                vld1q_f32(bp.add(4)),
                vld1q_f32(bp.add(8)),
                vld1q_f32(bp.add(12)),
            )
        };
        let ap = pa.as_ptr();
        for (r, lanes) in acc.iter_mut().enumerate() {
            // SAFETY: k < kc, r < MR, and the caller guarantees
            // pa.len() >= kc*MR, so k*MR + r indexes inside the A panel.
            let a = unsafe { *ap.add(k * MR + r) };
            let av = vdupq_n_f32(a);
            lanes[0] = vfmaq_f32(lanes[0], av, b0);
            lanes[1] = vfmaq_f32(lanes[1], av, b1);
            lanes[2] = vfmaq_f32(lanes[2], av, b2);
            lanes[3] = vfmaq_f32(lanes[3], av, b3);
        }
    }
    for (r, lanes) in acc.iter().enumerate() {
        for (q, lane) in lanes.iter().enumerate() {
            // SAFETY: r < MR and q < 4, so r*NR + q*4 + 4 <= TILE and the
            // 4-lane store stays inside the fixed-size tile array.
            unsafe { vst1q_f32(tile.as_mut_ptr().add(r * NR + q * 4), *lane) };
        }
    }
}
