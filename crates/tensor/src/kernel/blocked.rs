//! The blocked GEMM driver and the portable scalar micro-kernel.
//!
//! BLIS-style loop nest: `jc` over `NC` column blocks, `pc` over `KC`
//! contraction blocks (ascending — this is what keeps per-element
//! accumulation order identical to the reference loops), `ic` over `MC` row
//! blocks, then `NR`/`MR` micro-panels. `A` and `B` blocks are packed once
//! per block into thread-local buffers and streamed by the micro-kernel.
//!
//! The output tile is copied into a stack buffer before the micro-kernel
//! runs and copied back after. Loading the existing `C` values into the
//! accumulators (rather than zeroing and adding at the end) is the load-C
//! first strategy that makes the scalar path bit-identical to the textbook
//! loop across `KC` block boundaries: an `f32` store/load round-trip is
//! exact, so each element still sees one rounded `mul`+`add` per k, in
//! ascending k order, on a single running value.

use super::pack::{pack_a_block, pack_b_block};
use super::{GemmView, MicroKernel, KC, MC, MR, NC, NR, TILE};
use std::cell::RefCell;

thread_local! {
    /// Per-thread packing buffers (`A` block, `B` block), grown once and
    /// reused across every GEMM this thread runs.
    static PACK_BUFS: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs the full blocked loop nest for one (stripe of a) GEMM, accumulating
/// into the row-major `m×n` slice `c`.
pub(crate) fn gemm_blocked(g: &GemmView<'_>, c: &mut [f32], kernel: MicroKernel) {
    debug_assert_eq!(c.len(), g.m * g.n);
    PACK_BUFS.with(|bufs| {
        let (pa, pb) = &mut *bufs.borrow_mut();
        pa.resize(MC * KC, 0.0);
        pb.resize(KC * NC, 0.0);

        let mut jc = 0;
        while jc < g.n {
            let nc = NC.min(g.n - jc);
            let n_panels = nc.div_ceil(NR);
            let mut pc = 0;
            while pc < g.k {
                let kc = KC.min(g.k - pc);
                pack_b_block(g, pc, jc, kc, nc, pb);
                let mut ic = 0;
                while ic < g.m {
                    let mc = MC.min(g.m - ic);
                    let m_panels = mc.div_ceil(MR);
                    pack_a_block(g, ic, pc, mc, kc, pa);
                    for jp in 0..n_panels {
                        let jr = jc + jp * NR;
                        let nr = NR.min(jc + nc - jr);
                        let pbp = &pb[jp * NR * kc..(jp + 1) * NR * kc];
                        for ip in 0..m_panels {
                            let ir = ic + ip * MR;
                            let mr = MR.min(ic + mc - ir);
                            let pap = &pa[ip * MR * kc..(ip + 1) * MR * kc];
                            let mut tile = [0.0f32; TILE];
                            let c_base = &mut c[ir * g.n..];
                            for (trow, crow) in
                                tile.chunks_exact_mut(NR).zip(c_base.chunks(g.n)).take(mr)
                            {
                                trow[..nr].copy_from_slice(&crow[jr..jr + nr]);
                            }
                            kernel(kc, pap, pbp, &mut tile);
                            for (trow, crow) in
                                tile.chunks_exact(NR).zip(c_base.chunks_mut(g.n)).take(mr)
                            {
                                crow[jr..jr + nr].copy_from_slice(&trow[..nr]);
                            }
                        }
                    }
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
}

/// Portable scalar micro-kernel: one rounded `mul` + one rounded `add` per
/// term (the compiler does not contract these into FMA), k ascending —
/// bit-identical to the reference loops by construction.
pub(crate) fn kernel_scalar(kc: usize, pa: &[f32], pb: &[f32], tile: &mut [f32; TILE]) {
    for (a_lanes, b_lanes) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)).take(kc) {
        for (trow, &av) in tile.chunks_exact_mut(NR).zip(a_lanes) {
            for (t, &bv) in trow.iter_mut().zip(b_lanes) {
                *t += av * bv;
            }
        }
    }
}
