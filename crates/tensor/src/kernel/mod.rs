//! Cache-blocked, SIMD-dispatched GEMM kernels for the factorized hot path.
//!
//! Every matmul in the reproduction (dense forward, `U·Vᵀ` factorized
//! forward, the `im2col` convolution product, the Gram matrices inside the
//! SVD estimators) funnels through this module. It is layered:
//!
//! 1. **Blocked core** ([`blocked`]) — a BLIS/faer-style loop nest that
//!    packs `MC×KC` panels of `A` and `KC×NC` panels of `B` into
//!    contiguous buffers and walks them with an `MR×NR` register
//!    micro-kernel.
//! 2. **ISA dispatch** — a portable scalar micro-kernel that is always
//!    available, plus `std::arch` AVX2+FMA (x86_64) and NEON (aarch64)
//!    micro-kernels selected once at startup by runtime feature detection
//!    ([`detected_isa`]); benches and tests can pin a path with
//!    [`force_isa`] or the explicit `*_with` entry points.
//! 3. **Parallel stripes** (cargo feature `parallel`) — the output rows are
//!    split into contiguous, `MR`-aligned stripes, one scoped thread per
//!    stripe. Stripes are disjoint and each element's k-accumulation order
//!    is unchanged, so results are **bit-identical at any thread count**.
//!
//! # Determinism contract
//!
//! * The scalar blocked path is bit-identical to the reference loops
//!   ([`reference_gemm_nn`] and friends) at **every** size: the
//!   micro-kernel loads the existing output tile into its accumulators,
//!   adds one rounded `mul` + `add` per k in ascending order, and stores —
//!   exactly the operation sequence of the textbook i-k-j loop (an `f32`
//!   store/load round-trip is exact).
//! * The AVX2/NEON paths fuse each `mul`+`add` into one FMA (a single
//!   rounding instead of two). The resulting per-element drift is bounded
//!   by `4 · ε · Σ_k |a_ik·b_kj|` and is asserted by the property tests in
//!   `tests/kernel_props.rs`.
//! * Thread count never affects results; only the ISA choice does.

mod blocked;
#[cfg(target_arch = "aarch64")]
mod neon;
mod pack;
#[cfg(feature = "parallel")]
mod parallel;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Micro-tile rows held in registers.
pub(crate) const MR: usize = 6;
/// Micro-tile columns held in registers (two AVX2 lanes / four NEON lanes).
pub(crate) const NR: usize = 16;
/// Elements in one `MR×NR` output tile.
pub(crate) const TILE: usize = MR * NR;
/// Rows of `A` packed per block (multiple of `MR`; sized for L2 residency).
pub(crate) const MC: usize = 72;
/// Shared (contraction) dimension packed per block.
pub(crate) const KC: usize = 256;
/// Columns of `B` packed per block (multiple of `NR`).
pub(crate) const NC: usize = 512;

/// `k·n` (B-operand element count) floor below which [`crate::Matrix`] uses
/// the reference loops instead of the blocked path: packing such a small B
/// costs as much as multiplying it. Deliberately independent of `m` — the
/// kernel tier a weight runs on must not depend on the batch dimension, so a
/// row's result is bit-identical whether it was computed in a batch of 1 or
/// 1000 (serving relies on this).
pub const SMALL_GEMM_FLOOR: usize = 32 * 32;

/// FLOP floor (`2·m·n·k`) below which the `parallel` feature stays serial:
/// spawning scoped threads costs more than the multiply saves.
#[cfg(feature = "parallel")]
pub(crate) const PAR_FLOP_FLOOR: usize = 1 << 23;

/// One GEMM operand pair viewed through row/column strides, so the same
/// packed core serves `A·B`, `Aᵀ·B`, and `A·Bᵀ` without materializing a
/// transpose. `a[i·a_rs + p·a_cs]` is `A[i, p]` (output row `i`,
/// contraction index `p`); `b[p·b_rs + j·b_cs]` is `B[p, j]`.
pub(crate) struct GemmView<'a> {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub a: &'a [f32],
    pub a_rs: usize,
    pub a_cs: usize,
    pub b: &'a [f32],
    pub b_rs: usize,
    pub b_cs: usize,
}

/// Signature every micro-kernel shares: accumulate `kc` rank-1 updates from
/// the packed panels into a contiguous `MR×NR` output tile.
pub(crate) type MicroKernel = fn(usize, &[f32], &[f32], &mut [f32; TILE]);

/// Instruction-set paths the dispatch layer can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Isa {
    /// Portable scalar micro-kernel; bit-identical to the reference loops.
    Scalar = 1,
    /// AVX2 + FMA micro-kernel (x86_64), 6×16 tile in 12 `ymm` accumulators.
    Avx2Fma = 2,
    /// NEON micro-kernel (aarch64), 6×16 tile in 24 `q` accumulators.
    Neon = 3,
}

/// `0` = auto (use [`detected_isa`]), otherwise an [`Isa`] discriminant.
static FORCED: AtomicU8 = AtomicU8::new(0);
/// `0` = unset (read `CUTTLEFISH_THREADS` lazily), otherwise a count.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// The best instruction set this machine supports, detected once at first
/// use via `std::arch` runtime feature detection and cached.
pub fn detected_isa() -> Isa {
    static CACHE: OnceLock<Isa> = OnceLock::new();
    *CACHE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Isa::Avx2Fma;
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Isa::Neon;
        }
        Isa::Scalar
    })
}

/// Whether `isa` can run on this machine ([`Isa::Scalar`] always can).
pub fn isa_supported(isa: Isa) -> bool {
    isa == Isa::Scalar || isa == detected_isa()
}

/// Pins the dispatch layer to one ISA (`Some`) or restores auto-detection
/// (`None`). Returns `false` — leaving the current setting untouched — if
/// the requested ISA is not supported on this machine. Intended for benches
/// and property tests; prefer the `*_with` entry points where possible
/// because this is process-global state.
pub fn force_isa(isa: Option<Isa>) -> bool {
    match isa {
        None => {
            FORCED.store(0, Ordering::Relaxed);
            true
        }
        Some(i) if isa_supported(i) => {
            FORCED.store(i as u8, Ordering::Relaxed);
            true
        }
        Some(_) => false,
    }
}

/// The ISA the implicit entry points ([`gemm_nn`] etc.) will use: the
/// forced one if set, otherwise [`detected_isa`].
pub fn active_isa() -> Isa {
    match FORCED.load(Ordering::Relaxed) {
        1 => Isa::Scalar,
        2 => Isa::Avx2Fma,
        3 => Isa::Neon,
        _ => detected_isa(),
    }
}

/// Sets the worker-thread count used by the `parallel` cargo feature
/// (clamped to at least 1). Without that feature the value is recorded but
/// kernels always run serially. Thread count never changes results — see
/// the determinism contract in the module docs.
pub fn set_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The configured worker-thread count: the last [`set_threads`] value, else
/// the `CUTTLEFISH_THREADS` environment variable, else 1.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("CUTTLEFISH_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map_or(1, |v| v.max(1));
            THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Splits `m` output rows into the contiguous stripes the `parallel`
/// feature assigns to worker threads: an even share per thread, rounded up
/// to a multiple of [`MR`] so only the final stripe carries a partial
/// micro-panel. Returns `(first_row, rows)` pairs that cover `0..m` exactly
/// once with no overlap — the disjointness the striped GEMM's correctness
/// rests on, model-checked by `cuttlefish-check` against this very
/// function and property-tested below.
pub fn stripe_rows(m: usize, nthreads: usize) -> Vec<(usize, usize)> {
    if m == 0 {
        return Vec::new();
    }
    let stripe = m.div_ceil(nthreads.max(1)).div_ceil(MR) * MR;
    let mut out = Vec::new();
    let mut i0 = 0usize;
    while i0 < m {
        let rows = stripe.min(m - i0);
        out.push((i0, rows));
        i0 += rows;
    }
    out
}

/// Resolves the micro-kernel for an ISA; unsupported-on-this-arch variants
/// fall back to scalar (unreachable through the public API, which refuses
/// to force an unsupported ISA).
fn micro_kernel(isa: Isa) -> MicroKernel {
    match isa {
        Isa::Scalar => blocked::kernel_scalar,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => x86::kernel_avx2,
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::kernel_neon,
        _ => blocked::kernel_scalar,
    }
}

fn run(g: &GemmView<'_>, c: &mut [f32], isa: Isa, nthreads: usize) {
    if g.m == 0 || g.n == 0 || g.k == 0 {
        return;
    }
    let kernel = micro_kernel(isa);
    #[cfg(feature = "parallel")]
    if nthreads > 1 && g.m >= 2 * MR && 2 * g.m * g.n * g.k >= PAR_FLOP_FLOOR {
        parallel::gemm_striped(g, c, kernel, nthreads);
        return;
    }
    #[cfg(not(feature = "parallel"))]
    let _ = nthreads;
    blocked::gemm_blocked(g, c, kernel);
}

/// `C += A·B` with the active ISA and configured thread count; `a` is
/// `m×k`, `b` is `k×n`, `c` is `m×n`, all row-major.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nn_with(active_isa(), threads(), m, n, k, a, b, c);
}

/// `C += Aᵀ·B` with the active ISA and configured thread count; `a` is
/// stored `k×m` row-major (so `Aᵀ` is `m×k`), `b` is `k×n`, `c` is `m×n`.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_tn_with(active_isa(), threads(), m, n, k, a, b, c);
}

/// `C += A·Bᵀ` with the active ISA and configured thread count; `a` is
/// `m×k`, `b` is stored `n×k` row-major (so `Bᵀ` is `k×n`), `c` is `m×n`.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_with(active_isa(), threads(), m, n, k, a, b, c);
}

/// [`gemm_nn`] with an explicit ISA and thread count — the side-effect-free
/// hook for benches and property tests. `nthreads` only takes effect with
/// the `parallel` cargo feature.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_with(
    isa: Isa,
    nthreads: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm_nn: lhs is not m*k");
    assert_eq!(b.len(), k * n, "gemm_nn: rhs is not k*n");
    assert_eq!(c.len(), m * n, "gemm_nn: out is not m*n");
    let g = GemmView {
        m,
        n,
        k,
        a,
        a_rs: k,
        a_cs: 1,
        b,
        b_rs: n,
        b_cs: 1,
    };
    run(&g, c, isa, nthreads);
}

/// [`gemm_tn`] with an explicit ISA and thread count. `a` is stored `k×m`
/// row-major and read through swapped strides — no transpose materialized.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_with(
    isa: Isa,
    nthreads: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), k * m, "gemm_tn: lhs is not k*m");
    assert_eq!(b.len(), k * n, "gemm_tn: rhs is not k*n");
    assert_eq!(c.len(), m * n, "gemm_tn: out is not m*n");
    let g = GemmView {
        m,
        n,
        k,
        a,
        a_rs: 1,
        a_cs: m,
        b,
        b_rs: n,
        b_cs: 1,
    };
    run(&g, c, isa, nthreads);
}

/// [`gemm_nt`] with an explicit ISA and thread count. `b` is stored `n×k`
/// row-major and read through swapped strides — no transpose materialized.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_with(
    isa: Isa,
    nthreads: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm_nt: lhs is not m*k");
    assert_eq!(b.len(), n * k, "gemm_nt: rhs is not n*k");
    assert_eq!(c.len(), m * n, "gemm_nt: out is not m*n");
    let g = GemmView {
        m,
        n,
        k,
        a,
        a_rs: k,
        a_cs: 1,
        b,
        b_rs: 1,
        b_cs: k,
    };
    run(&g, c, isa, nthreads);
}

/// Reference `C += A·B`: the textbook i-k-j triple loop, one rounded `mul`
/// plus one rounded `add` per term, k strictly ascending, no zero-skip.
/// The scalar blocked path is bit-identical to this at every size.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
pub fn reference_gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "reference_gemm_nn: lhs is not m*k");
    assert_eq!(b.len(), k * n, "reference_gemm_nn: rhs is not k*n");
    assert_eq!(c.len(), m * n, "reference_gemm_nn: out is not m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for (c_row, a_row) in c.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
        for (&av, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Reference `C += Aᵀ·B` (`a` stored `k×m` row-major): k-outer loop order
/// matching the historical `matmul_tn`, no zero-skip.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
pub fn reference_gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "reference_gemm_tn: lhs is not k*m");
    assert_eq!(b.len(), k * n, "reference_gemm_tn: rhs is not k*n");
    assert_eq!(c.len(), m * n, "reference_gemm_tn: out is not m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
        for (&av, c_row) in a_row.iter().zip(c.chunks_exact_mut(n)) {
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Reference `C += A·Bᵀ` (`b` stored `n×k` row-major): per-element dot
/// product with k strictly ascending, matching the historical `matmul_nt`.
///
/// # Panics
///
/// Panics if a buffer length disagrees with its stated shape.
pub fn reference_gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "reference_gemm_nt: lhs is not m*k");
    assert_eq!(b.len(), n * k, "reference_gemm_nt: rhs is not n*k");
    assert_eq!(c.len(), m * n, "reference_gemm_nt: out is not m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    for (c_row, a_row) in c.chunks_exact_mut(n).zip(a.chunks_exact(k)) {
        for (cv, b_row) in c_row.iter_mut().zip(b.chunks_exact(k)) {
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..len).map(f).collect()
    }

    #[test]
    fn scalar_blocked_matches_reference_bitwise() {
        for &(m, n, k) in &[(1, 1, 1), (7, 13, 5), (17, 33, 70), (65, 40, 300)] {
            let a = fill(m * k, |i| ((i * 31 % 17) as f32 - 8.0) * 0.125);
            let b = fill(k * n, |i| ((i * 13 % 29) as f32 - 14.0) * 0.0625);
            let mut c_ref = vec![0.0f32; m * n];
            reference_gemm_nn(m, n, k, &a, &b, &mut c_ref);
            let mut c_blk = vec![0.0f32; m * n];
            gemm_nn_with(Isa::Scalar, 1, m, n, k, &a, &b, &mut c_blk);
            assert_eq!(c_ref, c_blk, "scalar blocked drifted at {m}x{n}x{k}");
        }
    }

    #[test]
    fn tn_and_nt_match_reference_bitwise() {
        let (m, n, k) = (23, 19, 37);
        let a_t = fill(k * m, |i| (i as f32).sin());
        let b = fill(k * n, |i| (i as f32).cos());
        let mut c_ref = vec![0.0f32; m * n];
        reference_gemm_tn(m, n, k, &a_t, &b, &mut c_ref);
        let mut c_blk = vec![0.0f32; m * n];
        gemm_tn_with(Isa::Scalar, 1, m, n, k, &a_t, &b, &mut c_blk);
        assert_eq!(c_ref, c_blk);

        let a = fill(m * k, |i| (i as f32 * 0.7).sin());
        let b_t = fill(n * k, |i| (i as f32 * 0.3).cos());
        let mut c_ref = vec![0.0f32; m * n];
        reference_gemm_nt(m, n, k, &a, &b_t, &mut c_ref);
        let mut c_blk = vec![0.0f32; m * n];
        gemm_nt_with(Isa::Scalar, 1, m, n, k, &a, &b_t, &mut c_blk);
        assert_eq!(c_ref, c_blk);
    }

    #[test]
    fn detected_isa_runs_and_is_close() {
        let (m, n, k) = (50, 34, 260);
        let a = fill(m * k, |i| ((i % 101) as f32 - 50.0) * 0.01);
        let b = fill(k * n, |i| ((i % 89) as f32 - 44.0) * 0.02);
        let mut c_ref = vec![0.0f32; m * n];
        reference_gemm_nn(m, n, k, &a, &b, &mut c_ref);
        let mut c_simd = vec![0.0f32; m * n];
        gemm_nn_with(detected_isa(), 1, m, n, k, &a, &b, &mut c_simd);
        for (i, (&x, &y)) in c_ref.iter().zip(&c_simd).enumerate() {
            let bound = 4.0 * f32::EPSILON * k as f32 * x.abs().max(1.0);
            assert!((x - y).abs() <= bound, "elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn force_isa_rejects_unsupported() {
        assert!(force_isa(Some(Isa::Scalar)));
        assert_eq!(active_isa(), Isa::Scalar);
        assert!(force_isa(None));
        #[cfg(target_arch = "x86_64")]
        assert!(!force_isa(Some(Isa::Neon)));
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c = vec![0.0f32; 0];
        gemm_nn(0, 0, 0, &[], &[], &mut c);
        let mut c = vec![1.0f32; 4];
        gemm_nn(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn stripe_rows_cover_exactly_once_and_stay_aligned() {
        for m in 0..=200usize {
            for nthreads in 1..=8usize {
                let stripes = stripe_rows(m, nthreads);
                assert!(
                    stripes.len() <= nthreads.max(1),
                    "{m} rows / {nthreads} threads"
                );
                // Contiguous, complete, non-overlapping coverage of 0..m.
                let mut next = 0usize;
                for (idx, &(i0, rows)) in stripes.iter().enumerate() {
                    assert_eq!(i0, next, "gap or overlap at stripe {idx} ({m}/{nthreads})");
                    assert!(rows > 0, "empty stripe {idx} ({m}/{nthreads})");
                    // Every stripe start — and so every stripe except the
                    // last — is MR-aligned.
                    assert_eq!(i0 % MR, 0, "unaligned stripe start ({m}/{nthreads})");
                    if idx + 1 < stripes.len() {
                        assert_eq!(rows % MR, 0, "interior stripe not MR-aligned");
                    }
                    next = i0 + rows;
                }
                assert_eq!(next, m, "stripes do not cover all rows ({m}/{nthreads})");
            }
        }
        assert!(stripe_rows(0, 4).is_empty());
    }

    #[test]
    fn threads_are_clamped() {
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(1);
    }
}
