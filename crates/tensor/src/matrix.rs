use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` matrix.
///
/// This is the workhorse type of the reproduction: every neural-network
/// weight that Cuttlefish tracks is viewed as a 2-D matrix (convolution
/// kernels are unrolled to `(m·k², n)` per §2.1 of the paper), and the
/// stable-rank machinery operates on these matrices.
///
/// # Example
///
/// ```
/// use cuttlefish_tensor::Matrix;
///
/// # fn main() -> Result<(), cuttlefish_tensor::TensorError> {
/// let a = Matrix::eye(3);
/// let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.get(2, 1), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            for i in 0..self.rows {
                write!(f, "\n  [")?;
                for j in 0..self.cols {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:.4}", self.get(i, j))?;
                }
                write!(f, "]")?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Example
    ///
    /// ```
    /// use cuttlefish_tensor::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z.get(1, 2), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer as a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimension {
                op: "from_vec",
                detail: format!(
                    "buffer of length {} cannot be viewed as {rows}x{cols}",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if rows have unequal lengths
    /// or the input is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(TensorError::InvalidDimension {
                op: "from_rows",
                detail: "empty row list".to_string(),
            });
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TensorError::InvalidDimension {
                    op: "from_rows",
                    detail: format!("row length {} != {}", row.len(), ncols),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The full rank of the matrix shape, `min(rows, cols)` — the value the
    /// paper calls `rank(W)` for a dense layer.
    pub fn full_rank(&self) -> usize {
        self.rows.min(self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Allocated capacity of the underlying buffer, in elements.
    ///
    /// Workspace matrices resized with [`Matrix::reset_to`] keep their
    /// high-water-mark allocation; this exposes it so reuse can be asserted.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Returns the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Matrix product `self * rhs` through the blocked, ISA-dispatched
    /// kernel layer ([`crate::kernel`]); products whose `rhs` is smaller
    /// than [`crate::kernel::SMALL_GEMM_FLOOR`] use the bit-identical
    /// reference loop instead, where packing overhead would dominate. The
    /// dispatch keys on `rhs` alone so the path taken — and therefore each
    /// output row, bit for bit — never depends on the batch dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        crate::counters::record_matmul(self.rows, rhs.cols, self.cols);
        let (m, n, k) = (self.rows, rhs.cols, self.cols);
        let mut out = Matrix::zeros(m, n);
        if rhs.data.len() >= crate::kernel::SMALL_GEMM_FLOOR {
            crate::kernel::gemm_nn(m, n, k, &self.data, &rhs.data, &mut out.data);
        } else {
            crate::kernel::reference_gemm_nn(m, n, k, &self.data, &rhs.data, &mut out.data);
        }
        crate::checked::scan("matmul", &out.data);
        Ok(out)
    }

    /// Computes `selfᵀ * rhs` without materializing the transpose, through
    /// the same kernel layer as [`Matrix::matmul`] (the packing routines
    /// read through swapped strides).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.rows != rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_tn",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        crate::counters::record_matmul(self.cols, rhs.cols, self.rows);
        let (m, n, k) = (self.cols, rhs.cols, self.rows);
        let mut out = Matrix::zeros(m, n);
        if rhs.data.len() >= crate::kernel::SMALL_GEMM_FLOOR {
            crate::kernel::gemm_tn(m, n, k, &self.data, &rhs.data, &mut out.data);
        } else {
            crate::kernel::reference_gemm_tn(m, n, k, &self.data, &rhs.data, &mut out.data);
        }
        crate::checked::scan("matmul_tn", &out.data);
        Ok(out)
    }

    /// Computes `self * rhsᵀ` without materializing the transpose, through
    /// the same kernel layer as [`Matrix::matmul`] (the packing routines
    /// read through swapped strides).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `self.cols != rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_nt",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        crate::counters::record_matmul(self.rows, rhs.rows, self.cols);
        let (m, n, k) = (self.rows, rhs.rows, self.cols);
        let mut out = Matrix::zeros(m, n);
        if rhs.data.len() >= crate::kernel::SMALL_GEMM_FLOOR {
            crate::kernel::gemm_nt(m, n, k, &self.data, &rhs.data, &mut out.data);
        } else {
            crate::kernel::reference_gemm_nt(m, n, k, &self.data, &rhs.data, &mut out.data);
        }
        crate::checked::scan("matmul_nt", &out.data);
        Ok(out)
    }

    /// Element-wise sum, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on shape disagreement.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("add", rhs, |a, b| a + b)
    }

    /// Element-wise difference, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on shape disagreement.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("sub", rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on shape disagreement.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with("hadamard", rhs, |a, b| a * b)
    }

    fn zip_with(
        &self,
        op: &'static str,
        rhs: &Matrix,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        let data: Vec<f32> = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        crate::checked::scan(op, &data);
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += alpha * rhs` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on shape disagreement.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
        crate::checked::scan("axpy", &self.data);
        Ok(())
    }

    /// Returns a new matrix with every element multiplied by `alpha`.
    pub fn scale(&self, alpha: f32) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// In-place multiplication of every element by `alpha`.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshapes this matrix to `rows × cols` with every element zeroed,
    /// reusing the existing allocation whenever it is large enough.
    ///
    /// This is the workspace primitive behind kernel scratch buffers
    /// (e.g. the im2col patch matrix a serving replica reuses across
    /// forward passes): after the first call at a given size, subsequent
    /// calls perform no allocation. The capacity is high-water-mark
    /// sticky — shrinking never releases the allocation, so a batch that
    /// shrinks and later regrows still reallocates nothing.
    pub fn reset_to(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.data.clear();
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Frobenius norm `‖self‖_F`, accumulated in `f64`.
    ///
    /// Cuttlefish uses this together with `σ_max` for the fast stable-rank
    /// path: `stable_rank(W) = ‖W‖_F² / σ_max²`.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Squared Frobenius norm, accumulated in `f64`.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for the empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Copies the first `r` columns into a new `rows × r` matrix.
    ///
    /// This is the `U[:, 1:r]` truncation step of Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when `r > cols` or `r == 0`.
    pub fn take_cols(&self, r: usize) -> Result<Matrix> {
        if r == 0 || r > self.cols {
            return Err(TensorError::InvalidDimension {
                op: "take_cols",
                detail: format!("r = {r} out of range for {} columns", self.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, r);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[..r]);
        }
        Ok(out)
    }

    /// Copies the first `r` rows into a new `r × cols` matrix.
    ///
    /// This is the `Vᵀ[1:r, :]` truncation step of Algorithm 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when `r > rows` or `r == 0`.
    pub fn take_rows(&self, r: usize) -> Result<Matrix> {
        if r == 0 || r > self.rows {
            return Err(TensorError::InvalidDimension {
                op: "take_rows",
                detail: format!("r = {r} out of range for {} rows", self.rows),
            });
        }
        Ok(Matrix {
            rows: r,
            cols: self.cols,
            data: self.data[..r * self.cols].to_vec(),
        })
    }

    /// Copies the half-open row range `[lo, hi)` into a new matrix.
    ///
    /// This is the sharding primitive of `cuttlefish-dist`: worker `i` of
    /// `n` takes a disjoint row range of the training split.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the range is empty or
    /// extends past the last row.
    pub fn row_range(&self, lo: usize, hi: usize) -> Result<Matrix> {
        if lo >= hi || hi > self.rows {
            return Err(TensorError::InvalidDimension {
                op: "row_range",
                detail: format!("range {lo}..{hi} out of bounds for {} rows", self.rows),
            });
        }
        Ok(Matrix {
            rows: hi - lo,
            cols: self.cols,
            data: self.data[lo * self.cols..hi * self.cols].to_vec(),
        })
    }

    /// Number of bytes this matrix occupies on a little-endian FP32 wire.
    pub fn byte_len(&self) -> usize {
        self.data.len() * 4
    }

    /// Appends the elements in row-major order as little-endian FP32 bytes.
    ///
    /// This is the wire format used by the `cuttlefish-dist` gradient
    /// exchange; shapes are carried out-of-band by the parameter schema.
    pub fn write_le_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.byte_len());
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Reconstructs a `rows × cols` matrix from little-endian FP32 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `bytes.len()` is not
    /// exactly `rows * cols * 4`.
    pub fn from_le_bytes(rows: usize, cols: usize, bytes: &[u8]) -> Result<Matrix> {
        if bytes.len() != rows * cols * 4 {
            return Err(TensorError::InvalidDimension {
                op: "from_le_bytes",
                detail: format!(
                    "{} bytes cannot be viewed as {rows}x{cols} FP32",
                    bytes.len()
                ),
            });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for chunk in bytes.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(Matrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_eye() {
        let z = Matrix::zeros(2, 4);
        assert_eq!(z.shape(), (2, 4));
        assert_eq!(z.sum(), 0.0);
        let i = Matrix::eye(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let i = Matrix::eye(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = sample();
        let b = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = sample();
        let b = Matrix::from_fn(5, 2, |i, j| (i + j) as f32 * 0.5);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_ops() {
        let m = sample();
        let s = m.add(&m).unwrap();
        assert_eq!(s.get(2, 1), 12.0);
        let d = s.sub(&m).unwrap();
        assert_eq!(d, m);
        let h = m.hadamard(&m).unwrap();
        assert_eq!(h.get(1, 0), 9.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        let g = Matrix::eye(2);
        m.axpy(-0.5, &g).unwrap();
        assert_eq!(m.get(0, 0), -0.5);
        assert!(m.axpy(1.0, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((m.frobenius_norm_sq() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn take_cols_and_rows() {
        let m = sample();
        let c = m.take_cols(1).unwrap();
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.get(2, 0), 5.0);
        let r = m.take_rows(2).unwrap();
        assert_eq!(r.shape(), (2, 2));
        assert_eq!(r.get(1, 1), 4.0);
        assert!(m.take_cols(0).is_err());
        assert!(m.take_cols(3).is_err());
        assert!(m.take_rows(4).is_err());
    }

    #[test]
    fn map_and_scale() {
        let m = sample();
        let doubled = m.scale(2.0);
        assert_eq!(doubled.get(0, 1), 4.0);
        let neg = m.map(|v| -v);
        assert_eq!(neg.get(0, 0), -1.0);
        let mut s = m.clone();
        s.scale_in_place(0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn full_rank_is_min_dim() {
        assert_eq!(sample().full_rank(), 2);
        assert_eq!(Matrix::zeros(2, 7).full_rank(), 2);
    }

    #[test]
    fn debug_small_matrix_prints_entries() {
        let m = Matrix::eye(2);
        let text = format!("{m:?}");
        assert!(text.contains("Matrix(2x2)"));
        assert!(text.contains("1.0000"));
    }

    #[test]
    fn row_range_extracts_middle_rows() {
        let m = sample();
        let mid = m.row_range(1, 3).unwrap();
        assert_eq!(mid.shape(), (2, 2));
        assert_eq!(mid.row(0), &[3.0, 4.0]);
        assert_eq!(mid.row(1), &[5.0, 6.0]);
        assert!(m.row_range(2, 2).is_err());
        assert!(m.row_range(1, 4).is_err());
    }

    #[test]
    fn reset_to_keeps_high_water_capacity() {
        let mut m = Matrix::zeros(0, 0);
        m.reset_to(100, 10);
        let cap = m.capacity();
        let ptr = m.as_slice().as_ptr();
        assert!(cap >= 1000);
        // Shrink, then regrow to the high-water mark: the allocation (and
        // therefore the buffer address) must be reused, not reissued.
        m.reset_to(3, 10);
        assert_eq!(m.capacity(), cap);
        m.reset_to(100, 10);
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn le_bytes_roundtrip_is_exact() {
        let m = Matrix::from_fn(3, 5, |i, j| (i as f32 - 1.5) * 0.37 + j as f32 * 1e-7);
        let mut buf = Vec::new();
        m.write_le_bytes(&mut buf);
        assert_eq!(buf.len(), m.byte_len());
        let back = Matrix::from_le_bytes(3, 5, &buf).unwrap();
        assert_eq!(back, m);
        assert!(Matrix::from_le_bytes(3, 4, &buf).is_err());
        assert!(Matrix::from_le_bytes(3, 5, &buf[..buf.len() - 1]).is_err());
    }
}
