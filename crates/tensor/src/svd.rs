//! Singular value decomposition and spectral utilities.
//!
//! Cuttlefish needs two spectral primitives (paper §3.3–§3.6, §4.3):
//!
//! * **Singular values only** ([`svdvals`]) — computed every epoch for every
//!   tracked layer to evaluate the stable rank. The paper stresses that this
//!   path does not need singular *vectors* (`scipy.linalg.svdvals`); we use a
//!   symmetric Jacobi eigensolver on the smaller Gram matrix, plus a
//!   [`power_iteration`] fast path for `σ_max` alone.
//! * **Full SVD** ([`Svd::compute`]) — needed once, at the full-rank →
//!   low-rank switching epoch, to factorize each layer as
//!   `U = Ũ Σ^{1/2}`, `Vᵀ = Σ^{1/2} Ṽᵀ` truncated at the chosen rank
//!   ([`Svd::split_sqrt`], matching Algorithm 1 line "Uₗ = Ũₗ Σ^{1/2}…").
//!
//! Both are implemented from scratch: one-sided Jacobi for the full SVD
//! (simple, numerically robust, adequate at the layer sizes we track) and
//! cyclic symmetric Jacobi for eigenvalues. All internal arithmetic is `f64`.

use crate::{Matrix, Result, TensorError};

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 60;
/// Relative off-diagonal tolerance for Jacobi convergence.
const JACOBI_TOL: f64 = 1e-12;

/// A full singular value decomposition `W = U · diag(s) · Vᵀ`.
///
/// `U` is `m × p`, `Vᵀ` is `p × n` with `p = min(m, n)`, and `s` is sorted
/// in descending order (the paper's `Σ` convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Svd {
    u: Matrix,
    s: Vec<f32>,
    vt: Matrix,
}

impl Svd {
    /// Computes the thin SVD of `w` by one-sided Jacobi.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] for empty inputs and
    /// [`TensorError::NoConvergence`] if the Jacobi sweeps fail to converge
    /// (not observed in practice at NN-layer sizes).
    ///
    /// # Example
    ///
    /// ```
    /// use cuttlefish_tensor::{Matrix, svd::Svd};
    /// # fn main() -> Result<(), cuttlefish_tensor::TensorError> {
    /// let w = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 1)) as f32);
    /// let d = Svd::compute(&w)?;
    /// // Rank-one matrix: exactly one significant singular value.
    /// assert!(d.singular_values()[1] < 1e-3 * d.singular_values()[0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn compute(w: &Matrix) -> Result<Self> {
        if w.is_empty() {
            return Err(TensorError::InvalidDimension {
                op: "Svd::compute",
                detail: "cannot decompose an empty matrix".to_string(),
            });
        }
        if w.rows() >= w.cols() {
            Self::compute_tall(w)
        } else {
            // W = U S Vᵀ  ⇔  Wᵀ = V S Uᵀ: decompose the transpose and swap.
            let t = Self::compute_tall(&w.transpose())?;
            Ok(Svd {
                u: t.vt.transpose(),
                s: t.s,
                vt: t.u.transpose(),
            })
        }
    }

    /// One-sided Jacobi on a tall (m ≥ n) matrix.
    ///
    /// The working copy and the accumulated `V` are stored as single
    /// contiguous column-major buffers (column `j` at `[j·len, (j+1)·len)`)
    /// rather than nested `Vec<Vec<f64>>`: rotations and Gram dot products
    /// then run over adjacent memory, which is where Jacobi spends all its
    /// time. Accumulation order per column pair is unchanged from the
    /// nested layout, so results are bit-identical.
    fn compute_tall(w: &Matrix) -> Result<Self> {
        let m = w.rows();
        let n = w.cols();
        // Column-major f64 working copy of W, plus accumulated V.
        let mut b = vec![0.0f64; n * m];
        for (j, col) in b.chunks_exact_mut(m).enumerate() {
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = w.get(i, j) as f64;
            }
        }
        let mut v = vec![0.0f64; n * n];
        for (j, col) in v.chunks_exact_mut(n).enumerate() {
            col[j] = 1.0;
        }

        let mut converged = false;
        for _sweep in 0..MAX_SWEEPS {
            crate::counters::record_svd_sweep();
            let mut off = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let (alpha, beta, gamma) = col_moments(&b, m, i, j);
                    if alpha == 0.0 || beta == 0.0 {
                        continue;
                    }
                    let ratio = gamma.abs() / (alpha * beta).sqrt();
                    off = off.max(ratio);
                    if ratio <= JACOBI_TOL {
                        continue;
                    }
                    // Jacobi rotation zeroing the (i, j) Gram entry.
                    let zeta = (beta - alpha) / (2.0 * gamma);
                    let t_val = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t_val * t_val).sqrt();
                    let s = c * t_val;
                    let (bi, bj) = col_pair_mut(&mut b, m, i, j);
                    rotate_pair(bi, bj, c, s);
                    let (vi, vj) = col_pair_mut(&mut v, n, i, j);
                    rotate_pair(vi, vj, c, s);
                }
            }
            if off <= JACOBI_TOL {
                converged = true;
                break;
            }
        }
        if !converged {
            // One more orthogonality check: tiny residual correlations are
            // fine for our purposes; only bail out on gross failure.
            let mut worst = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let (alpha, beta, gamma) = col_moments(&b, m, i, j);
                    if alpha > 0.0 && beta > 0.0 {
                        worst = worst.max(gamma.abs() / (alpha * beta).sqrt());
                    }
                }
            }
            if worst > 1e-6 {
                return Err(TensorError::NoConvergence {
                    algorithm: "one-sided-jacobi-svd",
                    iterations: MAX_SWEEPS,
                });
            }
        }

        // Singular values = column norms; sort descending.
        let mut order: Vec<usize> = (0..n).collect();
        let norms: Vec<f64> = b
            .chunks_exact(m)
            .map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        order.sort_by(|&a, &c| {
            norms[c]
                .partial_cmp(&norms[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut u = Matrix::zeros(m, n);
        let mut vt = Matrix::zeros(n, n);
        let mut s = Vec::with_capacity(n);
        for (rank, &src) in order.iter().enumerate() {
            let sigma = norms[src];
            s.push(sigma as f32);
            if sigma > 0.0 {
                for (t, &x) in b[src * m..(src + 1) * m].iter().enumerate() {
                    u.set(t, rank, (x / sigma) as f32);
                }
            }
            for (t, &x) in v[src * n..(src + 1) * n].iter().enumerate() {
                vt.set(rank, t, x as f32);
            }
        }
        Ok(Svd { u, s, vt })
    }

    /// The left singular vectors, `m × p`.
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The singular values in descending order.
    pub fn singular_values(&self) -> &[f32] {
        &self.s
    }

    /// The right singular vectors, transposed: `p × n`.
    pub fn vt(&self) -> &Matrix {
        &self.vt
    }

    /// Reconstructs `U · diag(s) · Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        self.reconstruct_rank(self.s.len())
    }

    /// Reconstructs the best rank-`r` approximation `U[:, :r] diag(s[:r]) Vᵀ[:r, :]`.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0` or `r > p`.
    pub fn reconstruct_rank(&self, r: usize) -> Matrix {
        assert!(r >= 1 && r <= self.s.len(), "rank {r} out of range");
        let m = self.u.rows();
        let n = self.vt.cols();
        let mut out = Matrix::zeros(m, n);
        for k in 0..r {
            let sigma = self.s[k];
            if sigma == 0.0 {
                continue;
            }
            for i in 0..m {
                let coef = sigma * self.u.get(i, k);
                if coef == 0.0 {
                    continue;
                }
                let row = out.row_mut(i);
                let vrow = self.vt.row(k);
                for j in 0..n {
                    row[j] += coef * vrow[j];
                }
            }
        }
        out
    }

    /// Splits the decomposition into the Cuttlefish factorized pair at rank
    /// `r`: `U = Ũ[:, :r] Σ^{1/2}[:r]` (shape `m × r`) and
    /// `Vᵀ = Σ^{1/2}[:r] Ṽᵀ[:r, :]` (shape `r × n`), so `U · Vᵀ` is the best
    /// rank-`r` approximation of the original matrix (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `r == 0` or `r > p`.
    pub fn split_sqrt(&self, r: usize) -> Result<(Matrix, Matrix)> {
        if r == 0 || r > self.s.len() {
            return Err(TensorError::InvalidDimension {
                op: "Svd::split_sqrt",
                detail: format!("rank {r} out of range 1..={}", self.s.len()),
            });
        }
        let m = self.u.rows();
        let n = self.vt.cols();
        let mut u = Matrix::zeros(m, r);
        let mut vt = Matrix::zeros(r, n);
        for k in 0..r {
            let root = self.s[k].max(0.0).sqrt();
            for i in 0..m {
                u.set(i, k, self.u.get(i, k) * root);
            }
            for j in 0..n {
                vt.set(k, j, self.vt.get(k, j) * root);
            }
        }
        Ok((u, vt))
    }
}

/// Gram moments of columns `i < j` in a flat column-major buffer: returns
/// `(‖cᵢ‖², ‖cⱼ‖², cᵢ·cⱼ)` with one fused pass over both columns. The three
/// accumulators are independent and advance in ascending element order, so
/// each matches its historical separate-loop value bit-for-bit.
fn col_moments(buf: &[f64], len: usize, i: usize, j: usize) -> (f64, f64, f64) {
    let ci = &buf[i * len..(i + 1) * len];
    let cj = &buf[j * len..(j + 1) * len];
    let mut alpha = 0.0f64;
    let mut beta = 0.0f64;
    let mut gamma = 0.0f64;
    for (&x, &y) in ci.iter().zip(cj) {
        alpha += x * x;
        beta += y * y;
        gamma += x * y;
    }
    (alpha, beta, gamma)
}

/// Disjoint mutable borrows of columns `i < j` in a flat column-major buffer.
fn col_pair_mut(buf: &mut [f64], len: usize, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(i < j);
    let (head, tail) = buf.split_at_mut(j * len);
    (&mut head[i * len..(i + 1) * len], &mut tail[..len])
}

/// Applies the Givens rotation `(x, y) ← (c·x − s·y, s·x + c·y)` elementwise.
fn rotate_pair(xs: &mut [f64], ys: &mut [f64], c: f64, s: f64) {
    for (x, y) in xs.iter_mut().zip(ys.iter_mut()) {
        let xv = *x;
        let yv = *y;
        *x = c * xv - s * yv;
        *y = s * xv + c * yv;
    }
}

/// Computes the singular values of `w` in descending order, without singular
/// vectors — the `scipy.linalg.svdvals` path used for per-epoch stable-rank
/// estimation (§4.3).
///
/// Internally diagonalizes the smaller Gram matrix (`WᵀW` or `WWᵀ`) with a
/// cyclic symmetric Jacobi sweep, so the cost scales with `min(m, n)³`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] for empty inputs and
/// [`TensorError::NoConvergence`] on Jacobi failure.
pub fn svdvals(w: &Matrix) -> Result<Vec<f32>> {
    if w.is_empty() {
        return Err(TensorError::InvalidDimension {
            op: "svdvals",
            detail: "cannot decompose an empty matrix".to_string(),
        });
    }
    let gram = if w.rows() >= w.cols() {
        w.matmul_tn(w)? // n × n
    } else {
        w.matmul_nt(w)? // m × m
    };
    let eigs = symmetric_eigenvalues(&gram)?;
    Ok(eigs.into_iter().map(|l| l.max(0.0).sqrt() as f32).collect())
}

/// Eigenvalues of a symmetric matrix in descending order via cyclic Jacobi.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] for non-square or empty inputs
/// and [`TensorError::NoConvergence`] if sweeps are exhausted.
pub fn symmetric_eigenvalues(a: &Matrix) -> Result<Vec<f64>> {
    if a.rows() != a.cols() || a.is_empty() {
        return Err(TensorError::InvalidDimension {
            op: "symmetric_eigenvalues",
            detail: format!("expected nonempty square matrix, got {:?}", a.shape()),
        });
    }
    let n = a.rows();
    let mut m: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    let idx = |i: usize, j: usize| i * n + j;
    let scale = m.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1.0);
    let tol = JACOBI_TOL * scale;

    for _sweep in 0..MAX_SWEEPS {
        crate::counters::record_svd_sweep();
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[idx(p, q)];
                off = off.max(apq.abs());
                if apq.abs() <= tol {
                    continue;
                }
                let app = m[idx(p, p)];
                let aqq = m[idx(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation on both sides: one contiguous row walk for
                // the column update (instead of two strided passes), then a
                // split-borrow rotation of rows p and q. Same operations in
                // the same order as the historical strided loops.
                for row in m.chunks_exact_mut(n) {
                    let akp = row[p];
                    let akq = row[q];
                    row[p] = c * akp - s * akq;
                    row[q] = s * akp + c * akq;
                }
                let (rp, rq) = {
                    let (head, tail) = m.split_at_mut(q * n);
                    (&mut head[p * n..(p + 1) * n], &mut tail[..n])
                };
                rotate_pair(rp, rq, c, s);
            }
        }
        if off <= tol {
            let mut eigs: Vec<f64> = (0..n).map(|i| m[idx(i, i)]).collect();
            eigs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            return Ok(eigs);
        }
    }
    Err(TensorError::NoConvergence {
        algorithm: "symmetric-jacobi",
        iterations: MAX_SWEEPS,
    })
}

/// Estimates the largest singular value of `w` by power iteration on `WᵀW`.
///
/// This is the cheap path for stable-rank tracking:
/// `stable_rank(W) = ‖W‖_F² / σ_max²` needs only `σ_max`, not the full
/// spectrum. Deterministic: the starting vector is derived from the shape.
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] for empty inputs.
pub fn power_iteration(w: &Matrix, max_iters: usize, tol: f64) -> Result<f32> {
    if w.is_empty() {
        return Err(TensorError::InvalidDimension {
            op: "power_iteration",
            detail: "cannot operate on an empty matrix".to_string(),
        });
    }
    let n = w.cols();
    // Deterministic quasi-random start vector.
    let mut v: Vec<f64> = (0..n)
        .map(|i| (((i * 2654435761) % 1000) as f64 / 1000.0) - 0.5 + 1e-3)
        .collect();
    normalize(&mut v);
    let mut sigma_prev = 0.0f64;
    let mut sigma = 0.0f64;
    for _ in 0..max_iters.max(1) {
        crate::counters::record_power_iter();
        // u = W v  (length m), then v' = Wᵀ u (length n).
        let m_rows = w.rows();
        let mut u = vec![0.0f64; m_rows];
        for (ui, row) in u.iter_mut().zip(w.as_slice().chunks_exact(n)) {
            *ui = row.iter().zip(&v).map(|(&x, &vj)| x as f64 * vj).sum();
        }
        let mut v_next = vec![0.0f64; n];
        for (&ui, row) in u.iter().zip(w.as_slice().chunks_exact(n)) {
            if ui == 0.0 {
                continue;
            }
            for (vn, &x) in v_next.iter_mut().zip(row) {
                *vn += x as f64 * ui;
            }
        }
        let norm = normalize(&mut v_next);
        sigma = norm.sqrt();
        v = v_next;
        if (sigma - sigma_prev).abs() <= tol * sigma.max(1e-30) {
            break;
        }
        sigma_prev = sigma;
    }
    Ok(sigma as f32)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        crate::init::randn_matrix(m, n, 1.0, &mut StdRng::seed_from_u64(seed))
    }

    fn assert_close(a: f32, b: f32, tol: f32, what: &str) {
        assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn svd_diagonal_matrix() {
        let mut w = Matrix::zeros(3, 3);
        w.set(0, 0, 3.0);
        w.set(1, 1, 1.0);
        w.set(2, 2, 2.0);
        let d = Svd::compute(&w).unwrap();
        let s = d.singular_values();
        assert_close(s[0], 3.0, 1e-5, "s0");
        assert_close(s[1], 2.0, 1e-5, "s1");
        assert_close(s[2], 1.0, 1e-5, "s2");
    }

    #[test]
    fn svd_reconstructs_tall() {
        let w = random_matrix(10, 4, 1);
        let d = Svd::compute(&w).unwrap();
        let r = d.reconstruct();
        assert!(w.sub(&r).unwrap().frobenius_norm() < 1e-4 * w.frobenius_norm().max(1.0));
    }

    #[test]
    fn svd_reconstructs_wide() {
        let w = random_matrix(4, 11, 2);
        let d = Svd::compute(&w).unwrap();
        let r = d.reconstruct();
        assert!(w.sub(&r).unwrap().frobenius_norm() < 1e-4 * w.frobenius_norm().max(1.0));
    }

    #[test]
    fn svd_u_columns_orthonormal() {
        let w = random_matrix(8, 5, 3);
        let d = Svd::compute(&w).unwrap();
        let gram = d.u().matmul_tn(d.u()).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(gram.get(i, j), expect, 1e-4, "U gram");
            }
        }
    }

    #[test]
    fn svd_vt_rows_orthonormal() {
        let w = random_matrix(8, 5, 4);
        let d = Svd::compute(&w).unwrap();
        let gram = d.vt().matmul_nt(d.vt()).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(gram.get(i, j), expect, 1e-4, "V gram");
            }
        }
    }

    #[test]
    fn singular_values_sorted_descending() {
        let w = random_matrix(12, 7, 5);
        let d = Svd::compute(&w).unwrap();
        let s = d.singular_values();
        for pair in s.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-6);
        }
    }

    #[test]
    fn svdvals_matches_full_svd() {
        for &(m, n, seed) in &[(9usize, 5usize, 6u64), (5, 9, 7), (6, 6, 8)] {
            let w = random_matrix(m, n, seed);
            let full = Svd::compute(&w).unwrap();
            let vals = svdvals(&w).unwrap();
            assert_eq!(vals.len(), m.min(n));
            for (a, b) in vals.iter().zip(full.singular_values()) {
                assert_close(*a, *b, 1e-3, "svdvals vs svd");
            }
        }
    }

    #[test]
    fn split_sqrt_product_is_truncation() {
        let w = random_matrix(8, 6, 9);
        let d = Svd::compute(&w).unwrap();
        let r = 3;
        let (u, vt) = d.split_sqrt(r).unwrap();
        assert_eq!(u.shape(), (8, r));
        assert_eq!(vt.shape(), (r, 6));
        let prod = u.matmul(&vt).unwrap();
        let trunc = d.reconstruct_rank(r);
        assert!(prod.sub(&trunc).unwrap().frobenius_norm() < 1e-4);
    }

    #[test]
    fn split_sqrt_full_rank_recovers_matrix() {
        let w = random_matrix(6, 4, 10);
        let d = Svd::compute(&w).unwrap();
        let (u, vt) = d.split_sqrt(4).unwrap();
        let prod = u.matmul(&vt).unwrap();
        assert!(w.sub(&prod).unwrap().frobenius_norm() < 1e-4 * w.frobenius_norm());
    }

    #[test]
    fn split_sqrt_rejects_bad_rank() {
        let w = random_matrix(4, 4, 11);
        let d = Svd::compute(&w).unwrap();
        assert!(d.split_sqrt(0).is_err());
        assert!(d.split_sqrt(5).is_err());
    }

    #[test]
    fn truncation_error_is_tail_energy() {
        // ‖W - W_r‖_F² == Σ_{i>r} σ_i² (Eckart–Young).
        let w = random_matrix(10, 6, 12);
        let d = Svd::compute(&w).unwrap();
        let r = 2;
        let err = w.sub(&d.reconstruct_rank(r)).unwrap().frobenius_norm_sq();
        let tail: f64 = d.singular_values()[r..]
            .iter()
            .map(|&s| (s as f64) * (s as f64))
            .sum();
        assert!((err - tail).abs() < 1e-3 * tail.max(1.0), "{err} vs {tail}");
    }

    #[test]
    fn power_iteration_matches_sigma_max() {
        for seed in 0..5u64 {
            let w = random_matrix(12, 8, 20 + seed);
            let sigma = power_iteration(&w, 200, 1e-10).unwrap();
            let exact = svdvals(&w).unwrap()[0];
            assert_close(sigma, exact, 1e-3 * exact, "power iteration");
        }
    }

    #[test]
    fn power_iteration_rank_one() {
        // Rank-one: sigma = |u||v|.
        let u = Matrix::from_fn(5, 1, |i, _| (i + 1) as f32);
        let v = Matrix::from_fn(1, 4, |_, j| (j + 1) as f32);
        let w = u.matmul(&v).unwrap();
        let sigma = power_iteration(&w, 100, 1e-12).unwrap();
        let expect = (1.0f32 + 4.0 + 9.0 + 16.0 + 25.0).sqrt() * (1.0f32 + 4.0 + 9.0 + 16.0).sqrt();
        assert_close(sigma, expect, 1e-2, "rank-one sigma");
    }

    #[test]
    fn symmetric_eigenvalues_known() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = symmetric_eigenvalues(&a).unwrap();
        assert!((e[0] - 3.0).abs() < 1e-9);
        assert!((e[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_eigenvalues_rejects_rectangular() {
        assert!(symmetric_eigenvalues(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn svd_zero_matrix() {
        let w = Matrix::zeros(4, 3);
        let d = Svd::compute(&w).unwrap();
        assert!(d.singular_values().iter().all(|&s| s == 0.0));
        assert_eq!(d.reconstruct(), w);
    }

    #[test]
    fn empty_inputs_rejected() {
        let e = Matrix::zeros(0, 0);
        assert!(Svd::compute(&e).is_err());
        assert!(svdvals(&e).is_err());
        assert!(power_iteration(&e, 10, 1e-6).is_err());
    }
}
