use std::error::Error;
use std::fmt;

/// Error type returned by all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`-style dims.
        lhs: Vec<usize>,
        /// Shape of the right operand.
        rhs: Vec<usize>,
    },
    /// A dimension argument was zero or otherwise invalid.
    InvalidDimension {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Explanation of which dimension was invalid and why.
        detail: String,
    },
    /// An iterative algorithm (SVD sweep, power iteration) failed to
    /// converge within its iteration budget.
    NoConvergence {
        /// The algorithm that did not converge.
        algorithm: &'static str,
        /// Number of iterations/sweeps attempted.
        iterations: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::InvalidDimension { op, detail } => {
                write!(f, "invalid dimension in {op}: {detail}")
            }
            TensorError::NoConvergence {
                algorithm,
                iterations,
            } => {
                write!(
                    f,
                    "{algorithm} did not converge after {iterations} iterations"
                )
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_operation() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn no_convergence_display() {
        let err = TensorError::NoConvergence {
            algorithm: "jacobi-svd",
            iterations: 60,
        };
        assert!(err.to_string().contains("jacobi-svd"));
    }
}
