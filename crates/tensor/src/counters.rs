//! Process-global kernel counters for telemetry.
//!
//! The hot kernels in this crate (`matmul*`, `im2col`, the Jacobi SVD
//! sweeps, power iteration) bump a set of global atomic counters so the
//! telemetry layer can attribute compute to training phases without
//! threading a recorder handle through every inner loop.
//!
//! The counters are gated behind the crate's `telemetry` feature. With the
//! feature **off** (the default), the bump functions are empty `#[inline]`
//! stubs and [`snapshot`] always returns zeros — the kernels pay nothing,
//! and downstream code can call [`snapshot`] unconditionally without any
//! `cfg` of its own. With the feature **on**, bumps are relaxed atomic
//! adds: cheap, thread-safe, and order-insensitive, which is all a
//! monotonic counter needs.

/// A point-in-time copy of the kernel counters.
///
/// Field semantics match `cuttlefish_telemetry::KernelCounters`; this
/// crate keeps its own mirror struct so the dependency between the two
/// crates stays optional in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounterSnapshot {
    /// Dense GEMM calls (`matmul`, `matmul_tn`, `matmul_nt`).
    pub matmul_calls: u64,
    /// Estimated FLOPs across those GEMMs (2·m·n·k per call).
    pub matmul_flops: u64,
    /// `im2col` unroll calls.
    pub im2col_calls: u64,
    /// Elements written by `im2col` unrolls.
    pub im2col_elems: u64,
    /// Jacobi sweeps across the SVD variants.
    pub svd_sweeps: u64,
    /// Power-iteration steps.
    pub power_iters: u64,
}

impl KernelCounterSnapshot {
    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == KernelCounterSnapshot::default()
    }

    /// Counters accumulated since `earlier` (saturating per field, so a
    /// [`reset`] between snapshots yields zeros instead of wrapping).
    pub fn delta_since(&self, earlier: &KernelCounterSnapshot) -> KernelCounterSnapshot {
        KernelCounterSnapshot {
            matmul_calls: self.matmul_calls.saturating_sub(earlier.matmul_calls),
            matmul_flops: self.matmul_flops.saturating_sub(earlier.matmul_flops),
            im2col_calls: self.im2col_calls.saturating_sub(earlier.im2col_calls),
            im2col_elems: self.im2col_elems.saturating_sub(earlier.im2col_elems),
            svd_sweeps: self.svd_sweeps.saturating_sub(earlier.svd_sweeps),
            power_iters: self.power_iters.saturating_sub(earlier.power_iters),
        }
    }
}

#[cfg(feature = "telemetry")]
mod live {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);
    pub(super) static MATMUL_FLOPS: AtomicU64 = AtomicU64::new(0);
    pub(super) static IM2COL_CALLS: AtomicU64 = AtomicU64::new(0);
    pub(super) static IM2COL_ELEMS: AtomicU64 = AtomicU64::new(0);
    pub(super) static SVD_SWEEPS: AtomicU64 = AtomicU64::new(0);
    pub(super) static POWER_ITERS: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn add(counter: &AtomicU64, n: u64) {
        // RELAXED: each counter is an independent monotone tally; readers
        // only ever fold totals, never infer cross-counter ordering, so no
        // happens-before edge is needed and the cheapest ordering is correct.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(super) fn load(counter: &AtomicU64) -> u64 {
        // RELAXED: see `add` — snapshots are advisory telemetry, each load
        // is independently coherent and nothing synchronizes through it.
        counter.load(Ordering::Relaxed)
    }
}

/// Records one GEMM of shape `(m × k) · (k × n)`; FLOPs estimated as
/// 2·m·n·k.
#[inline]
pub fn record_matmul(m: usize, n: usize, k: usize) {
    #[cfg(feature = "telemetry")]
    {
        live::add(&live::MATMUL_CALLS, 1);
        live::add(&live::MATMUL_FLOPS, 2 * m as u64 * n as u64 * k as u64);
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = (m, n, k);
    }
}

/// Records one `im2col` unroll that wrote `elems` output elements.
#[inline]
pub fn record_im2col(elems: usize) {
    #[cfg(feature = "telemetry")]
    {
        live::add(&live::IM2COL_CALLS, 1);
        live::add(&live::IM2COL_ELEMS, elems as u64);
    }
    #[cfg(not(feature = "telemetry"))]
    {
        let _ = elems;
    }
}

/// Records one Jacobi sweep (one-sided SVD or symmetric eigensolve).
#[inline]
pub fn record_svd_sweep() {
    #[cfg(feature = "telemetry")]
    live::add(&live::SVD_SWEEPS, 1);
}

/// Records one power-iteration step.
#[inline]
pub fn record_power_iter() {
    #[cfg(feature = "telemetry")]
    live::add(&live::POWER_ITERS, 1);
}

/// Reads the current counter values. Always callable; returns all zeros
/// when the `telemetry` feature is off.
pub fn snapshot() -> KernelCounterSnapshot {
    #[cfg(feature = "telemetry")]
    {
        KernelCounterSnapshot {
            matmul_calls: live::load(&live::MATMUL_CALLS),
            matmul_flops: live::load(&live::MATMUL_FLOPS),
            im2col_calls: live::load(&live::IM2COL_CALLS),
            im2col_elems: live::load(&live::IM2COL_ELEMS),
            svd_sweeps: live::load(&live::SVD_SWEEPS),
            power_iters: live::load(&live::POWER_ITERS),
        }
    }
    #[cfg(not(feature = "telemetry"))]
    KernelCounterSnapshot::default()
}

/// Resets every counter to zero. Prefer [`KernelCounterSnapshot::delta_since`]
/// over resets when multiple consumers may be watching the counters.
pub fn reset() {
    #[cfg(feature = "telemetry")]
    {
        use std::sync::atomic::Ordering;
        for counter in [
            &live::MATMUL_CALLS,
            &live::MATMUL_FLOPS,
            &live::IM2COL_CALLS,
            &live::IM2COL_ELEMS,
            &live::SVD_SWEEPS,
            &live::POWER_ITERS,
        ] {
            // RELAXED: resets are test/bench bookkeeping between quiesced
            // phases; a racing writer makes any ordering ambiguous anyway.
            counter.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_saturates_across_reset() {
        let high = KernelCounterSnapshot {
            matmul_calls: 10,
            ..Default::default()
        };
        let low = KernelCounterSnapshot::default();
        assert_eq!(low.delta_since(&high).matmul_calls, 0);
        assert_eq!(high.delta_since(&low).matmul_calls, 10);
        assert!(low.is_zero());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn live_counters_accumulate() {
        let before = snapshot();
        record_matmul(2, 3, 4);
        record_im2col(100);
        record_svd_sweep();
        record_power_iter();
        let delta = snapshot().delta_since(&before);
        assert!(delta.matmul_calls >= 1);
        assert!(delta.matmul_flops >= 48);
        assert!(delta.im2col_calls >= 1);
        assert!(delta.im2col_elems >= 100);
        assert!(delta.svd_sweeps >= 1);
        assert!(delta.power_iters >= 1);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_counters_stay_zero() {
        record_matmul(2, 3, 4);
        record_im2col(100);
        record_svd_sweep();
        record_power_iter();
        assert!(snapshot().is_zero());
    }
}
