//! Dense linear-algebra substrate for the Cuttlefish reproduction.
//!
//! The Cuttlefish algorithm ([Wang et al., MLSys 2023]) needs three pieces of
//! numerical machinery that PyTorch/LAPACK provided in the original
//! implementation and that this crate re-implements from scratch:
//!
//! 1. **Dense matrix arithmetic** ([`Matrix`]) — matmul, transposed matmul,
//!    Frobenius norms — used by every neural-network layer in
//!    `cuttlefish-nn`.
//! 2. **Singular value decomposition** ([`svd::Svd`], [`svd::svdvals`]) —
//!    the one-sided Jacobi method, used both to *estimate* stable ranks
//!    (singular values only, the `scipy.linalg.svdvals` path from §4.3 of
//!    the paper) and to *factorize* a partially-trained layer
//!    `W ≈ U Σ^{1/2} · Σ^{1/2} Vᵀ` when Cuttlefish switches from full-rank
//!    to low-rank training.
//! 3. **Convolution lowering** ([`im2col`]) — `im2col`/`col2im` so that a
//!    convolution becomes a matmul over the unrolled `(m·k², n)` matrix,
//!    which is exactly the 2-D view of a conv kernel whose rank Cuttlefish
//!    tracks (§2.1).
//!
//! Everything is `f32` at rest with `f64` accumulation inside the SVD for
//! robustness. All randomness is seeded ([`init`]).
//!
//! # Example
//!
//! ```
//! use cuttlefish_tensor::{Matrix, svd};
//!
//! # fn main() -> Result<(), cuttlefish_tensor::TensorError> {
//! let w = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f32);
//! let decomp = svd::Svd::compute(&w)?;
//! let reconstructed = decomp.reconstruct();
//! assert!(w.sub(&reconstructed)?.frobenius_norm() < 1e-3);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `kernel::x86` / `kernel::neon` modules
// scope-allow `unsafe_code` for their `std::arch` micro-kernels (runtime
// feature detection gates every entry). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
mod tensor4;

pub mod checked;
pub mod counters;
pub mod im2col;
pub mod init;
pub mod kernel;
pub mod svd;

pub use error::TensorError;
pub use matrix::Matrix;
pub use tensor4::Tensor4;

/// Convenient result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;
