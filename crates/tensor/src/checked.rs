//! Numeric sanitizer: first-poison NaN/Inf localization for kernels.
//!
//! With the crate's `checked` feature **on**, every kernel that produces a
//! floating-point buffer ([`Matrix::matmul`](crate::Matrix::matmul) and its
//! transposed variants, the element-wise ops, `axpy`, and
//! [`im2col`](crate::im2col::im2col)) scans its output and records the
//! *first* non-finite value it ever observes, together with the kernel name
//! and whatever context label the caller last installed via [`set_label`]
//! (the `nn` layer stack uses the current layer name). Later poisons are
//! ignored — by the time a NaN has spread through a network every
//! downstream op is poisoned, and only the first producer is diagnostic.
//!
//! With the feature **off** (the default) every function here is an empty
//! `#[inline]` stub and [`first_poison`] always returns `None`, mirroring
//! the zero-cost pattern of [`counters`](crate::counters): callers never
//! need a `cfg` of their own, and the hot loops pay nothing.

/// Description of the first non-finite value observed by a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Poison {
    /// Kernel that produced the value (`"matmul"`, `"im2col"`, ...).
    pub op: &'static str,
    /// Context label installed by the caller when the kernel ran — the
    /// layer name during `nn` forward/backward passes, empty otherwise.
    pub label: String,
    /// Flat index of the first non-finite element in the kernel output.
    pub index: usize,
    /// The offending value (`NaN`, `+inf`, or `-inf`).
    pub value: f32,
}

impl std::fmt::Display for Poison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.label.is_empty() {
            write!(
                f,
                "non-finite value {} at flat index {} in kernel `{}`",
                self.value, self.index, self.op
            )
        } else {
            write!(
                f,
                "non-finite value {} at flat index {} in kernel `{}` (context: {})",
                self.value, self.index, self.op, self.label
            )
        }
    }
}

#[cfg(feature = "checked")]
mod live {
    use super::Poison;
    use std::sync::atomic::AtomicBool;
    use std::sync::Mutex;

    /// Fast-path flag: once a poison is recorded, scans return immediately.
    pub(super) static POISONED: AtomicBool = AtomicBool::new(false);
    pub(super) static POISON: Mutex<Option<Poison>> = Mutex::new(None);
    pub(super) static LABEL: Mutex<String> = Mutex::new(String::new());

    /// Locks a sanitizer mutex, recovering from `PoisonError` (a panicked
    /// holder cannot corrupt an `Option`/`String` swap).
    pub(super) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        match m.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }
}

/// Installs the context label attached to subsequently recorded poisons.
///
/// The `nn` layer containers call this with the active layer name before
/// dispatching each forward/backward step; any other caller may use it to
/// tag a phase (`"svd"`, `"optimizer"`). No-op when `checked` is off.
#[inline]
pub fn set_label(label: &str) {
    #[cfg(feature = "checked")]
    {
        let mut slot = live::lock(&live::LABEL);
        slot.clear();
        slot.push_str(label);
    }
    #[cfg(not(feature = "checked"))]
    {
        let _ = label;
    }
}

/// Scans a kernel output buffer for non-finite values, recording the first
/// one ever seen process-wide. No-op when `checked` is off.
#[inline]
pub fn scan(op: &'static str, data: &[f32]) {
    #[cfg(feature = "checked")]
    {
        use std::sync::atomic::Ordering;
        // RELAXED: POISONED is a monotone fast-path hint; the authoritative
        // poison record lives behind the POISON mutex, whose lock/unlock
        // provides the happens-before edge. A stale `false` here only costs
        // one extra scan before the mutex settles the race.
        if live::POISONED.load(Ordering::Relaxed) {
            return;
        }
        if let Some((index, &value)) = data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            let label = live::lock(&live::LABEL).clone();
            let mut slot = live::lock(&live::POISON);
            if slot.is_none() {
                *slot = Some(Poison {
                    op,
                    label,
                    index,
                    value,
                });
                // RELAXED: set inside the POISON critical section; readers
                // that need the record take the mutex (see load above).
                live::POISONED.store(true, Ordering::Relaxed);
            }
        }
    }
    #[cfg(not(feature = "checked"))]
    {
        let _ = (op, data);
    }
}

/// Returns the first poison recorded since the last [`reset`], if any.
/// Always callable; `None` when the `checked` feature is off.
pub fn first_poison() -> Option<Poison> {
    #[cfg(feature = "checked")]
    {
        live::lock(&live::POISON).clone()
    }
    #[cfg(not(feature = "checked"))]
    None
}

/// Clears the recorded poison and context label. Call at the start of a
/// run so stale state from a previous run cannot be misattributed.
pub fn reset() {
    #[cfg(feature = "checked")]
    {
        use std::sync::atomic::Ordering;
        *live::lock(&live::POISON) = None;
        live::lock(&live::LABEL).clear();
        // RELAXED: cleared after the mutexed record above; the hint flag
        // never carries ordering on its own (see `scan`).
        live::POISONED.store(false, Ordering::Relaxed);
    }
}

/// Whether the sanitizer is compiled in (the `checked` feature is on).
pub fn is_enabled() -> bool {
    cfg!(feature = "checked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "checked")]
    #[test]
    fn records_first_poison_only() {
        reset();
        set_label("layer-a");
        scan("op-clean", &[1.0, 2.0]);
        assert!(first_poison().is_none());
        scan("op-first", &[0.5, f32::NAN, f32::INFINITY]);
        set_label("layer-b");
        scan("op-later", &[f32::INFINITY]);
        let p = first_poison().expect("poison recorded");
        assert_eq!(p.op, "op-first");
        assert_eq!(p.label, "layer-a");
        assert_eq!(p.index, 1);
        assert!(p.value.is_nan());
        reset();
        assert!(first_poison().is_none());
    }

    #[cfg(not(feature = "checked"))]
    #[test]
    fn disabled_sanitizer_reports_nothing() {
        set_label("layer");
        scan("op", &[f32::NAN]);
        assert!(first_poison().is_none());
        assert!(!is_enabled());
        reset();
    }
}
