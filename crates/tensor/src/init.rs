//! Seeded weight initialization.
//!
//! The paper's scaled stable rank stores `ξ = rank(W⁰)/stable_rank(Σ⁰)` at
//! initialization, so the *distribution* of the initial weights matters: we
//! provide the standard Kaiming/Xavier schemes used by the PyTorch models in
//! the original evaluation. All generators take an explicit [`rand::Rng`] so
//! experiments are reproducible from a single seed.

use crate::{Matrix, Tensor4};
use rand::distributions::Distribution;
use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
///
/// Implemented locally (rather than via `rand_distr`) to keep the dependency
/// footprint to the approved list.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Box–Muller; guard the log against u1 == 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Normal distribution with the given standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f32,
    /// Standard deviation of the distribution.
    pub std: f32,
}

impl Distribution<f32> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        self.mean + self.std * standard_normal(rng)
    }
}

/// Matrix with i.i.d. `N(0, std²)` entries.
pub fn randn_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| std * standard_normal(rng))
}

/// Matrix with i.i.d. `U(-a, a)` entries.
pub fn uniform_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, a: f32, rng: &mut R) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// Kaiming-normal (He) initialization for a linear layer of shape
/// `(fan_in, fan_out)`: entries `~ N(0, 2/fan_in)`.
pub fn kaiming_linear<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn_matrix(fan_in, fan_out, std, rng)
}

/// Xavier-uniform (Glorot) initialization for a linear layer of shape
/// `(fan_in, fan_out)`: entries `~ U(-a, a)` with `a = sqrt(6/(fan_in+fan_out))`.
pub fn xavier_linear<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Matrix {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform_matrix(fan_in, fan_out, a, rng)
}

/// Kaiming-normal initialization for a conv kernel `(out, in, k, k)`:
/// entries `~ N(0, 2/(in·k²))` — fan-in mode, matching
/// `torch.nn.init.kaiming_normal_` on `nn.Conv2d`.
pub fn kaiming_conv<R: Rng + ?Sized>(
    out_ch: usize,
    in_ch: usize,
    k: usize,
    rng: &mut R,
) -> Tensor4 {
    let fan_in = (in_ch * k * k).max(1);
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor4::from_fn(out_ch, in_ch, k, k, |_, _, _, _| std * standard_normal(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn kaiming_linear_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = kaiming_linear(200, 100, &mut rng);
        let emp_std = (m.frobenius_norm_sq() / m.len() as f64).sqrt();
        let expected = (2.0f64 / 200.0).sqrt();
        assert!(
            (emp_std - expected).abs() / expected < 0.1,
            "{emp_std} vs {expected}"
        );
    }

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = xavier_linear(50, 70, &mut rng);
        let a = (6.0f32 / 120.0).sqrt();
        assert!(m.max_abs() <= a + 1e-6);
    }

    #[test]
    fn kaiming_conv_shape_and_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming_conv(16, 8, 3, &mut rng);
        assert_eq!(t.shape(), (16, 8, 3, 3));
        let sum_sq: f64 = t.as_slice().iter().map(|&v| (v as f64).powi(2)).sum();
        let emp_std = (sum_sq / t.len() as f64).sqrt();
        let expected = (2.0f64 / (8.0 * 9.0)).sqrt();
        assert!((emp_std - expected).abs() / expected < 0.15);
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = randn_matrix(4, 4, 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn_matrix(4, 4, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
