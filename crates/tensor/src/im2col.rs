//! Convolution lowering: `im2col` / `col2im`.
//!
//! A convolution with kernel `(out=n, in=m, k, k)` over a batch
//! `(B, m, H, W)` is computed as a matmul between the unrolled kernel
//! matrix `(m·k², n)` and the patch matrix produced by [`im2col`], of shape
//! `(B·H_out·W_out, m·k²)`. This is exactly the 2-D view of §2.1 of the
//! Cuttlefish paper, so the matrix whose stable rank we track is the same
//! matrix that does the compute.

use crate::{Matrix, Result, Tensor4, TensorError};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both spatial dims.
    pub stride: usize,
    /// Zero padding in both spatial dims.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial size for an input of `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the kernel does not fit
    /// in the padded input or when `stride == 0` / `kernel == 0`.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.stride == 0 || self.kernel == 0 {
            return Err(TensorError::InvalidDimension {
                op: "ConvGeometry::output_hw",
                detail: format!(
                    "stride {} and kernel {} must be nonzero",
                    self.stride, self.kernel
                ),
            });
        }
        let padded_h = h + 2 * self.padding;
        let padded_w = w + 2 * self.padding;
        if padded_h < self.kernel || padded_w < self.kernel {
            return Err(TensorError::InvalidDimension {
                op: "ConvGeometry::output_hw",
                detail: format!(
                    "kernel {} larger than padded input {padded_h}x{padded_w}",
                    self.kernel
                ),
            });
        }
        Ok((
            (padded_h - self.kernel) / self.stride + 1,
            (padded_w - self.kernel) / self.stride + 1,
        ))
    }
}

/// Unrolls input patches into a `(B·H_out·W_out, C·k²)` matrix.
///
/// Row `(b·H_out + oh)·W_out + ow` holds the receptive field of output pixel
/// `(oh, ow)` of sample `b`, in channel-major `(c, kh, kw)` order — matching
/// the row order of [`Tensor4::unroll_conv_kernel`].
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] when the geometry does not fit
/// the input, or [`TensorError::ShapeMismatch`] when the channel counts
/// disagree.
pub fn im2col(input: &Tensor4, geom: &ConvGeometry) -> Result<Matrix> {
    let mut out = Matrix::zeros(0, 0);
    im2col_into(input, geom, &mut out)?;
    Ok(out)
}

/// Like [`im2col`], but unrolls into a caller-owned workspace matrix,
/// reusing its allocation across calls.
///
/// The workspace is reshaped (and zeroed) to `(B·H_out·W_out, C·k²)`; after
/// the first call at a given input size, subsequent calls allocate nothing.
/// This is the hot-loop variant used by eval-mode convolution forwards,
/// where a serving replica runs the same geometry for every batch.
///
/// # Errors
///
/// Same as [`im2col`].
pub fn im2col_into(input: &Tensor4, geom: &ConvGeometry, out: &mut Matrix) -> Result<()> {
    let (b, c, h, w) = input.shape();
    if c != geom.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: vec![b, c, h, w],
            rhs: vec![geom.in_channels],
        });
    }
    let (oh, ow) = geom.output_hw(h, w)?;
    let k = geom.kernel;
    let cols = c * k * k;
    crate::counters::record_im2col(b * oh * ow * cols);
    out.reset_to(b * oh * ow, cols);
    let src = input.as_slice();
    let (pad, stride) = (geom.padding, geom.stride);
    for bi in 0..b {
        for oy in 0..oh {
            let y0 = oy * stride;
            for ox in 0..ow {
                let x0 = ox * stride;
                // Consecutive kx map to consecutive input columns and
                // consecutive patch columns, so each (channel, ky) pair is
                // one contiguous copy of the in-bounds kx run; the zeroed
                // workspace supplies the padding.
                let kx_lo = pad.saturating_sub(x0);
                let kx_hi = k.min((w + pad).saturating_sub(x0));
                if kx_lo >= kx_hi {
                    continue;
                }
                let run = kx_hi - kx_lo;
                let ix0 = x0 + kx_lo - pad;
                let row = out.row_mut((bi * oh + oy) * ow + ox);
                for ci in 0..c {
                    let plane = &src[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w];
                    for ky in 0..k {
                        let y = y0 + ky;
                        if y < pad || y >= h + pad {
                            continue;
                        }
                        let iy = y - pad;
                        let col0 = (ci * k + ky) * k + kx_lo;
                        row[col0..col0 + run]
                            .copy_from_slice(&plane[iy * w + ix0..iy * w + ix0 + run]);
                    }
                }
            }
        }
    }
    crate::checked::scan("im2col", out.as_slice());
    Ok(())
}

/// Scatters a patch-gradient matrix back to an input-shaped tensor — the
/// adjoint of [`im2col`], used in the convolution backward pass.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` does not have the
/// shape `im2col` would have produced for the given geometry and input size.
pub fn col2im(
    cols: &Matrix,
    geom: &ConvGeometry,
    batch: usize,
    h: usize,
    w: usize,
) -> Result<Tensor4> {
    let (oh, ow) = geom.output_hw(h, w)?;
    let k = geom.kernel;
    let c = geom.in_channels;
    if cols.rows() != batch * oh * ow || cols.cols() != c * k * k {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: vec![cols.rows(), cols.cols()],
            rhs: vec![batch * oh * ow, c * k * k],
        });
    }
    let mut out = Tensor4::zeros(batch, c, h, w);
    let dst = out.as_mut_slice();
    let (pad, stride) = (geom.padding, geom.stride);
    for bi in 0..batch {
        for oy in 0..oh {
            let y0 = oy * stride;
            for ox in 0..ow {
                let x0 = ox * stride;
                // Mirror of the im2col runs: scatter-add each contiguous
                // in-bounds kx run back into the input plane. The loop
                // order (b, oy, ox, c, ky, kx) matches the historical
                // per-element scatter, so accumulation order — and thus
                // every rounded bit — is unchanged.
                let kx_lo = pad.saturating_sub(x0);
                let kx_hi = k.min((w + pad).saturating_sub(x0));
                if kx_lo >= kx_hi {
                    continue;
                }
                let run = kx_hi - kx_lo;
                let ix0 = x0 + kx_lo - pad;
                let row = cols.row((bi * oh + oy) * ow + ox);
                for ci in 0..c {
                    let plane = &mut dst[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w];
                    for ky in 0..k {
                        let y = y0 + ky;
                        if y < pad || y >= h + pad {
                            continue;
                        }
                        let iy = y - pad;
                        let col0 = (ci * k + ky) * k + kx_lo;
                        for (d, &s) in plane[iy * w + ix0..iy * w + ix0 + run]
                            .iter_mut()
                            .zip(&row[col0..col0 + run])
                        {
                            *d += s;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(in_c: usize, out_c: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: in_c,
            out_channels: out_c,
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn output_hw_same_padding() {
        let g = geom(3, 8, 3, 1, 1);
        assert_eq!(g.output_hw(8, 8).unwrap(), (8, 8));
    }

    #[test]
    fn output_hw_stride_two() {
        let g = geom(3, 8, 3, 2, 1);
        assert_eq!(g.output_hw(8, 8).unwrap(), (4, 4));
    }

    #[test]
    fn output_hw_rejects_zero_stride() {
        let g = geom(1, 1, 3, 0, 0);
        assert!(g.output_hw(8, 8).is_err());
    }

    #[test]
    fn output_hw_rejects_oversized_kernel() {
        let g = geom(1, 1, 5, 1, 0);
        assert!(g.output_hw(3, 3).is_err());
    }

    #[test]
    fn im2col_identity_1x1() {
        // 1x1 conv: patch matrix is just the channel values per pixel.
        let input = Tensor4::from_fn(1, 2, 2, 2, |_, c, h, w| (c * 4 + h * 2 + w) as f32);
        let g = geom(2, 4, 1, 1, 0);
        let m = im2col(&input, &g).unwrap();
        assert_eq!(m.shape(), (4, 2));
        // Pixel (0,0): channel0=0, channel1=4.
        assert_eq!(m.row(0), &[0.0, 4.0]);
        // Pixel (1,1): channel0=3, channel1=7.
        assert_eq!(m.row(3), &[3.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zeros() {
        let input = Tensor4::from_fn(1, 1, 2, 2, |_, _, h, w| (h * 2 + w + 1) as f32);
        let g = geom(1, 1, 3, 1, 1);
        let m = im2col(&input, &g).unwrap();
        assert_eq!(m.shape(), (4, 9));
        // Output (0,0): top-left patch; its corner overlaps padding.
        let row = m.row(0);
        assert_eq!(row[0], 0.0); // padded corner
        assert_eq!(row[4], 1.0); // center = input(0,0)
        assert_eq!(row[5], 2.0); // right of center = input(0,1)
    }

    #[test]
    fn conv_via_matmul_matches_direct() {
        // Direct convolution vs im2col+matmul on a small case.
        let input = Tensor4::from_fn(2, 2, 4, 4, |n, c, h, w| {
            ((n + 1) * (c + 2) + h * 3 + w) as f32 * 0.1
        });
        let kernel = Tensor4::from_fn(3, 2, 3, 3, |o, c, h, w| {
            ((o + c) as f32 - (h * 3 + w) as f32 * 0.05) * 0.2
        });
        let g = geom(2, 3, 3, 1, 1);
        let patches = im2col(&input, &g).unwrap();
        let kmat = kernel.unroll_conv_kernel();
        let out = patches.matmul(&kmat).unwrap(); // (B*oh*ow, out_ch)

        // Direct evaluation at a few output positions.
        for (bi, o, oy, ox) in [(0usize, 0usize, 0usize, 0usize), (1, 2, 3, 1), (0, 1, 2, 2)] {
            let mut acc = 0.0f32;
            for ci in 0..2 {
                for ky in 0..3 {
                    for kx in 0..3 {
                        let iy = oy as isize + ky as isize - 1;
                        let ix = ox as isize + kx as isize - 1;
                        if (0..4).contains(&iy) && (0..4).contains(&ix) {
                            acc += input.get(bi, ci, iy as usize, ix as usize)
                                * kernel.get(o, ci, ky, kx);
                        }
                    }
                }
            }
            let row = (bi * 4 + oy) * 4 + ox;
            assert!(
                (out.get(row, o) - acc).abs() < 1e-4,
                "mismatch at b={bi} o={o} y={oy} x={ox}"
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let x = Tensor4::from_fn(1, 2, 4, 4, |_, c, h, w| ((c * 16 + h * 4 + w) as f32).sin());
        let g = geom(2, 1, 3, 2, 1);
        let cols = im2col(&x, &g).unwrap();
        let y = Matrix::from_fn(cols.rows(), cols.cols(), |i, j| ((i * 7 + j) as f32).cos());
        let lhs: f64 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let back = col2im(&y, &g, 1, 4, 4).unwrap();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_rejects_bad_shape() {
        let g = geom(1, 1, 3, 1, 1);
        let bad = Matrix::zeros(5, 9);
        assert!(col2im(&bad, &g, 1, 4, 4).is_err());
    }
}
