//! Property tests for the blocked/SIMD/threaded GEMM kernel subsystem.
//!
//! The determinism contract under test (see `kernel` module docs):
//!
//! * The blocked scalar path is **bit-identical** to the textbook reference
//!   loops at every size — aligned, odd, prime, or tiny — for all three
//!   layouts (NN, TN, NT).
//! * SIMD paths (AVX2+FMA / NEON) may differ from the reference only by the
//!   fused-rounding of FMA, bounded per element by `4 * eps * K * |a|·|b|`.
//! * Thread count never changes the result: stripes are disjoint and each
//!   stripe reuses the single-thread k-order, so outputs are bit-identical
//!   at 1, 2, or 4 threads.
#![recursion_limit = "256"]

use cuttlefish_tensor::kernel::{
    detected_isa, gemm_nn_with, gemm_nt_with, gemm_tn_with, reference_gemm_nn, reference_gemm_nt,
    reference_gemm_tn, Isa,
};
use proptest::prelude::*;

/// Deterministic pseudo-random fill (xorshift64*), independent of the `rand`
/// crate so the same inputs are generated in every build configuration.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to roughly [-1, 1) with a few larger outliers to exercise
        // rounding at mixed magnitudes.
        let unit = (state >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
        out.push(unit * 2.5);
    }
    out
}

/// Per-element FMA drift bound: `4 * eps * sum_k |a_ik * b_kj|`, with a small
/// absolute floor for near-cancelling dot products.
fn fma_bound(abs_dot: f32) -> f32 {
    4.0 * f32::EPSILON * abs_dot + 1e-6
}

fn dims_strategy() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    // Ranges deliberately straddle the MR=6 / NR=16 tile edges so odd, prime,
    // and tiny dimensions all appear alongside exact multiples.
    (1usize..48, 1usize..48, 1usize..80, 0u64..1000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Blocked scalar NN path is bit-identical to the reference loops.
    #[test]
    fn blocked_scalar_nn_is_bit_exact((m, n, k, seed) in dims_strategy()) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0x9e3779b97f4a7c15, k * n);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        reference_gemm_nn(m, n, k, &a, &b, &mut c_ref);
        gemm_nn_with(Isa::Scalar, 1, m, n, k, &a, &b, &mut c_blk);
        prop_assert_eq!(c_ref, c_blk);
    }

    // Blocked scalar TN path (A stored K x M) is bit-identical to the reference.
    #[test]
    fn blocked_scalar_tn_is_bit_exact((m, n, k, seed) in dims_strategy()) {
        let a = fill(seed, k * m);
        let b = fill(seed ^ 0xa076_1d64_78bd_642f, k * n);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        reference_gemm_tn(m, n, k, &a, &b, &mut c_ref);
        gemm_tn_with(Isa::Scalar, 1, m, n, k, &a, &b, &mut c_blk);
        prop_assert_eq!(c_ref, c_blk);
    }

    // Blocked scalar NT path (B stored N x K) is bit-identical to the reference.
    #[test]
    fn blocked_scalar_nt_is_bit_exact((m, n, k, seed) in dims_strategy()) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xe703_7ed1_a0b4_28db, n * k);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        reference_gemm_nt(m, n, k, &a, &b, &mut c_ref);
        gemm_nt_with(Isa::Scalar, 1, m, n, k, &a, &b, &mut c_blk);
        prop_assert_eq!(c_ref, c_blk);
    }

    // The detected SIMD path stays within the documented FMA drift bound of
    // the scalar reference. When no SIMD ISA is available this degenerates to
    // the bit-exact scalar check, which the bound trivially admits.
    #[test]
    fn detected_isa_within_fma_bound((m, n, k, seed) in dims_strategy()) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0x1234_5678_9abc_def0, k * n);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_opt = vec![0.0f32; m * n];
        reference_gemm_nn(m, n, k, &a, &b, &mut c_ref);
        gemm_nn_with(detected_isa(), 1, m, n, k, &a, &b, &mut c_opt);
        for i in 0..m {
            for j in 0..n {
                let mut abs_dot = 0.0f32;
                for p in 0..k {
                    abs_dot += (a[i * k + p] * b[p * n + j]).abs();
                }
                let diff = (c_ref[i * n + j] - c_opt[i * n + j]).abs();
                prop_assert!(
                    diff <= fma_bound(abs_dot),
                    "({}, {}) drifted {} > {}",
                    i, j, diff, fma_bound(abs_dot)
                );
            }
        }
    }

    // Thread count does not change a single bit of the output. Small shapes
    // stay below the parallel FLOP floor (so this is also a no-regression
    // check on the gate); the dedicated large-shape test below forces real
    // striping.
    #[test]
    fn thread_count_is_bit_invariant((m, n, k, seed) in dims_strategy()) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0x0f0f_f0f0_1357_9bdf, k * n);
        let isa = detected_isa();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        let mut c4 = vec![0.0f32; m * n];
        gemm_nn_with(isa, 1, m, n, k, &a, &b, &mut c1);
        gemm_nn_with(isa, 2, m, n, k, &a, &b, &mut c2);
        gemm_nn_with(isa, 4, m, n, k, &a, &b, &mut c4);
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(&c1, &c4);
    }
}

/// Exact-tile-multiple ("aligned") sizes: scalar blocked path must match the
/// reference bit-for-bit, per the aligned-size clause of the contract.
#[test]
fn aligned_sizes_are_bit_exact() {
    for &(m, n, k) in &[(6, 16, 8), (12, 32, 64), (24, 48, 128), (72, 64, 256)] {
        let a = fill(m as u64 * 31 + n as u64, m * k);
        let b = fill(k as u64 * 17 + 7, k * n);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        reference_gemm_nn(m, n, k, &a, &b, &mut c_ref);
        gemm_nn_with(Isa::Scalar, 1, m, n, k, &a, &b, &mut c_blk);
        assert_eq!(c_ref, c_blk, "aligned {}x{}x{} diverged", m, n, k);
    }
}

/// Prime and tiny dimensions hit every edge-tile path in the packing code.
#[test]
fn prime_and_tiny_sizes_are_bit_exact() {
    for &(m, n, k) in &[
        (1, 1, 1),
        (2, 3, 5),
        (7, 13, 31),
        (53, 17, 97),
        (97, 101, 103),
        (1, 47, 61),
        (59, 1, 89),
    ] {
        let a = fill(m as u64 ^ (k as u64) << 8, m * k);
        let b = fill(n as u64 ^ (k as u64) << 4, k * n);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_blk = vec![0.0f32; m * n];
        reference_gemm_nn(m, n, k, &a, &b, &mut c_ref);
        gemm_nn_with(Isa::Scalar, 1, m, n, k, &a, &b, &mut c_blk);
        assert_eq!(c_ref, c_blk, "prime/tiny {}x{}x{} diverged", m, n, k);

        let mut c_tn_ref = vec![0.0f32; m * n];
        let mut c_tn_blk = vec![0.0f32; m * n];
        let a_t = fill(m as u64 + 1000 * k as u64, k * m);
        reference_gemm_tn(m, n, k, &a_t, &b, &mut c_tn_ref);
        gemm_tn_with(Isa::Scalar, 1, m, n, k, &a_t, &b, &mut c_tn_blk);
        assert_eq!(
            c_tn_ref, c_tn_blk,
            "TN prime/tiny {}x{}x{} diverged",
            m, n, k
        );
    }
}

/// A shape large enough to clear the parallel FLOP floor (2*m*n*k >= 2^23), so
/// with `--features parallel` the 2- and 4-thread runs genuinely stripe the
/// output across scoped threads. Must still be bit-identical to 1 thread.
#[test]
fn large_gemm_is_bit_identical_across_threads() {
    let (m, n, k) = (160, 256, 192);
    let a = fill(0xdead_beef, m * k);
    let b = fill(0xcafe_f00d, k * n);
    let isa = detected_isa();
    let mut c1 = vec![0.0f32; m * n];
    gemm_nn_with(isa, 1, m, n, k, &a, &b, &mut c1);
    for threads in [2, 3, 4] {
        let mut ct = vec![0.0f32; m * n];
        gemm_nn_with(isa, threads, m, n, k, &a, &b, &mut ct);
        assert_eq!(c1, ct, "{} threads diverged from single-thread", threads);
    }
    // The scalar blocked path on the same large shape still matches the
    // reference bit-for-bit.
    let mut c_ref = vec![0.0f32; m * n];
    let mut c_blk = vec![0.0f32; m * n];
    reference_gemm_nn(m, n, k, &a, &b, &mut c_ref);
    gemm_nn_with(Isa::Scalar, 4, m, n, k, &a, &b, &mut c_blk);
    assert_eq!(c_ref, c_blk);
}

/// Batch invariance through the `Matrix::matmul` dispatch: a row's product
/// with a fixed weight is bit-identical whether computed alone or inside a
/// larger batch. The dispatch floor keys on the B operand only, and every
/// kernel tier computes each output row with an m-independent rounding
/// sequence, so this must hold for any batch size on any ISA.
#[test]
fn batch_size_never_changes_a_row() {
    use cuttlefish_tensor::Matrix;
    // Weight sizes straddling SMALL_GEMM_FLOOR (32*32 B elements).
    for &(n, k) in &[(8, 24), (40, 48), (96, 300)] {
        let w = Matrix::from_fn(k, n, |i, j| ((i * n + j) % 29) as f32 * 0.07 - 1.0);
        let batch = Matrix::from_fn(13, k, |i, j| ((i * k + j) % 23) as f32 * 0.05 - 0.5);
        let full = batch.matmul(&w).unwrap();
        for i in 0..batch.rows() {
            let single = Matrix::from_fn(1, k, |_, j| batch.get(i, j))
                .matmul(&w)
                .unwrap();
            assert_eq!(
                single.row(0),
                full.row(i),
                "row {i} of {k}x{n} weight changed with batch size"
            );
        }
    }
}

/// With the `checked` feature, a NaN fed through the big-matrix blocked path
/// is still localized to the first poisoned op by the sanitizer.
#[cfg(feature = "checked")]
#[test]
fn checked_localizes_poison_through_blocked_path() {
    use cuttlefish_tensor::{checked, Matrix};
    checked::reset();
    checked::set_label("kernel-props");
    // 64x64x64 clears SMALL_GEMM_FLOOR so the blocked kernel runs.
    let mut a = Matrix::from_fn(64, 64, |i, j| ((i * 64 + j) % 13) as f32 * 0.1 - 0.6);
    let b = Matrix::from_fn(64, 64, |i, j| ((i * 7 + j) % 11) as f32 * 0.1 - 0.5);
    a.set(10, 20, f32::NAN);
    let _ = a.matmul(&b).unwrap();
    let poison = checked::first_poison().expect("sanitizer should have fired");
    assert_eq!(poison.op, "matmul");
    checked::reset();
}
