//! Instrumented atomics.
//!
//! Drop-in shims for the handful of `std::sync::atomic` operations the
//! workspace's concurrent code actually uses. Each operation is a
//! scheduler choice point; the operation itself then executes with
//! `SeqCst`, because under the one-task-at-a-time token scheduler every
//! schedule *is* a sequentially-consistent interleaving — the model
//! explores reorderings of operations, not of hardware memory effects.
//! Outside a model run the yield is a no-op and the shims behave like
//! the plain std types.

use std::sync::atomic::{self, Ordering};

use crate::sched::yield_point;

/// Instrumented `AtomicU64`: every op is a scheduling point.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    v: atomic::AtomicU64,
}

impl AtomicU64 {
    /// Creates the atomic with an initial value.
    pub const fn new(v: u64) -> AtomicU64 {
        AtomicU64 {
            v: atomic::AtomicU64::new(v),
        }
    }

    /// Reads the value (choice point).
    pub fn load(&self) -> u64 {
        yield_point();
        self.v.load(Ordering::SeqCst)
    }

    /// Writes the value (choice point).
    pub fn store(&self, v: u64) {
        yield_point();
        self.v.store(v, Ordering::SeqCst);
    }

    /// Atomic add, returning the previous value (choice point).
    pub fn fetch_add(&self, v: u64) -> u64 {
        yield_point();
        self.v.fetch_add(v, Ordering::SeqCst)
    }

    /// Atomic max, returning the previous value (choice point).
    pub fn fetch_max(&self, v: u64) -> u64 {
        yield_point();
        self.v.fetch_max(v, Ordering::SeqCst)
    }

    /// Atomic min, returning the previous value (choice point).
    pub fn fetch_min(&self, v: u64) -> u64 {
        yield_point();
        self.v.fetch_min(v, Ordering::SeqCst)
    }
}

/// Instrumented `AtomicBool`: every op is a scheduling point.
#[derive(Debug, Default)]
pub struct AtomicBool {
    v: atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates the atomic with an initial value.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            v: atomic::AtomicBool::new(v),
        }
    }

    /// Reads the flag (choice point).
    pub fn load(&self) -> bool {
        yield_point();
        self.v.load(Ordering::SeqCst)
    }

    /// Writes the flag (choice point).
    pub fn store(&self, v: bool) {
        yield_point();
        self.v.store(v, Ordering::SeqCst);
    }
}
