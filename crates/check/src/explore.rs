//! Schedule exploration strategies and violation reporting.
//!
//! A schedule is fully determined by the sequence of choices made at
//! branching choice points, so exploration is a search over choice
//! traces: [`explore_random`] samples them from seeded PRNG streams
//! (each iteration's seed derives from the base seed, so any single
//! failure replays from one printed number), and [`explore_exhaustive`]
//! enumerates them depth-first by re-running with the last incrementable
//! choice bumped — the classic stateless-model-checking backtrack. Small
//! models are provably *complete*; larger ones are explored up to a cap.

use std::collections::HashSet;
use std::sync::Arc;

use crate::sched::{run_once, RunResult, DEFAULT_MAX_STEPS};

/// SplitMix64: tiny, seedable, high-quality 64-bit PRNG — the same
/// finalizer the telemetry trace-id minter uses.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// How the scheduler resolves choice points.
#[derive(Debug, Clone)]
pub enum Chooser {
    /// Sample uniformly from a seeded stream.
    Random(SplitMix64),
    /// Follow a recorded prefix, then always pick option 0 — used both
    /// for exhaustive enumeration and for replaying a recorded trace.
    Guided {
        /// Choices to follow, in order.
        prefix: Vec<u32>,
        /// Position of the next choice to consume.
        pos: usize,
    },
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The assertion/deadlock/livelock message.
    pub message: String,
    /// The iteration seed, when found by random exploration — replay
    /// with [`replay`] or `cuttlefish-check --replay <suite> <seed>`.
    pub seed: Option<u64>,
    /// The exact choice trace of the failing schedule (always present;
    /// replayable via [`Chooser::Guided`]).
    pub trace: Vec<u32>,
}

/// Outcome of exploring one model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Suite name, for printing.
    pub name: String,
    /// Schedules executed.
    pub executions: usize,
    /// Distinct choice traces observed (trace-hash cardinality).
    pub distinct: usize,
    /// True when exhaustive exploration enumerated the entire space.
    pub complete: bool,
    /// The first violation found, if any; exploration stops on it.
    pub violation: Option<Violation>,
}

impl Report {
    /// Panics with a replay-ready message if the exploration found a
    /// violation — the convenience form for unit tests.
    pub fn assert_clean(&self) {
        let msg = self
            .violation
            .as_ref()
            .map(|v| {
                let seed = v
                    .seed
                    .map(|s| format!("seed {s:#x}"))
                    .unwrap_or_else(|| "exhaustive".to_string());
                format!(
                    "model `{}` violated: {} [replay: {seed}, trace {:?}]",
                    self.name, v.message, v.trace
                )
            })
            .unwrap_or_default();
        assert!(self.violation.is_none(), "{msg}");
    }
}

fn hash_trace(trace: &[u32]) -> u64 {
    // FNV-1a over the trace bytes: cheap and collision-resistant enough
    // for distinct-schedule counting.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in trace {
        for b in c.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Derives the per-iteration seed from the base seed, so a violation at
/// iteration `i` replays from a single printed value.
pub fn derive_seed(base: u64, i: usize) -> u64 {
    let mut rng = SplitMix64::new(base ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    rng.next_u64()
}

/// Runs `iters` randomized schedules of `body`, stopping at the first
/// violation.
pub fn explore_random(
    name: &str,
    iters: usize,
    base_seed: u64,
    body: Arc<dyn Fn() + Send + Sync>,
) -> Report {
    let mut distinct = HashSet::new();
    for i in 0..iters {
        let seed = derive_seed(base_seed, i);
        let r = run_once(
            Chooser::Random(SplitMix64::new(seed)),
            DEFAULT_MAX_STEPS,
            Arc::clone(&body),
        );
        distinct.insert(hash_trace(&r.trace));
        if let Some(message) = r.failure {
            return Report {
                name: name.to_string(),
                executions: i + 1,
                distinct: distinct.len(),
                complete: false,
                violation: Some(Violation {
                    message,
                    seed: Some(seed),
                    trace: r.trace,
                }),
            };
        }
    }
    Report {
        name: name.to_string(),
        executions: iters,
        distinct: distinct.len(),
        complete: false,
        violation: None,
    }
}

/// Re-executes the single schedule that `seed` produces. Pass exactly
/// the seed a [`Violation`] reported — it is already the derived
/// per-iteration seed, not the exploration's base seed.
pub fn replay(seed: u64, body: Arc<dyn Fn() + Send + Sync>) -> RunResult {
    run_once(
        Chooser::Random(SplitMix64::new(seed)),
        DEFAULT_MAX_STEPS,
        body,
    )
}

/// Depth-first exhaustive enumeration of schedules, up to `cap`
/// executions. After each run, the deepest choice point with an untried
/// option is bumped and everything after it is reset — when no such
/// point remains the space is exhausted and the report is `complete`.
pub fn explore_exhaustive(name: &str, cap: usize, body: Arc<dyn Fn() + Send + Sync>) -> Report {
    let mut prefix: Vec<u32> = Vec::new();
    let mut executions = 0usize;
    let mut distinct = HashSet::new();
    loop {
        let r = run_once(
            Chooser::Guided {
                prefix: prefix.clone(),
                pos: 0,
            },
            DEFAULT_MAX_STEPS,
            Arc::clone(&body),
        );
        executions += 1;
        distinct.insert(hash_trace(&r.trace));
        if let Some(message) = r.failure {
            return Report {
                name: name.to_string(),
                executions,
                distinct: distinct.len(),
                complete: false,
                violation: Some(Violation {
                    message,
                    seed: None,
                    trace: r.trace,
                }),
            };
        }
        let mut bump = None;
        for i in (0..r.trace.len()).rev() {
            if r.trace[i] + 1 < r.widths[i] {
                bump = Some(i);
                break;
            }
        }
        match bump {
            None => {
                return Report {
                    name: name.to_string(),
                    executions,
                    distinct: distinct.len(),
                    complete: true,
                    violation: None,
                }
            }
            Some(i) => {
                prefix = r.trace[..i].to_vec();
                prefix.push(r.trace[i] + 1);
            }
        }
        if executions >= cap {
            return Report {
                name: name.to_string(),
                executions,
                distinct: distinct.len(),
                complete: false,
                violation: None,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::spawn;
    use crate::sync::AtomicU64;

    /// Two tasks, one visible op each (plus the spawn yield): the
    /// schedule space is tiny and exhaustive search must cover it.
    #[test]
    fn exhaustive_enumerates_a_tiny_space_completely() {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = spawn(move || {
                a2.fetch_add(1);
            });
            a.fetch_add(2);
            h.join();
            assert_eq!(a.load(), 3);
        });
        let rep = explore_exhaustive("tiny", 10_000, body);
        rep.assert_clean();
        assert!(rep.complete, "space should be fully enumerable");
        assert!(
            rep.distinct >= 2,
            "expected both orders, got {} distinct",
            rep.distinct
        );
        assert_eq!(rep.distinct, rep.executions);
    }

    /// An order-dependent bug: the exhaustive explorer must find the
    /// interleaving where the reader runs between the two writes.
    #[test]
    fn exhaustive_finds_a_planted_ordering_bug() {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let lo = Arc::new(AtomicU64::new(0));
            let hi = Arc::new(AtomicU64::new(0));
            let (lo2, hi2) = (Arc::clone(&lo), Arc::clone(&hi));
            let h = spawn(move || {
                // Writes the halves in the torn order: hi first.
                hi2.store(1);
                lo2.store(1);
            });
            let (l, h_) = (lo.load(), hi.load());
            // Invariant (violated by the torn order): hi implies lo.
            assert!(h_ <= l, "torn read: hi={h_} lo={l}");
            h.join();
        });
        let rep = explore_exhaustive("torn-halves", 10_000, body);
        let v = rep.violation;
        assert!(v.is_some(), "explorer missed the planted torn read");
        let trace = v.map(|v| v.trace).unwrap_or_default();
        // The violating trace must itself replay to the same failure.
        let r = run_once(
            Chooser::Guided {
                prefix: trace,
                pos: 0,
            },
            DEFAULT_MAX_STEPS,
            body_again(),
        );
        let msg = r.failure.unwrap_or_default();
        assert!(msg.contains("torn read"), "replay diverged: {msg}");
    }

    fn body_again() -> Arc<dyn Fn() + Send + Sync> {
        Arc::new(|| {
            let lo = Arc::new(AtomicU64::new(0));
            let hi = Arc::new(AtomicU64::new(0));
            let (lo2, hi2) = (Arc::clone(&lo), Arc::clone(&hi));
            let h = spawn(move || {
                hi2.store(1);
                lo2.store(1);
            });
            let (l, h_) = (lo.load(), hi.load());
            assert!(h_ <= l, "torn read: hi={h_} lo={l}");
            h.join();
        })
    }

    #[test]
    fn random_exploration_also_finds_it_and_replays_by_seed() {
        let rep = explore_random("torn-halves-rand", 500, 0xDECAF, body_again());
        let v = rep.violation;
        assert!(v.is_some(), "random explorer missed the torn read");
        let seed = v.and_then(|v| v.seed);
        assert!(seed.is_some());
        let r = replay(seed.unwrap_or(0), body_again());
        let msg = r.failure.unwrap_or_default();
        assert!(msg.contains("torn read"), "seed replay diverged: {msg}");
    }
}
