//! Model 3: parallel GEMM row-striping.
//!
//! The parallel kernel splits the `m` output rows into MR-aligned
//! stripes via [`stripe_rows`] and hands each stripe's disjoint slice to
//! a scoped thread. The model runs one task per stripe, each marking
//! the rows it owns in a shared cell array, with a concurrent auditor
//! sampling the cells. Checked invariants:
//!
//! - **disjointness**: no cell ever exceeds 1 (two stripes never touch
//!   the same row, under any schedule, including mid-write);
//! - **completion**: after all stripe tasks join, every row was written
//!   exactly once — the plan covers `0..m` with no gaps;
//! - **no deadlock**: join always completes (scheduler-enforced).

use std::sync::Arc;

use cuttlefish_tensor::kernel::stripe_rows;

use crate::sched::spawn;
use crate::sync::AtomicU64;

/// Runs the striping model for an `m`-row output on `nthreads` workers.
pub fn stripe_model(m: usize, nthreads: usize) {
    let plan = stripe_rows(m, nthreads);
    assert!(
        plan.len() <= nthreads.max(1),
        "plan spawned more stripes than workers: {} > {}",
        plan.len(),
        nthreads
    );
    let cells: Arc<Vec<AtomicU64>> = Arc::new((0..m).map(|_| AtomicU64::new(0)).collect());
    let mut handles = Vec::new();
    for (i0, rows) in plan {
        let cells2 = Arc::clone(&cells);
        handles.push(spawn(move || {
            for r in i0..i0 + rows {
                let prev = cells2[r].fetch_add(1);
                assert_eq!(prev, 0, "row {r} written by two stripes");
            }
        }));
    }
    let auditor = {
        let cells2 = Arc::clone(&cells);
        spawn(move || {
            for _ in 0..2 {
                for (r, c) in cells2.iter().enumerate() {
                    let n = c.load();
                    assert!(n <= 1, "row {r} mid-run count {n} > 1");
                }
            }
        })
    };
    for h in handles {
        h.join();
    }
    auditor.join();
    for (r, c) in cells.iter().enumerate() {
        assert_eq!(c.load(), 1, "row {r} not written exactly once");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_exhaustive, explore_random};
    use std::sync::Arc;

    #[test]
    fn ragged_stripe_plan_clean_under_random_schedules() {
        explore_random("stripe-13x3", 300, 0x57, Arc::new(|| stripe_model(13, 3))).assert_clean();
    }

    #[test]
    fn tiny_stripe_plan_clean_under_bounded_exhaustive() {
        explore_exhaustive("stripe-7x2", 400, Arc::new(|| stripe_model(7, 2))).assert_clean();
    }

    #[test]
    fn degenerate_shapes_are_clean() {
        explore_random("stripe-0x4", 50, 0x58, Arc::new(|| stripe_model(0, 4))).assert_clean();
        explore_random("stripe-5x1", 50, 0x59, Arc::new(|| stripe_model(5, 1))).assert_clean();
    }
}
