//! Model 2: the dist coordinator's lockstep round.
//!
//! Ports the coordinator/worker protocol skeleton onto the instrumented
//! channels: a coordinator task drives worker tasks through
//! Step→Grads→reduce→Apply rounds, with the factorization-switch
//! broadcast, straggler buffering, crash removal, and digest-verified
//! elastic join of the production coordinator. Fault schedules come
//! from the *production* [`FaultPlan`] (validated by the production
//! validator) and apply-or-drop decisions from the production
//! [`contribution_outcome`], so the explorer exercises exactly the
//! policy the live coordinator runs. Worker state is a 64-bit digest
//! mixed from every applied update — cheap enough to model-check, strong
//! enough that any divergence in what was applied, or in which order,
//! changes it.
//!
//! Checked invariants, on every schedule:
//!
//! - **no deadlock / no lost reply**: the run always completes, the
//!   gradient buffer is empty at the end, the reply channel is drained,
//!   and every Step produced exactly one settled frame (conservation);
//! - **layout purity**: a reduction never folds a pre-switch (dense)
//!   frame after the switch — [`contribution_outcome`]'s drop rule is
//!   *sufficient* under adversarial scheduling, which is checked by
//!   asserting the layout tag of every folded frame;
//! - **digest agreement**: worker 0's digest equals the coordinator's
//!   mirror at every sync point, and every live worker's final digest
//!   (stragglers resynced mid-run, joiners synced at entry) equals the
//!   mirror at the end.

use std::collections::{BTreeMap, BTreeSet};

use cuttlefish_dist::{contribution_outcome, ContributionOutcome, FaultPlan};

use crate::channel::{channel, Receiver, Sender};
use crate::sched::{spawn, JoinHandle};

/// Salt mixed into every digest at the factorization switch, modeling
/// the SVD re-initialization changing parameter state on all replicas.
const SWITCH_SALT: u64 = 0x5EED_0F0F_CAFE_D00D;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Digest transition: order-sensitive mix, so applying updates in a
/// different order (or missing one) yields a different digest.
fn mix(state: u64, update: u64) -> u64 {
    splitmix64(state ^ update.rotate_left(17))
}

/// The gradient a worker computes for `step`; tagged with the layout it
/// was computed against (false = dense, true = factorized).
fn grad_of(worker: usize, step: usize, switched: bool) -> u64 {
    splitmix64(((worker as u64) << 32) ^ (step as u64 + 1) ^ ((switched as u64) << 63))
}

enum Cmd {
    /// Compute a gradient for this round.
    Step { round: usize },
    /// Fold the round's reduced update into local state.
    Apply { update: u64 },
    /// Switch to the factorized layout (rank-plan broadcast).
    Switch,
    /// Report current state digest.
    Capture,
    /// Overwrite local state/layout from the anchor (straggler resync,
    /// elastic join catch-up).
    Sync { state: u64, switched: bool },
    /// Exit the worker loop.
    Stop,
}

enum Rep {
    Grads {
        worker: usize,
        step: usize,
        layout_switched: bool,
        grad: u64,
    },
    State {
        worker: usize,
        state: u64,
    },
    Synced {
        worker: usize,
        state: u64,
    },
    Stopped {
        worker: usize,
    },
}

fn worker_task(id: usize, rx: Receiver<Cmd>, tx: Sender<Rep>) {
    let mut state = 0u64;
    let mut switched = false;
    loop {
        match rx.recv() {
            Cmd::Step { round } => tx.send(Rep::Grads {
                worker: id,
                step: round,
                layout_switched: switched,
                grad: grad_of(id, round, switched),
            }),
            Cmd::Apply { update } => state = mix(state, update),
            Cmd::Switch => {
                switched = true;
                state = mix(state, SWITCH_SALT);
            }
            Cmd::Capture => tx.send(Rep::State { worker: id, state }),
            Cmd::Sync {
                state: s,
                switched: sw,
            } => {
                state = s;
                switched = sw;
                tx.send(Rep::Synced { worker: id, state });
            }
            Cmd::Stop => {
                tx.send(Rep::Stopped { worker: id });
                return;
            }
        }
    }
}

/// One lockstep run's shape: fleet size, length, switch round,
/// staleness bound, and the injected fault schedule.
pub struct Scenario {
    /// Initial fleet size.
    pub workers: usize,
    /// Lockstep rounds.
    pub rounds: usize,
    /// Round at which the rank-plan broadcast flips the layout.
    pub switch_round: Option<usize>,
    /// Max rounds a late gradient may lag and still be applied.
    pub staleness_bound: usize,
    /// Injected stragglers/crashes/joins.
    pub plan: FaultPlan,
}

struct Fleet {
    cmd: BTreeMap<usize, Sender<Cmd>>,
    handles: Vec<JoinHandle>,
    rep_tx: Sender<Rep>,
    rep_rx: Receiver<Rep>,
}

impl Fleet {
    fn spawn_worker(&mut self, id: usize) {
        let (tx, rx) = channel();
        let rep = self.rep_tx.clone();
        self.handles.push(spawn(move || worker_task(id, rx, rep)));
        self.cmd.insert(id, tx);
    }

    fn send(&self, id: usize, cmd: Cmd) {
        let Some(tx) = self.cmd.get(&id) else {
            unreachable!("command to unknown worker {id}")
        };
        tx.send(cmd);
    }
}

/// A buffered gradient frame.
#[derive(Clone, Copy)]
struct Frame {
    layout_switched: bool,
    grad: u64,
}

/// Receives replies until `pred` matches, buffering stray gradient
/// frames (they may arrive from busy stragglers at any point); any
/// other unexpected reply is a protocol violation.
fn gather<T>(
    rx: &Receiver<Rep>,
    buffer: &mut BTreeMap<(usize, usize), Frame>,
    mut pred: impl FnMut(&Rep) -> Option<T>,
) -> T {
    loop {
        let rep = rx.recv();
        if let Some(v) = pred(&rep) {
            return v;
        }
        match rep {
            Rep::Grads {
                worker,
                step,
                layout_switched,
                grad,
            } => {
                let prev = buffer.insert(
                    (worker, step),
                    Frame {
                        layout_switched,
                        grad,
                    },
                );
                assert!(
                    prev.is_none(),
                    "duplicate gradient frame from worker {worker} step {step}"
                );
            }
            Rep::State { worker, .. } => {
                unreachable!("unsolicited State from worker {worker}")
            }
            Rep::Synced { worker, .. } => {
                unreachable!("unsolicited Synced from worker {worker}")
            }
            Rep::Stopped { worker } => {
                unreachable!("unsolicited Stopped from worker {worker}")
            }
        }
    }
}

/// Receives exactly one reply, which must be a gradient frame, and
/// buffers it — the coordinator's gather loop while frames are missing.
fn absorb_frame(rx: &Receiver<Rep>, buffer: &mut BTreeMap<(usize, usize), Frame>) {
    match rx.recv() {
        Rep::Grads {
            worker,
            step,
            layout_switched,
            grad,
        } => {
            let prev = buffer.insert(
                (worker, step),
                Frame {
                    layout_switched,
                    grad,
                },
            );
            assert!(
                prev.is_none(),
                "duplicate gradient frame from worker {worker} step {step}"
            );
        }
        _ => unreachable!("non-gradient reply while gathering frames"),
    }
}

/// Captures the anchor's digest and checks it against the coordinator's
/// mirror — the digest-agreement invariant at every sync point.
fn capture_anchor(fleet: &Fleet, buffer: &mut BTreeMap<(usize, usize), Frame>, mirror: u64) -> u64 {
    fleet.send(0, Cmd::Capture);
    let s = gather(&fleet.rep_rx, buffer, |rep| match rep {
        Rep::State { worker: 0, state } => Some(*state),
        _ => None,
    });
    assert_eq!(s, mirror, "anchor digest diverged from coordinator mirror");
    s
}

/// Syncs `id` to the anchor state and verifies the digest echo.
fn sync_worker(
    fleet: &Fleet,
    buffer: &mut BTreeMap<(usize, usize), Frame>,
    id: usize,
    state: u64,
    switched: bool,
) {
    fleet.send(id, Cmd::Sync { state, switched });
    let echoed = gather(&fleet.rep_rx, buffer, |rep| match rep {
        Rep::Synced { worker, state: s } if *worker == id => Some(*s),
        _ => None,
    });
    assert_eq!(echoed, state, "worker {id} synced to a diverged digest");
}

/// Runs one lockstep scenario to completion, asserting the protocol
/// invariants along the way. Panics (→ violation) on any breach.
pub fn lockstep_model(sc: &Scenario) {
    assert!(
        sc.plan.validate(sc.workers, sc.rounds).is_ok(),
        "scenario fault plan must validate"
    );
    let (rep_tx, rep_rx) = channel();
    let mut fleet = Fleet {
        cmd: BTreeMap::new(),
        handles: Vec::new(),
        rep_tx,
        rep_rx,
    };
    for id in 0..sc.workers {
        fleet.spawn_worker(id);
    }
    let mut live: BTreeSet<usize> = (0..sc.workers).collect();
    // worker -> (due round, origin round) for in-flight stragglers.
    let mut busy: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    let mut buffer: BTreeMap<(usize, usize), Frame> = BTreeMap::new();
    let mut mirror = 0u64;
    let mut mirror_switched = false;
    let mut steps_sent = 0usize;
    let mut frames_settled = 0usize;

    for round in 0..sc.rounds {
        // Crashes at the start of the round: stop and remove. The plan
        // validator guarantees a crashing worker is not mid-straggle.
        let crashing: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&w| sc.plan.crash_at(w, round))
            .collect();
        for w in crashing {
            fleet.send(w, Cmd::Stop);
            gather(&fleet.rep_rx, &mut buffer, |rep| match rep {
                Rep::Stopped { worker } if *worker == w => Some(()),
                _ => None,
            });
            live.remove(&w);
        }
        // Elastic joins: spawn, catch up to the current layout and the
        // anchor's exact state, digest-verified.
        for j in sc.plan.joins_at(round) {
            fleet.spawn_worker(j.worker);
            let anchor = capture_anchor(&fleet, &mut buffer, mirror);
            sync_worker(&fleet, &mut buffer, j.worker, anchor, mirror_switched);
            live.insert(j.worker);
        }
        // Rank-plan broadcast: per-worker FIFO guarantees a worker sees
        // Switch before this round's Step, so its frame is post-switch.
        // Busy stragglers get caught up by their return resync instead.
        if sc.switch_round == Some(round) {
            for &w in &live {
                if !busy.contains_key(&w) {
                    fleet.send(w, Cmd::Switch);
                }
            }
            mirror = mix(mirror, SWITCH_SALT);
            mirror_switched = true;
        }
        // Step the available fleet; a worker starting a straggle episode
        // still computes, but its frame settles `delay_steps` rounds late.
        let mut on_time: Vec<usize> = Vec::new();
        for &w in &live {
            if busy.contains_key(&w) {
                continue;
            }
            fleet.send(w, Cmd::Step { round });
            steps_sent += 1;
            if let Some(s) = sc.plan.straggler_at(w, round) {
                busy.insert(w, (round + s.delay_steps, round));
            } else {
                on_time.push(w);
            }
        }
        // This round's reduction folds on-time frames plus any straggler
        // frames that are due, in worker-id order (deterministic f32-sum
        // order in the real coordinator; deterministic mix order here).
        let mut needed: BTreeMap<usize, usize> = on_time.iter().map(|&w| (w, round)).collect();
        let returning: Vec<usize> = busy
            .iter()
            .filter(|&(_, &(due, _))| due == round)
            .map(|(&w, _)| w)
            .collect();
        for &w in &returning {
            let Some(&(_, origin)) = busy.get(&w) else {
                unreachable!()
            };
            needed.insert(w, origin);
        }
        while !needed
            .iter()
            .all(|(&w, &step)| buffer.contains_key(&(w, step)))
        {
            absorb_frame(&fleet.rep_rx, &mut buffer);
        }
        let mut update = 0u64;
        let mut applied = 0usize;
        for (&w, &origin) in &needed {
            let Some(frame) = buffer.remove(&(w, origin)) else {
                unreachable!()
            };
            frames_settled += 1;
            // The production coordinator's `switch_round` is `None` until
            // the switch actually fires; before that, dense frames fold
            // into the (still dense) reduction normally.
            let switch = if mirror_switched {
                sc.switch_round
            } else {
                None
            };
            match contribution_outcome(round, origin, sc.staleness_bound, switch) {
                ContributionOutcome::Applied { .. } => {
                    assert_eq!(
                        frame.layout_switched, mirror_switched,
                        "worker {w} frame from round {origin} folded across the layout switch"
                    );
                    update = mix(update, frame.grad);
                    applied += 1;
                }
                ContributionOutcome::Dropped { .. } => {}
            }
        }
        assert!(
            applied >= 1,
            "round {round} reduced zero contributions (anchor must always land)"
        );
        for &w in &on_time {
            fleet.send(w, Cmd::Apply { update });
        }
        mirror = mix(mirror, update);
        // Returning stragglers missed the applies while busy: resync
        // them from the anchor, exactly like the production catch-up.
        for w in returning {
            busy.remove(&w);
            let anchor = capture_anchor(&fleet, &mut buffer, mirror);
            sync_worker(&fleet, &mut buffer, w, anchor, mirror_switched);
        }
    }

    // Drain: every live worker's digest must equal the mirror, then all
    // workers stop and every bookkeeping structure must be empty.
    assert!(busy.is_empty(), "straggler never returned");
    for &w in &live {
        fleet.send(w, Cmd::Capture);
        let s = gather(&fleet.rep_rx, &mut buffer, |rep| match rep {
            Rep::State { worker, state } if *worker == w => Some(*state),
            _ => None,
        });
        assert_eq!(s, mirror, "worker {w} final digest diverged");
    }
    for &w in &live {
        fleet.send(w, Cmd::Stop);
        gather(&fleet.rep_rx, &mut buffer, |rep| match rep {
            Rep::Stopped { worker } if *worker == w => Some(()),
            _ => None,
        });
    }
    assert!(
        buffer.is_empty(),
        "lost replies: {} undrained gradient frames",
        buffer.len()
    );
    assert!(fleet.rep_rx.is_empty(), "reply channel not drained");
    assert_eq!(
        steps_sent, frames_settled,
        "frame conservation: {steps_sent} steps sent, {frames_settled} frames settled"
    );
    for h in fleet.handles {
        h.join();
    }
}

/// Scenario A: three workers, a mid-run factorization switch, no faults
/// — the happy path under adversarial scheduling.
pub fn scenario_switch() -> Scenario {
    Scenario {
        workers: 3,
        rounds: 4,
        switch_round: Some(2),
        staleness_bound: 2,
        plan: FaultPlan::none(),
    }
}

/// Scenario B: a straggler whose delayed frame crosses the switch round
/// — its dense frame arrives after the layout flip and must be dropped
/// by the production policy, never folded.
pub fn scenario_straggler_crossing_switch() -> Scenario {
    Scenario {
        workers: 3,
        rounds: 5,
        switch_round: Some(2),
        staleness_bound: 3,
        plan: FaultPlan {
            stragglers: vec![cuttlefish_dist::StragglerEvent {
                worker: 1,
                step: 1,
                delay_steps: 2,
                delay_ms: 0,
            }],
            ..FaultPlan::none()
        },
    }
}

/// Scenario C: a crash and an elastic join in the same run — membership
/// churn with digest-verified catch-up.
pub fn scenario_churn() -> Scenario {
    Scenario {
        workers: 3,
        rounds: 5,
        switch_round: None,
        staleness_bound: 1,
        plan: FaultPlan {
            crashes: vec![cuttlefish_dist::CrashEvent { worker: 2, step: 1 }],
            joins: vec![cuttlefish_dist::JoinEvent { worker: 3, step: 3 }],
            ..FaultPlan::none()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_exhaustive, explore_random};
    use std::sync::Arc;

    #[test]
    fn switch_scenario_clean_under_random_schedules() {
        explore_random(
            "lockstep-switch",
            200,
            0xD1,
            Arc::new(|| lockstep_model(&scenario_switch())),
        )
        .assert_clean();
    }

    #[test]
    fn straggler_crossing_switch_clean_under_random_schedules() {
        explore_random(
            "lockstep-straggler",
            200,
            0xD2,
            Arc::new(|| lockstep_model(&scenario_straggler_crossing_switch())),
        )
        .assert_clean();
    }

    #[test]
    fn churn_scenario_clean_under_random_schedules() {
        explore_random(
            "lockstep-churn",
            200,
            0xD3,
            Arc::new(|| lockstep_model(&scenario_churn())),
        )
        .assert_clean();
    }

    #[test]
    fn minimal_fleet_clean_under_bounded_exhaustive() {
        explore_exhaustive(
            "lockstep-ex",
            300,
            Arc::new(|| {
                lockstep_model(&Scenario {
                    workers: 2,
                    rounds: 2,
                    switch_round: Some(1),
                    staleness_bound: 1,
                    plan: FaultPlan::none(),
                })
            }),
        )
        .assert_clean();
    }
}
