//! Model-checked ports of the workspace's concurrent protocols.
//!
//! Each model re-implements a protocol's *coordination skeleton* on the
//! instrumented shims while importing the production crate's actual
//! decision logic (bucket math, apply-or-drop policy, stripe plan), so
//! a schedule that breaks the model breaks the same invariant the real
//! code relies on.

pub mod lockstep;
pub mod metrics;
pub mod rollout;
pub mod stripe;
