//! Model 1: the sharded telemetry metrics plane.
//!
//! Mirrors `cuttlefish_telemetry::metrics` on the instrumented atomics:
//! a sharded counter (writers land on per-task shards, readers sweep)
//! and a histogram whose bucket math, snapshot assembly, and percentile
//! estimation are the *production* functions
//! ([`bucket_index`], [`HistogramSnapshot::percentile`]) — only the
//! atomic cells are shims. Checked invariants:
//!
//! - counter totals are monotone across concurrent sweeps, never exceed
//!   the true total, and both merge orders agree once quiesced;
//! - every histogram snapshot is *coherent*: `count == Σ buckets`, and
//!   when `count > 0` the bounds are real (`min != u64::MAX`,
//!   `min <= max`) and `min <= p50 <= max`;
//! - [`histogram_torn_model`] plants the pre-fix recording order
//!   (bucket increment before the bounds) and must be *caught* — it is
//!   the explorer's canary, wired to `--check-demo` in the binary.

use std::sync::Arc;

use cuttlefish_telemetry::metrics::bucket_index;
use cuttlefish_telemetry::HistogramSnapshot;

use crate::sched::spawn;
use crate::sync::AtomicU64;

const SHARDS: usize = 4;

/// Sharded counter: adds go to the caller's shard, totals sweep all
/// shards — the same layout as the production `Counter`.
struct ShardedCounter {
    shards: Vec<AtomicU64>,
}

impl ShardedCounter {
    fn new() -> ShardedCounter {
        ShardedCounter {
            shards: (0..SHARDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn add(&self, shard: usize, n: u64) {
        self.shards[shard % SHARDS].fetch_add(n);
    }

    fn total_forward(&self) -> u64 {
        self.shards.iter().map(|s| s.load()).sum()
    }

    fn total_reverse(&self) -> u64 {
        self.shards.iter().rev().map(|s| s.load()).sum()
    }
}

/// Counter model: two writers add 1+2+3 each to distinct shards while
/// the root task sweeps totals twice, then everyone joins and the final
/// totals must be exact in both merge orders.
pub fn counter_model() {
    let c = Arc::new(ShardedCounter::new());
    let mut handles = Vec::new();
    for w in 0..2usize {
        let c2 = Arc::clone(&c);
        handles.push(spawn(move || {
            for i in 1..=3u64 {
                c2.add(w, i);
            }
        }));
    }
    let t1 = c.total_forward();
    let t2 = c.total_forward();
    assert!(t2 >= t1, "counter total went backwards: {t1} -> {t2}");
    assert!(t2 <= 12, "counter total overshot mid-run: {t2}");
    for h in handles {
        h.join();
    }
    assert_eq!(c.total_forward(), 12, "quiesced forward total");
    assert_eq!(c.total_reverse(), 12, "merge order must be immaterial");
}

/// Histogram mirror on the shims. `NB` covers the model's value range
/// (all values < 128 land in unit sub-buckets of the production bucket
/// scheme, so `bucket_index` is exercised unmodified).
const NB: usize = 8;

struct CHistogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl CHistogram {
    fn new() -> CHistogram {
        CHistogram {
            buckets: (0..NB).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// The production recording order after the coherence fix: bounds
    /// first, bucket increment last, so a snapshot that sees the count
    /// also sees the bounds that produced it.
    fn record_fixed(&self, v: u64) {
        self.sum.fetch_add(v);
        self.max.fetch_max(v);
        self.min.fetch_min(v);
        self.buckets[bucket_index(v)].fetch_add(1);
    }

    /// The pre-fix order: bucket first, bounds after. A snapshot between
    /// the increment and the `fetch_min` observes `count > 0` with
    /// `min == u64::MAX` — the torn read the fix eliminates.
    fn record_torn(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1);
        self.sum.fetch_add(v);
        self.max.fetch_max(v);
        self.min.fetch_min(v);
    }

    /// Snapshot in the production order: buckets first, then bounds —
    /// assembled into the real [`HistogramSnapshot`] so `percentile`
    /// is the production estimator.
    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load();
            if n > 0 {
                buckets.push((i as u32, n));
                count += n;
            }
        }
        let sum = self.sum.load();
        let max = self.max.load();
        let min = self.min.load();
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max: if count == 0 { 0 } else { max },
            min: if count == 0 { 0 } else { min },
        }
    }
}

fn assert_coherent(s: &HistogramSnapshot) {
    let bucket_total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(s.count, bucket_total, "count disagrees with bucket sum");
    if s.count == 0 {
        return;
    }
    assert!(
        s.min != u64::MAX,
        "snapshot saw a recorded value but no min bound (torn read)"
    );
    assert!(s.min <= s.max, "min {} > max {}", s.min, s.max);
    let p50 = s.percentile(0.5);
    assert!(
        p50 >= s.min as f64 && p50 <= s.max as f64,
        "p50 {p50} outside [{}, {}]",
        s.min,
        s.max
    );
}

fn histogram_model_with(record: fn(&CHistogram, u64)) {
    let h = Arc::new(CHistogram::new());
    let h1 = Arc::clone(&h);
    let t1 = spawn(move || {
        record(&h1, 1);
        record(&h1, 5);
    });
    let h2 = Arc::clone(&h);
    let t2 = spawn(move || {
        record(&h2, 2);
        record(&h2, 7);
    });
    // Reader interleaved with the writers: every observable snapshot
    // must be coherent, mid-stream or not.
    assert_coherent(&h.snapshot());
    assert_coherent(&h.snapshot());
    t1.join();
    t2.join();
    let s = h.snapshot();
    assert_coherent(&s);
    assert_eq!(
        (s.count, s.sum, s.min, s.max),
        (4, 15, 1, 7),
        "quiesced snapshot"
    );
}

/// Histogram model with the fixed recording order — must pass every
/// schedule.
pub fn histogram_model() {
    histogram_model_with(CHistogram::record_fixed);
}

/// Histogram model with the torn recording order — the checker must
/// find the violating schedule (`count > 0`, `min == u64::MAX`).
pub fn histogram_torn_model() {
    histogram_model_with(CHistogram::record_torn);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_exhaustive, explore_random};
    use std::sync::Arc;

    #[test]
    fn counter_clean_under_random_schedules() {
        explore_random("counter", 300, 0xC0, Arc::new(counter_model)).assert_clean();
    }

    #[test]
    fn counter_clean_under_bounded_exhaustive() {
        explore_exhaustive("counter-ex", 400, Arc::new(counter_model)).assert_clean();
    }

    #[test]
    fn fixed_histogram_clean_under_random_schedules() {
        explore_random("histogram", 300, 0x41, Arc::new(histogram_model)).assert_clean();
    }

    #[test]
    fn torn_histogram_is_caught_and_replays() {
        let rep = explore_random(
            "histogram-torn",
            2_000,
            0xBAD,
            Arc::new(histogram_torn_model),
        );
        let v = rep.violation;
        assert!(v.is_some(), "checker missed the torn snapshot bug");
        let seed = v.and_then(|v| v.seed).unwrap_or(0);
        let r = crate::explore::replay(seed, Arc::new(histogram_torn_model));
        assert!(
            r.failure.is_some(),
            "violation seed {seed:#x} did not replay"
        );
    }
}
