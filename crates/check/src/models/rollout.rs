//! Model 4: the fleet hot-swap rollout.
//!
//! Ports the `cuttlefish-fleet` registry's rollout protocol onto the
//! instrumented shims while driving the *production*
//! [`RolloutMachine`] for phase legality — the same typed state machine
//! the live registry advances, so an ordering the model proves unsafe
//! is unsafe for the real rollout too. Router tasks race a rollout task
//! that verifies, shifts the routing pointer, and drains the old
//! version; the old (and, in the rollback scenario, new) version's
//! admission is a lock-free gate atomic (`bit0` = closed, upper bits =
//! 2·in-flight) modeling the real server's under-the-queue-lock
//! shutdown check.
//!
//! Checked invariants, on every schedule:
//!
//! - **no routing before verification**: a router that observes the new
//!   version in the routing pointer must also observe the verification
//!   flag — the machine's `routable()` gating survives adversarial
//!   interleaving;
//! - **drained before join**: no request is ever in a version's serving
//!   window after that version's workers joined (the gate admits only
//!   while open, and the drain waits for in-flight zero before the
//!   join);
//! - **typed drain, no lost requests**: a request rejected by a closing
//!   gate retries against the re-read routing pointer and is served —
//!   every request is served exactly once, by old or new;
//! - **rollback ordering**: after a failed post-shift health probe the
//!   pointer swings back *before* the new version's reject-drain
//!   closes, so a drain-rejected request always finds the old version
//!   routable.

use std::sync::Arc;

use cuttlefish_fleet::{RolloutMachine, RolloutPhase};

use crate::channel::channel;
use crate::sched::spawn;
use crate::sync::{AtomicBool, AtomicU64};

/// Wrapping `-2` for the gate's in-flight decrement.
const DEC2: u64 = u64::MAX - 1;

const ROUTERS: usize = 2;
const REQUESTS_PER_ROUTER: usize = 2;

/// Advances the production machine one phase; an illegal transition is a
/// checker violation (the panic surfaces with the schedule trace).
fn advance(m: &mut RolloutMachine) {
    let step = m.advance();
    assert!(step.is_ok(), "rollout machine refused to advance: {step:?}");
}

/// Admission gate ops, shared by both scenarios.
///
/// Admit: `fetch_add(2)`; even `prev` means admitted (in-flight while
/// the +2 is held), odd means the gate closed first. Either way the
/// caller must release with [`release`]. Close: `fetch_add(1)` sets
/// `bit0` forever; a non-zero `prev` means in-flight (or about-to-undo)
/// requests exist and the closer must wait for the drain notification
/// sent by whichever release brings the count to zero.
fn release(gate: &AtomicU64, drained: &crate::channel::Sender<()>) {
    let prev = gate.fetch_add(DEC2);
    // prev == 3: gate closed and this release took the in-flight count
    // to zero — exactly the drain-complete condition the closer awaits.
    if prev == 3 {
        drained.send(());
    }
}

/// Clean-swap scenario: verification succeeds, the pointer shifts, the
/// old version drains gracefully and joins, the rollout commits.
pub fn swap_model() {
    let routable = Arc::new(AtomicU64::new(1));
    let verified = Arc::new(AtomicBool::new(false));
    let old_gate = Arc::new(AtomicU64::new(0));
    let old_joined = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let (drained_tx, drained_rx) = channel::<()>();

    let mut handles = Vec::new();
    for _ in 0..ROUTERS {
        let routable = Arc::clone(&routable);
        let verified = Arc::clone(&verified);
        let old_gate = Arc::clone(&old_gate);
        let old_joined = Arc::clone(&old_joined);
        let served = Arc::clone(&served);
        let drained_tx = drained_tx.clone();
        handles.push(spawn(move || {
            for _ in 0..REQUESTS_PER_ROUTER {
                let v = routable.load();
                if v == 2 {
                    // Invariant: the pointer never names an unverified
                    // version, under any interleaving.
                    assert!(
                        verified.load(),
                        "router saw v2 routable before verification completed"
                    );
                    served.fetch_add(1);
                    continue;
                }
                let prev = old_gate.fetch_add(2);
                if prev & 1 == 0 {
                    // Admitted by the old version: its workers must not
                    // have joined while we are in the serving window.
                    assert!(
                        !old_joined.load(),
                        "request in flight on the old version after its workers joined"
                    );
                    served.fetch_add(1);
                    assert!(
                        !old_joined.load(),
                        "old workers joined before the in-flight request completed"
                    );
                    release(&old_gate, &drained_tx);
                } else {
                    // Typed Draining rejection. The drain only begins
                    // after the shift, so the retry must find v2 — and
                    // v2 must already be verified.
                    release(&old_gate, &drained_tx);
                    let v = routable.load();
                    assert_eq!(
                        v, 2,
                        "old version began draining before the routing pointer shifted"
                    );
                    assert!(verified.load(), "retry routed to an unverified version");
                    served.fetch_add(1);
                }
            }
        }));
    }

    let rollout = {
        let routable = Arc::clone(&routable);
        let verified = Arc::clone(&verified);
        let old_gate = Arc::clone(&old_gate);
        let old_joined = Arc::clone(&old_joined);
        spawn(move || {
            let mut m = RolloutMachine::new("m", 2, Some(1));
            advance(&mut m); // Loading -> Verifying
            advance(&mut m); // Verifying -> Warming: verification passed
            assert!(m.verified());
            verified.store(true);
            advance(&mut m); // Warming -> Shifting
            assert!(m.routable(), "machine gates routability until Shifting");
            routable.store(2);
            advance(&mut m); // Shifting -> DrainingOld
            let prev = old_gate.fetch_add(1); // close old admission
            if prev != 0 {
                // In-flight requests exist; the release that takes the
                // count to zero sends the drain notification.
                drained_rx.recv();
            }
            old_joined.store(true); // join the old workers
            advance(&mut m); // DrainingOld -> Committed
            assert_eq!(m.phase(), RolloutPhase::Committed);
        })
    };

    for h in handles {
        h.join();
    }
    rollout.join();
    assert_eq!(
        served.load(),
        (ROUTERS * REQUESTS_PER_ROUTER) as u64,
        "every request must be served exactly once across the swap"
    );
    assert_eq!(routable.load(), 2);
}

/// Rollback scenario: verification and warm-up pass, the pointer
/// shifts, but the post-shift health probe fails — the pointer swings
/// back to v1 and the new version is reject-drained and joined, while
/// the old version never stops serving.
pub fn rollback_model() {
    let routable = Arc::new(AtomicU64::new(1));
    let verified = Arc::new(AtomicBool::new(false));
    let new_gate = Arc::new(AtomicU64::new(0));
    let new_joined = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let (drained_tx, drained_rx) = channel::<()>();

    let mut handles = Vec::new();
    for _ in 0..ROUTERS {
        let routable = Arc::clone(&routable);
        let verified = Arc::clone(&verified);
        let new_gate = Arc::clone(&new_gate);
        let new_joined = Arc::clone(&new_joined);
        let served = Arc::clone(&served);
        let drained_tx = drained_tx.clone();
        handles.push(spawn(move || {
            for _ in 0..REQUESTS_PER_ROUTER {
                let v = routable.load();
                if v == 2 {
                    assert!(
                        verified.load(),
                        "router saw v2 routable before verification completed"
                    );
                    let prev = new_gate.fetch_add(2);
                    if prev & 1 == 0 {
                        assert!(
                            !new_joined.load(),
                            "request in flight on the new version after its reject-drain joined"
                        );
                        served.fetch_add(1);
                        assert!(
                            !new_joined.load(),
                            "new workers joined before the in-flight request completed"
                        );
                        release(&new_gate, &drained_tx);
                    } else {
                        // Reject-drained by the rollback: the pointer
                        // must already have swung back to the old
                        // version, which never stopped serving.
                        release(&new_gate, &drained_tx);
                        assert_eq!(
                            routable.load(),
                            1,
                            "reject drain began before the pointer swung back to v1"
                        );
                        served.fetch_add(1);
                    }
                } else {
                    // Old version serves throughout; its gate never
                    // closes in a rollback.
                    served.fetch_add(1);
                }
            }
        }));
    }

    let rollout = {
        let routable = Arc::clone(&routable);
        let verified = Arc::clone(&verified);
        let new_gate = Arc::clone(&new_gate);
        let new_joined = Arc::clone(&new_joined);
        spawn(move || {
            let mut m = RolloutMachine::new("m", 2, Some(1));
            advance(&mut m); // Verifying
            advance(&mut m); // Warming
            verified.store(true);
            advance(&mut m); // Shifting
            routable.store(2);
            // Health probe fails: pointer back first, then the machine
            // records the rollback, then the new version reject-drains.
            routable.store(1);
            let rb = m.roll_back();
            assert!(rb.is_ok(), "rollback refused: {rb:?}");
            assert!(!m.routable(), "a rolled-back version must not be routable");
            let prev = new_gate.fetch_add(1);
            if prev != 0 {
                drained_rx.recv();
            }
            new_joined.store(true);
            assert_eq!(m.phase(), RolloutPhase::RolledBack);
        })
    };

    for h in handles {
        h.join();
    }
    rollout.join();
    assert_eq!(
        served.load(),
        (ROUTERS * REQUESTS_PER_ROUTER) as u64,
        "every request must be served exactly once across the rollback"
    );
    assert_eq!(
        routable.load(),
        1,
        "the old version holds the pointer after rollback"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_exhaustive, explore_random};

    #[test]
    fn swap_clean_under_random_schedules() {
        explore_random("fleet-rollout-swap", 200, 0xF1, Arc::new(swap_model)).assert_clean();
    }

    #[test]
    fn rollback_clean_under_random_schedules() {
        explore_random(
            "fleet-rollout-rollback",
            200,
            0xF2,
            Arc::new(rollback_model),
        )
        .assert_clean();
    }

    #[test]
    fn swap_clean_under_bounded_exhaustive() {
        explore_exhaustive("fleet-rollout-swap-ex", 300, Arc::new(swap_model)).assert_clean();
    }
}
