//! Instrumented unbounded MPSC channels.
//!
//! The shape the dist worker protocol uses: cloneable [`Sender`]s, one
//! [`Receiver`], FIFO per channel. `send` and `recv` are scheduler
//! choice points; `recv` on an empty queue parks the task (the scheduler
//! marks it blocked, so an empty runnable set is reported as a deadlock
//! with the blocked channel named). Because only one task executes
//! between choice points, the check-then-block in `recv` cannot race
//! with a concurrent `send` — serialization is what makes the model's
//! blocking logic this simple.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use crate::sched;

struct Chan<T> {
    id: usize,
    queue: Mutex<VecDeque<T>>,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half; clone freely.
pub struct Sender<T> {
    inner: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message (choice point) and wakes blocked receivers.
    pub fn send(&self, v: T) {
        sched::yield_point();
        self.inner.lock().push_back(v);
        sched::wake_channel(self.inner.id);
    }
}

/// The receiving half.
pub struct Receiver<T> {
    inner: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Dequeues the next message, parking (in model time) until one is
    /// available. A park with no possible sender is a deadlock the
    /// scheduler reports as a violation.
    pub fn recv(&self) -> T {
        loop {
            sched::yield_point();
            if let Some(v) = self.inner.lock().pop_front() {
                return v;
            }
            sched::block_on_channel(self.inner.id);
        }
    }

    /// Dequeues the next message if one is ready (choice point).
    pub fn try_recv(&self) -> Option<T> {
        sched::yield_point();
        self.inner.lock().pop_front()
    }

    /// Number of queued messages. Not a choice point: this is an
    /// assertion helper (e.g. "protocol left no unconsumed replies"),
    /// not a modeled operation.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is empty (assertion helper, not a choice point).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Creates a connected (sender, receiver) pair scoped to the current
/// model run.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let id = sched::register_channel();
    let inner = Arc::new(Chan {
        id,
        queue: Mutex::new(VecDeque::new()),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Chooser, SplitMix64};
    use crate::sched::{run_once, spawn, DEFAULT_MAX_STEPS};
    use std::sync::Arc;

    #[test]
    fn messages_arrive_in_fifo_order_per_sender() {
        let r = run_once(
            Chooser::Random(SplitMix64::new(11)),
            DEFAULT_MAX_STEPS,
            Arc::new(|| {
                let (tx, rx) = channel::<u32>();
                let h = spawn(move || {
                    for i in 0..4 {
                        tx.send(i);
                    }
                });
                let got: Vec<u32> = (0..4).map(|_| rx.recv()).collect();
                assert_eq!(got, vec![0, 1, 2, 3]);
                h.join();
                assert!(rx.is_empty());
            }),
        );
        assert!(r.failure.is_none(), "{:?}", r.failure);
    }

    #[test]
    fn two_senders_interleave_but_lose_nothing() {
        let r = run_once(
            Chooser::Random(SplitMix64::new(13)),
            DEFAULT_MAX_STEPS,
            Arc::new(|| {
                let (tx, rx) = channel::<u32>();
                let tx2 = tx.clone();
                let h1 = spawn(move || {
                    tx.send(1);
                    tx.send(2);
                });
                let h2 = spawn(move || {
                    tx2.send(10);
                    tx2.send(20);
                });
                let mut got: Vec<u32> = (0..4).map(|_| rx.recv()).collect();
                got.sort_unstable();
                assert_eq!(got, vec![1, 2, 10, 20]);
                h1.join();
                h2.join();
            }),
        );
        assert!(r.failure.is_none(), "{:?}", r.failure);
    }
}
