//! Deterministic-interleaving model checking for the workspace's
//! concurrent protocols — a dependency-free "shuttle-lite".
//!
//! Real concurrency tests only witness the interleavings the OS
//! scheduler happens to produce; the bugs live in the ones it doesn't.
//! This crate serializes a model's tasks onto real OS threads under a
//! token-passing scheduler: exactly one task runs at a time, every
//! instrumented operation ([`sync::AtomicU64`] ops, [`channel`]
//! send/recv, [`spawn`]) is a *choice point*, and at each choice point a
//! pluggable [`Chooser`] decides which runnable task executes next. The
//! resulting schedule is a pure function of the chooser's decisions, so:
//!
//! - **randomized exploration** ([`explore_random`]) samples thousands
//!   of distinct schedules from seeded [`SplitMix64`] streams;
//! - **bounded exhaustive exploration** ([`explore_exhaustive`])
//!   enumerates schedules depth-first by backtracking the recorded
//!   choice trace, and can prove small state spaces *complete*;
//! - **replay** ([`replay`]) re-executes the exact failing schedule from
//!   the seed printed in a violation, turning a one-in-ten-thousand
//!   interleaving bug into a deterministic unit test.
//!
//! Failures are ordinary `assert!` panics inside the model, plus two the
//! scheduler detects itself: deadlock (no task runnable, not all
//! finished) and livelock (step budget exhausted). All of them surface
//! as a [`Violation`] carrying the seed and choice trace.
//!
//! The models under [`models`] check three production protocols against
//! the real workspace code they instrument: the sharded telemetry
//! metrics plane (via [`cuttlefish_telemetry::metrics::bucket_index`]
//! and `HistogramSnapshot::percentile`), the dist coordinator's lockstep
//! round (via [`cuttlefish_dist::contribution_outcome`] and
//! [`cuttlefish_dist::FaultPlan`]), and the parallel GEMM row-striping
//! plan (via [`cuttlefish_tensor::kernel::stripe_rows`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod explore;
pub mod models;
pub mod sched;
pub mod sync;

pub use channel::{channel, Receiver, Sender};
pub use explore::{
    explore_exhaustive, explore_random, replay, Chooser, Report, SplitMix64, Violation,
};
pub use sched::{run_once, spawn, JoinHandle, RunResult};
