//! The token-passing scheduler.
//!
//! A model run owns a set of *tasks*, each backed by a real OS thread,
//! but only one task ever executes between two choice points: everyone
//! else parks on a condvar waiting for `current` to name them. At each
//! choice point the running task consults the run's [`Chooser`] to pick
//! the next task among the runnable set (recording the decision in the
//! choice trace whenever more than one task could run), hands the token
//! over, and parks. Model code between two choice points is therefore
//! atomic — exactly the semantics of a sequentially-consistent
//! interleaving model.
//!
//! Failure handling: a model assertion panics inside the task; the panic
//! is caught at the task boundary, recorded as the run's failure, and
//! every other task is unwound with a private `StopToken` so the run
//! tears down without executing further model code. The default panic
//! hook is suppressed for task threads so ten thousand explored
//! schedules don't print ten thousand backtraces.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

use crate::explore::Chooser;

/// Default per-run step budget: exceeding it is reported as a livelock.
pub const DEFAULT_MAX_STEPS: usize = 1 << 16;

/// Private unwind payload used to tear down tasks after a failure or a
/// step-budget stop; never reported as a failure itself.
struct StopToken;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Parked in `recv` on the channel with this id.
    BlockedRecv(usize),
    /// Parked in `join` on the task with this id.
    BlockedJoin(usize),
    Finished,
}

struct RtState {
    status: Vec<Status>,
    current: usize,
    chooser: Chooser,
    trace: Vec<u32>,
    widths: Vec<u32>,
    failure: Option<String>,
    stopping: bool,
    steps: usize,
    max_steps: usize,
    next_channel: usize,
}

impl RtState {
    fn runnable(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.status.iter().all(|s| *s == Status::Finished)
    }

    /// Consults the chooser; records the decision only when it was a real
    /// choice (width > 1), so traces stay minimal and exhaustive
    /// enumeration never branches on forced moves.
    fn choose(&mut self, width: usize) -> usize {
        if width <= 1 {
            return 0;
        }
        let c = match &mut self.chooser {
            Chooser::Random(rng) => (rng.next_u64() % width as u64) as usize,
            Chooser::Guided { prefix, pos } => {
                let c = if *pos < prefix.len() {
                    (prefix[*pos] as usize).min(width - 1)
                } else {
                    0
                };
                *pos += 1;
                c
            }
        };
        self.trace.push(c as u32);
        self.widths.push(width as u32);
        c
    }

    fn deadlock_message(&self) -> String {
        let blocked: Vec<String> = self
            .status
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Status::BlockedRecv(ch) => Some(format!("task {i} blocked on recv(ch{ch})")),
                Status::BlockedJoin(t) => Some(format!("task {i} blocked on join(task {t})")),
                _ => None,
            })
            .collect();
        format!("deadlock: no runnable task [{}]", blocked.join(", "))
    }
}

pub(crate) struct Runtime {
    state: Mutex<RtState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Runtime {
    fn new(chooser: Chooser, max_steps: usize) -> Runtime {
        Runtime {
            state: Mutex::new(RtState {
                status: Vec::new(),
                current: 0,
                chooser,
                trace: Vec::new(),
                widths: Vec::new(),
                failure: None,
                stopping: false,
                steps: 0,
                max_steps,
                next_channel: 0,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RtState> {
        // A poisoned lock means a task panicked while holding it; the
        // scheduler state is still coherent (we only ever panic via
        // stop_unwind *after* releasing the guard), so recover.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Runtime>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Runtime>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Suppresses the default panic hook for model-task threads only: their
/// panics are caught and reported through [`RunResult::failure`], and an
/// explorer intentionally triggers thousands of them.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_task = CTX.with(|c| c.borrow().is_some());
            if !in_task {
                prev(info);
            }
        }));
    });
}

fn stop_unwind() -> ! {
    panic::panic_any(StopToken)
}

/// Parks until the scheduler token names `me`; unwinds if the run is
/// stopping. Consumes the guard so the lock is released while parked.
fn wait_for_token(rt: &Runtime, mut st: MutexGuard<'_, RtState>, me: usize) {
    loop {
        if st.stopping {
            drop(st);
            stop_unwind();
        }
        if st.current == me {
            return;
        }
        st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Picks the next task to run (recording the choice), hands the token
/// over, and — unless `me` picked itself — parks until it comes back.
fn hand_off(rt: &Runtime, mut st: MutexGuard<'_, RtState>, me: usize) {
    let runnable = st.runnable();
    if runnable.is_empty() {
        // `me` just blocked and nobody can make progress.
        let msg = st.deadlock_message();
        st.failure.get_or_insert(msg);
        st.stopping = true;
        rt.cv.notify_all();
        drop(st);
        stop_unwind();
    }
    let c = st.choose(runnable.len());
    let next = runnable[c];
    st.current = next;
    if next == me {
        return;
    }
    rt.cv.notify_all();
    wait_for_token(rt, st, me);
}

/// The instrumented-operation entry point: every shim calls this before
/// touching shared state. Outside a model run it is a no-op, so the
/// shims double as plain std wrappers in ordinary code.
pub(crate) fn yield_point() {
    let Some((rt, me)) = current() else { return };
    let mut st = rt.lock();
    if st.stopping {
        drop(st);
        stop_unwind();
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!(
            "step budget {} exhausted: livelock or runaway model loop",
            st.max_steps
        );
        st.failure.get_or_insert(msg);
        st.stopping = true;
        rt.cv.notify_all();
        drop(st);
        stop_unwind();
    }
    hand_off(&rt, st, me);
}

/// Marks `me` blocked on `ch` and hands the token to someone else. The
/// caller re-checks its queue when rescheduled (a `wake_channel` flips
/// it back to runnable first).
pub(crate) fn block_on_channel(ch: usize) {
    let Some((rt, me)) = current() else { return };
    let mut st = rt.lock();
    if st.stopping {
        drop(st);
        stop_unwind();
    }
    st.status[me] = Status::BlockedRecv(ch);
    hand_off(&rt, st, me);
}

/// Makes every task blocked on `ch` runnable again (a message landed).
pub(crate) fn wake_channel(ch: usize) {
    let Some((rt, _)) = current() else { return };
    let mut st = rt.lock();
    for s in st.status.iter_mut() {
        if *s == Status::BlockedRecv(ch) {
            *s = Status::Runnable;
        }
    }
}

/// Allocates a model-scoped channel id. Channels only work inside a run.
pub(crate) fn register_channel() -> usize {
    let ctx = current();
    assert!(
        ctx.is_some(),
        "check::channel() must be called inside run_once"
    );
    let Some((rt, _)) = ctx else { unreachable!() };
    let mut st = rt.lock();
    let id = st.next_channel;
    st.next_channel += 1;
    id
}

/// Handle to a spawned model task; `join` is a scheduling point.
pub struct JoinHandle {
    target: usize,
}

impl JoinHandle {
    /// Blocks (in model time) until the target task finishes. Panics in
    /// the target surface as the run's failure, not here.
    pub fn join(self) {
        let Some((rt, me)) = current() else { return };
        loop {
            let mut st = rt.lock();
            if st.stopping {
                drop(st);
                stop_unwind();
            }
            if st.status[self.target] == Status::Finished {
                return;
            }
            st.status[me] = Status::BlockedJoin(self.target);
            hand_off(&rt, st, me);
        }
    }
}

/// Spawns a model task on its own OS thread under the current run's
/// scheduler. Must be called from inside a model.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let ctx = current();
    assert!(ctx.is_some(), "check::spawn must be called inside run_once");
    let Some((rt, _)) = ctx else { unreachable!() };
    let id = {
        let mut st = rt.lock();
        st.status.push(Status::Runnable);
        st.status.len() - 1
    };
    let rt2 = Arc::clone(&rt);
    let spawned = std::thread::Builder::new()
        .name(format!("check-task-{id}"))
        .spawn(move || task_main(rt2, id, Box::new(f)));
    match spawned {
        Ok(h) => {
            rt.handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(h);
        }
        Err(e) => {
            let mut st = rt.lock();
            st.status[id] = Status::Finished;
            st.failure
                .get_or_insert(format!("task thread spawn failed: {e}"));
            st.stopping = true;
            rt.cv.notify_all();
        }
    }
    // A spawn is itself a visible event: give the scheduler the chance
    // to run the child (or anyone else) before the parent continues.
    yield_point();
    JoinHandle { target: id }
}

fn payload_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "task panicked with a non-string payload".to_string()
    }
}

fn task_main(rt: Arc<Runtime>, id: usize, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), id)));
    {
        let mut waited = rt.lock();
        loop {
            if waited.stopping {
                drop(waited);
                finish_stopping(&rt, id);
                CTX.with(|c| *c.borrow_mut() = None);
                return;
            }
            if waited.current == id {
                break;
            }
            waited = rt.cv.wait(waited).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let res = panic::catch_unwind(AssertUnwindSafe(f));
    finish_task(&rt, id, res);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Marks a task finished without it ever having run (teardown path).
fn finish_stopping(rt: &Runtime, me: usize) {
    let mut st = rt.lock();
    st.status[me] = Status::Finished;
    rt.cv.notify_all();
}

fn finish_task(rt: &Runtime, me: usize, res: Result<(), Box<dyn Any + Send>>) {
    let mut st = rt.lock();
    st.status[me] = Status::Finished;
    if let Err(p) = res {
        if !p.is::<StopToken>() {
            st.failure.get_or_insert(payload_message(p.as_ref()));
            st.stopping = true;
        }
    }
    for s in st.status.iter_mut() {
        if *s == Status::BlockedJoin(me) {
            *s = Status::Runnable;
        }
    }
    if st.stopping {
        rt.cv.notify_all();
        return;
    }
    let runnable = st.runnable();
    if runnable.is_empty() {
        if !st.all_finished() {
            let msg = st.deadlock_message();
            st.failure.get_or_insert(msg);
            st.stopping = true;
        }
        rt.cv.notify_all();
        return;
    }
    let c = st.choose(runnable.len());
    st.current = runnable[c];
    rt.cv.notify_all();
}

/// One executed schedule: the recorded choice trace, the branching width
/// at each recorded choice, the failure (if any), and the step count.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Index chosen at each choice point with more than one option.
    pub trace: Vec<u32>,
    /// Number of options at each recorded choice point.
    pub widths: Vec<u32>,
    /// The first failure observed: a model assertion message, a
    /// deadlock, or a livelock. `None` means the schedule passed.
    pub failure: Option<String>,
    /// Total instrumented operations executed.
    pub steps: usize,
}

/// Executes `body` once as task 0 under `chooser`, returning the
/// schedule's trace and outcome. Blocks until every task (including any
/// it spawned) has finished and all OS threads are joined.
pub fn run_once(
    chooser: Chooser,
    max_steps: usize,
    body: Arc<dyn Fn() + Send + Sync>,
) -> RunResult {
    install_hook();
    let rt = Arc::new(Runtime::new(chooser, max_steps));
    {
        let mut st = rt.lock();
        st.status.push(Status::Runnable);
        st.current = 0;
    }
    let rt2 = Arc::clone(&rt);
    let spawned = std::thread::Builder::new()
        .name("check-task-0".to_string())
        .spawn(move || task_main(rt2, 0, Box::new(move || body())));
    match spawned {
        Ok(h) => rt
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h),
        Err(e) => {
            let mut st = rt.lock();
            st.status[0] = Status::Finished;
            st.failure
                .get_or_insert(format!("root thread spawn failed: {e}"));
        }
    }
    let result = {
        let mut st = rt.lock();
        while !st.all_finished() {
            st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        RunResult {
            trace: st.trace.clone(),
            widths: st.widths.clone(),
            failure: st.failure.clone(),
            steps: st.steps,
        }
    };
    loop {
        let h = rt
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match h {
            // The thread may have died unwinding a StopToken; that is
            // expected teardown, not a failure.
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::SplitMix64;
    use crate::sync::AtomicU64;

    #[test]
    fn trivial_body_finishes_clean() {
        let r = run_once(
            Chooser::Random(SplitMix64::new(1)),
            DEFAULT_MAX_STEPS,
            Arc::new(|| {}),
        );
        assert!(r.failure.is_none());
        assert!(r.trace.is_empty());
    }

    #[test]
    fn same_seed_replays_same_trace() {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = spawn(move || {
                a2.fetch_add(1);
                a2.fetch_add(1);
            });
            a.fetch_add(10);
            h.join();
            assert_eq!(a.load(), 12);
        });
        let r1 = run_once(
            Chooser::Random(SplitMix64::new(42)),
            DEFAULT_MAX_STEPS,
            Arc::clone(&body),
        );
        let r2 = run_once(
            Chooser::Random(SplitMix64::new(42)),
            DEFAULT_MAX_STEPS,
            Arc::clone(&body),
        );
        assert!(r1.failure.is_none());
        assert_eq!(r1.trace, r2.trace);
        assert_eq!(r1.widths, r2.widths);
    }

    #[test]
    fn guided_prefix_reproduces_recorded_trace() {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let h = spawn(move || {
                a2.fetch_add(1);
            });
            a.fetch_add(2);
            h.join();
        });
        let r = run_once(
            Chooser::Random(SplitMix64::new(7)),
            DEFAULT_MAX_STEPS,
            Arc::clone(&body),
        );
        let g = run_once(
            Chooser::Guided {
                prefix: r.trace.clone(),
                pos: 0,
            },
            DEFAULT_MAX_STEPS,
            body,
        );
        assert_eq!(g.trace, r.trace);
    }

    #[test]
    fn recv_with_no_sender_reports_deadlock() {
        let r = run_once(
            Chooser::Random(SplitMix64::new(3)),
            DEFAULT_MAX_STEPS,
            Arc::new(|| {
                let (_tx, rx) = crate::channel::<u32>();
                let _v = rx.recv();
            }),
        );
        let msg = r.failure.unwrap_or_default();
        assert!(msg.contains("deadlock"), "expected deadlock, got: {msg}");
    }

    #[test]
    fn model_assertion_becomes_failure() {
        let r = run_once(
            Chooser::Random(SplitMix64::new(5)),
            DEFAULT_MAX_STEPS,
            Arc::new(|| {
                let sum = [1u32, 1].iter().sum::<u32>();
                assert!(sum == 3, "arithmetic is broken");
            }),
        );
        let msg = r.failure.unwrap_or_default();
        assert!(msg.contains("arithmetic is broken"), "got: {msg}");
    }

    #[test]
    fn runaway_loop_reports_livelock() {
        let r = run_once(
            Chooser::Random(SplitMix64::new(9)),
            200,
            Arc::new(|| {
                let a = AtomicU64::new(0);
                loop {
                    if a.fetch_add(1) > 1_000_000 {
                        break;
                    }
                }
            }),
        );
        let msg = r.failure.unwrap_or_default();
        assert!(msg.contains("step budget"), "got: {msg}");
    }
}
