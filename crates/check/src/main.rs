//! `cuttlefish-check`: explore the model suites and report.
//!
//! Default run: every suite under randomized + bounded-exhaustive
//! exploration, printing per-suite schedule counts and failing (exit 1)
//! on any violation — with the replay seed and trace in the message.
//!
//! Flags:
//! - `--quick`: CI smoke — same suites, far fewer schedules;
//! - `--replay <suite> <seed>`: re-execute one schedule of one suite;
//! - `--list`: print suite names.
//!
//! Building with `RUSTFLAGS="--cfg check_demo"` adds the planted
//! torn-histogram bug to the run; the checker must *catch* it (and
//! print the replay seed) or the binary exits nonzero — a self-test
//! that the explorer actually finds order-dependent bugs.

use std::process::ExitCode;
use std::sync::Arc;

use cuttlefish_check::models::{lockstep, metrics, rollout, stripe};
use cuttlefish_check::{explore_exhaustive, explore_random, replay, Report};

type Body = Arc<dyn Fn() + Send + Sync>;

fn suites() -> Vec<(&'static str, Body)> {
    vec![
        ("metrics-counter", Arc::new(metrics::counter_model) as Body),
        ("metrics-histogram", Arc::new(metrics::histogram_model)),
        (
            "lockstep-switch",
            Arc::new(|| lockstep::lockstep_model(&lockstep::scenario_switch())),
        ),
        (
            "lockstep-straggler",
            Arc::new(|| lockstep::lockstep_model(&lockstep::scenario_straggler_crossing_switch())),
        ),
        (
            "lockstep-churn",
            Arc::new(|| lockstep::lockstep_model(&lockstep::scenario_churn())),
        ),
        ("stripe-13x3", Arc::new(|| stripe::stripe_model(13, 3))),
        ("stripe-29x4", Arc::new(|| stripe::stripe_model(29, 4))),
        ("fleet-rollout-swap", Arc::new(rollout::swap_model)),
        ("fleet-rollout-rollback", Arc::new(rollout::rollback_model)),
    ]
}

fn body_for(name: &str) -> Option<Body> {
    suites()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, b)| b)
}

fn print_report(kind: &str, rep: &Report) -> bool {
    match &rep.violation {
        Some(v) => {
            let seed = v
                .seed
                .map(|s| format!("{s:#x}"))
                .unwrap_or_else(|| "-".to_string());
            println!(
                "FAIL {:<22} {kind:<10} {} schedules | {}\n     replay seed {seed} trace {:?}",
                rep.name, rep.executions, v.message, v.trace
            );
            false
        }
        None => {
            println!(
                "ok   {:<22} {kind:<10} {} schedules ({} distinct{})",
                rep.name,
                rep.executions,
                rep.distinct,
                if rep.complete { ", complete" } else { "" }
            );
            true
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_all(quick: bool) -> ExitCode {
    let (rand_iters, ex_cap) = if quick { (60, 60) } else { (1_600, 400) };
    let mut total_distinct = 0usize;
    let mut ok = true;
    for (name, body) in suites() {
        let rep = explore_random(name, rand_iters, 0xCu64 ^ fnv(name), Arc::clone(&body));
        total_distinct += rep.distinct;
        ok &= print_report("random", &rep);
        let rep = explore_exhaustive(name, ex_cap, body);
        total_distinct += rep.distinct;
        ok &= print_report("exhaustive", &rep);
    }
    println!("total distinct schedules explored: {total_distinct}");
    if !ok {
        return ExitCode::FAILURE;
    }
    if demo_outcome() == Some(false) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// With `--cfg check_demo`: runs the planted torn-order histogram and
/// returns whether the checker caught it. `None` when not compiled in.
#[cfg(check_demo)]
fn demo_outcome() -> Option<bool> {
    let rep = explore_random(
        "histogram-torn-demo",
        4_000,
        0xBAD,
        Arc::new(metrics::histogram_torn_model),
    );
    match &rep.violation {
        Some(v) => {
            let seed = v.seed.map(|s| format!("{s:#x}")).unwrap_or_default();
            println!(
                "demo: planted torn-read bug CAUGHT after {} schedules: {}\n      \
                 replay: cuttlefish-check --replay histogram-torn-demo {seed}",
                rep.executions, v.message
            );
            Some(true)
        }
        None => {
            println!(
                "demo: planted torn-read bug NOT caught in {} schedules — explorer is broken",
                rep.executions
            );
            Some(false)
        }
    }
}

#[cfg(not(check_demo))]
fn demo_outcome() -> Option<bool> {
    None
}

fn replay_one(name: &str, seed_str: &str) -> ExitCode {
    let seed = match seed_str.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => seed_str.parse().ok(),
    };
    let Some(seed) = seed else {
        println!("unparseable seed `{seed_str}`");
        return ExitCode::FAILURE;
    };
    let body = if name == "histogram-torn-demo" {
        Some(Arc::new(metrics::histogram_torn_model) as Body)
    } else {
        body_for(name)
    };
    let Some(body) = body else {
        println!("unknown suite `{name}` (try --list)");
        return ExitCode::FAILURE;
    };
    let r = replay(seed, body);
    match r.failure {
        Some(msg) => {
            println!(
                "replay {name} seed {seed:#x}: VIOLATION\n  {msg}\n  trace {:?}",
                r.trace
            );
            ExitCode::FAILURE
        }
        None => {
            println!("replay {name} seed {seed:#x}: clean ({} steps)", r.steps);
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_all(false),
        Some("--quick") => run_all(true),
        Some("--list") => {
            for (name, _) in suites() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        Some("--replay") if args.len() == 3 => replay_one(&args[1], &args[2]),
        Some(other) => {
            println!(
                "usage: cuttlefish-check [--quick | --list | --replay <suite> <seed>] (got `{other}`)"
            );
            ExitCode::FAILURE
        }
    }
}
