//! Fleet integration tests: scripted hot-swap under live load, typed
//! rollback, per-tenant QoS starvation, and event-log reconciliation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cuttlefish_fleet::{
    DeadlineClass, FleetError, ModelRegistry, TenantPolicy, VersionState,
};
use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_nn::Network;
use cuttlefish_serve::ServerConfig;
use cuttlefish_telemetry::{Event, MemoryRecorder, MetricsRegistry, RunReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn builder(seed: u64) -> impl Fn() -> Network + Send + Sync + 'static {
    move || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(seed))
}

fn checkpoint(seed: u64) -> Checkpoint {
    Checkpoint::capture(&mut builder(seed)())
}

const WIDTH: usize = 3 * 8 * 8;

fn row(seed: usize) -> Vec<f32> {
    (0..WIDTH).map(|j| ((seed * 131 + j) % 11) as f32 * 0.05).collect()
}

/// Satellite (c), part 1: a scripted hot-swap under closed-loop client
/// load completes with zero failed requests and a bounded latency blip.
#[test]
fn hot_swap_under_load_drops_nothing() {
    let recorder = Arc::new(MemoryRecorder::new());
    let registry = Arc::new(
        ModelRegistry::with_observability(recorder.clone(), None).with_server_config(
            ServerConfig {
                workers: 2,
                queue_bound: 256,
                ..ServerConfig::default()
            },
        ),
    );
    // QoS out of the way: this test is about the swap, not admission.
    let open = TenantPolicy {
        class: DeadlineClass::Batch,
        rate_per_sec: 1e9,
        burst: 1e9,
    };
    registry.set_tenant_policy("load", open);

    let v1 = registry.rollout("swap-model", builder(1), checkpoint(1)).unwrap();
    assert_eq!(v1, 1);

    // Closed-loop clients hammer the model across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut failed = 0u64;
                let mut max_latency = Duration::ZERO;
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    match registry.call("swap-model", "load", row(c * 1000 + i)) {
                        Ok(out) => {
                            assert_eq!(out.len(), 4);
                            ok += 1;
                            max_latency = max_latency.max(t.elapsed());
                        }
                        Err(_) => failed += 1,
                    }
                    i += 1;
                }
                (ok, failed, max_latency)
            })
        })
        .collect();

    // Let traffic establish, then swap mid-flight.
    std::thread::sleep(Duration::from_millis(50));
    let v2 = registry.rollout("swap-model", builder(2), checkpoint(2)).unwrap();
    assert_eq!(v2, 2);
    assert_eq!(registry.active_version("swap-model"), Some(2));
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);

    let mut total_ok = 0;
    let mut total_failed = 0;
    let mut worst = Duration::ZERO;
    for c in clients {
        let (ok, failed, max_latency) = c.join().unwrap();
        total_ok += ok;
        total_failed += failed;
        worst = worst.max(max_latency);
    }
    assert!(total_ok > 0, "clients never got a response");
    assert_eq!(
        total_failed, 0,
        "a hot swap must not fail any client request (got {total_failed} failures)"
    );
    // The blip is bounded: the drain retry path resolves well under the
    // graceful-drain worst case. Generous bound to stay robust on slow CI.
    assert!(
        worst < Duration::from_secs(10),
        "p100 blip across the swap was {worst:?}"
    );

    // Old version retired, new one serving; the rollout event trail shows
    // the committed path.
    assert_eq!(
        registry.versions("swap-model"),
        vec![(1, VersionState::Retired), (2, VersionState::Serving)]
    );
    let phases: Vec<String> = recorder
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::FleetRollout { version: 2, phase, .. } => Some(phase.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        phases,
        vec!["loading", "verifying", "warming", "shifting", "draining_old", "committed"]
    );
    registry.drain_all();
}

/// Satellite (c), part 2: a checkpoint that fails verification rolls
/// back with a typed error and the old version keeps serving.
#[test]
fn failed_verification_rolls_back_and_old_version_keeps_serving() {
    let recorder = Arc::new(MemoryRecorder::new());
    let registry = ModelRegistry::with_observability(recorder.clone(), None);
    registry.rollout("rb-model", builder(3), checkpoint(3)).unwrap();

    // A checkpoint captured from a *different* architecture cannot
    // restore into the builder's network: freeze (restore + verify)
    // rejects it.
    let wrong = Checkpoint::capture(&mut build_micro_resnet18(
        &MicroResNetConfig::tiny(8),
        &mut StdRng::seed_from_u64(9),
    ));
    let err = registry.rollout("rb-model", builder(3), wrong).unwrap_err();
    assert!(
        matches!(err, FleetError::VerificationFailed { version: 2, .. }),
        "expected VerificationFailed, got {err:?}"
    );

    // v1 still routable and serving.
    assert_eq!(registry.active_version("rb-model"), Some(1));
    assert_eq!(registry.call("rb-model", "t", row(0)).unwrap().len(), 4);
    assert_eq!(registry.versions("rb-model"), vec![(1, VersionState::Serving)]);

    // The event trail shows the rollback path: the machine never reached
    // a routable phase for v2.
    let phases: Vec<String> = recorder
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::FleetRollout { version: 2, phase, .. } => Some(phase.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(phases, vec!["loading", "verifying", "rolled_back"]);
    assert!(!phases.iter().any(|p| p == "shifting"), "v2 must never shift");

    // A model whose *first* rollout rolls back reads as unknown.
    let first = registry.rollout(
        "never-was",
        builder(3),
        Checkpoint::capture(&mut build_micro_resnet18(
            &MicroResNetConfig::tiny(8),
            &mut StdRng::seed_from_u64(9),
        )),
    );
    assert!(first.is_err());
    assert!(matches!(
        registry.call("never-was", "t", row(0)),
        Err(FleetError::UnknownModel { .. })
    ));
    registry.drain_all();
}

/// Satellite (d): a starved tenant is throttled while a funded tenant
/// keeps its service rate, and the live metrics registry reconciles
/// exactly with the event-log RunReport.
#[test]
fn two_tenant_starvation_reconciles_registry_and_report() {
    let recorder = Arc::new(MemoryRecorder::new());
    let metrics = Arc::new(MetricsRegistry::new());
    let registry = ModelRegistry::with_observability(recorder.clone(), Some(Arc::clone(&metrics)));
    registry.rollout("qos-model", builder(5), checkpoint(5)).unwrap();

    // Tenant `greedy` gets 4 instant requests and no refill; tenant
    // `funded` has effectively unlimited quota.
    registry.set_tenant_policy(
        "greedy",
        TenantPolicy {
            class: DeadlineClass::Batch,
            rate_per_sec: 0.0,
            burst: 4.0,
        },
    );
    registry.set_tenant_policy(
        "funded",
        TenantPolicy {
            class: DeadlineClass::Batch,
            rate_per_sec: 1e9,
            burst: 1e9,
        },
    );

    let mut greedy_ok = 0u32;
    let mut greedy_throttled = 0u32;
    let mut funded_ok = 0u32;
    for i in 0..24 {
        match registry.call("qos-model", "greedy", row(i)) {
            Ok(_) => greedy_ok += 1,
            Err(FleetError::Throttled { .. }) => greedy_throttled += 1,
            Err(other) => panic!("unexpected greedy outcome: {other:?}"),
        }
        funded_ok += u32::from(registry.call("qos-model", "funded", row(i)).is_ok());
    }
    // The bucket admits exactly its burst, then starves; the funded
    // tenant is untouched by its neighbor's throttling.
    assert_eq!(greedy_ok, 4);
    assert_eq!(greedy_throttled, 20);
    assert_eq!(funded_ok, 24);

    // Reconciliation: replay the event log through RunReport aggregation
    // and compare against the live registry counters — exact equality,
    // since the sink records both planes at one call site.
    let events = recorder.events();
    let count = |tenant: &str, outcome: &str| {
        events
            .iter()
            .filter(|e| {
                matches!(e, Event::FleetRequest { tenant: t, outcome: o, .. }
                         if t == tenant && o == outcome)
            })
            .count() as u64
    };
    let counter = |tenant: &str, outcome: &str| {
        metrics
            .counter(&cuttlefish_telemetry::labeled(
                "fleet_requests_total",
                &[("tenant", tenant), ("outcome", outcome)],
            ))
            .get()
    };
    for (tenant, outcome) in [
        ("greedy", "ok"),
        ("greedy", "throttled"),
        ("funded", "ok"),
    ] {
        assert_eq!(
            count(tenant, outcome),
            counter(tenant, outcome),
            "event log and registry disagree for ({tenant}, {outcome})"
        );
    }
    assert_eq!(count("greedy", "throttled"), 20);

    // The rendered report carries the fleet section with both tenants.
    let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
    let report = RunReport::from_jsonl(&jsonl).render();
    for needle in ["== fleet ==", "tenant greedy", "tenant funded", "throttled:20"] {
        assert!(report.contains(needle), "missing '{needle}' in:\n{report}");
    }
    registry.drain_all();
}

/// Versioned checkpoint store round trip: publish assigns sequential
/// versions, activate loads + verifies + routes, stale versions stay
/// listed.
#[test]
fn publish_and_activate_through_the_store() {
    let dir = std::env::temp_dir().join(format!("cuttlefish-fleet-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::new().with_store(&dir);

    let v1 = registry.publish("stored", &checkpoint(11)).unwrap();
    let v2 = registry.publish("stored", &checkpoint(12)).unwrap();
    assert_eq!((v1, v2), (1, 2));
    assert_eq!(Checkpoint::list_versions(&dir, "stored").unwrap(), vec![1, 2]);

    registry.activate("stored", 1, builder(11)).unwrap();
    assert_eq!(registry.active_version("stored"), Some(1));
    assert_eq!(registry.call("stored", "t", row(1)).unwrap().len(), 4);

    registry.activate("stored", 2, builder(12)).unwrap();
    assert_eq!(registry.active_version("stored"), Some(2));

    assert!(matches!(
        registry.activate("stored", 9, builder(12)),
        Err(FleetError::UnknownVersion { version: 9, .. })
    ));
    registry.drain_all();
    let _ = std::fs::remove_dir_all(&dir);
}
