//! **cuttlefish-fleet**: production-shaped fleet serving on top of
//! `cuttlefish-serve` — many models, many tenants, zero-downtime model
//! updates.
//!
//! The serving crate runs one model well; this crate runs a *fleet* of
//! them the way a model-serving platform does:
//!
//! * [`ModelRegistry`] ([`registry`]) — model ids → versioned
//!   checkpoints → live servers. Versions are published to an on-disk
//!   store with the checkpoint layer's atomic + fsync'd versioned
//!   naming (`<model>-v<n>.ckpt.json`), and become routable only after
//!   **verified activation**: `Network::verify()` at freeze plus a
//!   smoke forward pass through every warmed replica.
//! * [`RolloutMachine`] ([`rollout`]) — the typed hot-swap state
//!   machine (`Loading → Verifying → Warming → Shifting → DrainingOld →
//!   Committed`, with `RolledBack` reachable from every live phase). A
//!   new version is never routable before verification, and the old
//!   version's workers are fully drained before they join — both
//!   invariants are also model-checked in `cuttlefish-check` against
//!   adversarial interleavings.
//! * Per-tenant QoS ([`qos`]) — token-bucket admission quotas per
//!   tenant and deadline classes that map onto the serving layer's
//!   dual-deadline batcher. Fair-share across models is structural:
//!   every model version owns its own bounded queue and worker pool.
//! * Telemetry — the front door records one `fleet_request` event per
//!   terminal outcome and bumps the matching labeled registry series at
//!   the same call site ([`FleetMetrics`]), so the live registry and
//!   the event-log run report reconcile exactly; rollouts emit one
//!   `fleet_rollout` event per phase.
//!
//! The open-loop load generator `fleet_bench` (in `cuttlefish-bench`)
//! drives all of this: Zipf-distributed model popularity across many
//! tenants, a mid-run hot swap, and per-tenant p99 + rollout-blip
//! reporting.
//!
//! # Example
//!
//! ```
//! use cuttlefish_fleet::ModelRegistry;
//! use cuttlefish_nn::checkpoint::Checkpoint;
//! use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let build = || build_micro_resnet18(&MicroResNetConfig::tiny(4),
//!                                     &mut StdRng::seed_from_u64(0));
//! let ckpt = Checkpoint::capture(&mut build());
//! let registry = ModelRegistry::new();
//! let v1 = registry.rollout("demo", build, ckpt).unwrap();
//! assert_eq!(registry.active_version("demo"), Some(v1));
//! let logits = registry.call("demo", "tenant-a", vec![0.1; 3 * 8 * 8]).unwrap();
//! assert_eq!(logits.len(), 4);
//! registry.drain_all();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod metrics;
pub mod qos;
pub mod registry;
pub mod rollout;

pub use error::{FleetError, FleetResult};
pub use metrics::FleetMetrics;
pub use qos::{AdmissionController, DeadlineClass, TenantPolicy, TokenBucket};
pub use registry::{FleetTicket, ModelRegistry, VersionState};
pub use rollout::{RolloutMachine, RolloutPhase};
