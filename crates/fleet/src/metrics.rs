//! Live fleet metrics, and the sink that keeps them reconciled with the
//! event log.
//!
//! Every terminal request outcome goes through [`FleetSink::request`],
//! which records the `fleet_request` event **and** bumps the matching
//! registry counter/histogram at the same call site. Because no outcome
//! can take one path without the other, a registry snapshot reconciles
//! exactly with the event-log `RunReport` for the same run — the same
//! guarantee the serve and dist layers provide, extended to tenant- and
//! model-labeled series.
//!
//! Names follow the workspace conventions: Prometheus-style
//! `fleet_*_total{label="v"}` counters and `_us` histograms in
//! microsecond ticks.

use std::sync::Arc;

use cuttlefish_telemetry::{labeled, Counter, Event, Histogram, MetricsRegistry, Recorder};

/// Shared handles to the fleet metrics of one registry.
///
/// Per-tenant and per-model series are resolved through the registry's
/// name map on demand (the fleet front door is not the per-batch hot
/// path); fleet-wide totals are pre-resolved.
#[derive(Clone)]
pub struct FleetMetrics {
    registry: Arc<MetricsRegistry>,
    rollouts_committed: Arc<Counter>,
    rollouts_rolled_back: Arc<Counter>,
}

impl std::fmt::Debug for FleetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetMetrics")
            .field("registry", &self.registry)
            .finish()
    }
}

impl FleetMetrics {
    /// Registers (or re-resolves) the fleet metrics in `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> FleetMetrics {
        FleetMetrics {
            rollouts_committed: registry.counter(&labeled(
                "fleet_rollouts_total",
                &[("outcome", "committed")],
            )),
            rollouts_rolled_back: registry.counter(&labeled(
                "fleet_rollouts_total",
                &[("outcome", "rolled_back")],
            )),
            registry,
        }
    }

    /// The registry these handles record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Counter for one `(tenant, outcome)` pair:
    /// `fleet_requests_total{tenant="…",outcome="…"}`.
    pub fn request_counter(&self, tenant: &str, outcome: &str) -> Arc<Counter> {
        self.registry.counter(&labeled(
            "fleet_requests_total",
            &[("tenant", tenant), ("outcome", outcome)],
        ))
    }

    /// Ok-latency histogram for one tenant, microsecond ticks:
    /// `fleet_latency_us{tenant="…"}`.
    pub fn tenant_latency(&self, tenant: &str) -> Arc<Histogram> {
        self.registry
            .histogram(&labeled("fleet_latency_us", &[("tenant", tenant)]))
    }

    /// Ok-latency histogram for one model, microsecond ticks:
    /// `fleet_model_latency_us{model="…"}`.
    pub fn model_latency(&self, model: &str) -> Arc<Histogram> {
        self.registry
            .histogram(&labeled("fleet_model_latency_us", &[("model", model)]))
    }

    /// Counter for terminal rollout outcomes.
    pub fn rollout_counter(&self, committed: bool) -> &Counter {
        if committed {
            &self.rollouts_committed
        } else {
            &self.rollouts_rolled_back
        }
    }
}

/// The single recording point for fleet outcomes: event log and metrics
/// registry move together or not at all.
pub(crate) struct FleetSink {
    pub(crate) recorder: Arc<dyn Recorder + Send + Sync>,
    pub(crate) metrics: Option<FleetMetrics>,
}

impl std::fmt::Debug for FleetSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSink")
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl FleetSink {
    /// Records one terminal request outcome in both planes.
    pub(crate) fn request(&self, model: &str, tenant: &str, outcome: &str, latency_ms: f64) {
        if let Some(m) = &self.metrics {
            m.request_counter(tenant, outcome).inc();
            if outcome == "ok" {
                m.tenant_latency(tenant).record_f64(latency_ms * 1000.0);
                m.model_latency(model).record_f64(latency_ms * 1000.0);
            }
        }
        self.recorder.record(Event::FleetRequest {
            model: model.to_string(),
            tenant: tenant.to_string(),
            outcome: outcome.to_string(),
            latency_ms,
        });
    }

    /// Records one rollout phase transition; terminal phases also bump
    /// the rollout outcome counter.
    pub(crate) fn rollout(
        &self,
        model: &str,
        version: u32,
        from: Option<u32>,
        phase: &'static str,
        wall_ms: f64,
    ) {
        if let Some(m) = &self.metrics {
            match phase {
                "committed" => m.rollout_counter(true).inc(),
                "rolled_back" => m.rollout_counter(false).inc(),
                _ => {}
            }
        }
        self.recorder.record(Event::FleetRollout {
            model: model.to_string(),
            version,
            from,
            phase: phase.to_string(),
            wall_ms,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish_telemetry::MemoryRecorder;

    #[test]
    fn sink_keeps_events_and_counters_in_lockstep() {
        let reg = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(MemoryRecorder::new());
        let sink = FleetSink {
            recorder: recorder.clone(),
            metrics: Some(FleetMetrics::new(Arc::clone(&reg))),
        };
        sink.request("m1", "t0", "ok", 2.0);
        sink.request("m1", "t0", "ok", 4.0);
        sink.request("m1", "t1", "throttled", 0.0);
        sink.rollout("m1", 2, Some(1), "committed", 10.0);

        let events = recorder.events();
        let ok_events = events
            .iter()
            .filter(|e| matches!(e, Event::FleetRequest { outcome, .. } if outcome == "ok"))
            .count();
        let ok_counter = reg
            .counter(&labeled(
                "fleet_requests_total",
                &[("tenant", "t0"), ("outcome", "ok")],
            ))
            .get();
        assert_eq!(ok_events as u64, ok_counter);
        let throttled = reg
            .counter(&labeled(
                "fleet_requests_total",
                &[("tenant", "t1"), ("outcome", "throttled")],
            ))
            .get();
        assert_eq!(throttled, 1);
        let lat = FleetMetrics::new(Arc::clone(&reg))
            .tenant_latency("t0")
            .snapshot();
        assert_eq!(lat.count, 2);
        assert_eq!(
            reg.counter(&labeled(
                "fleet_rollouts_total",
                &[("outcome", "committed")]
            ))
            .get(),
            1
        );
    }
}
