//! Typed errors for the fleet layer.
//!
//! Same discipline as `cuttlefish-serve`: every failure a client or
//! operator can observe is a [`FleetError`] variant, and an admitted
//! request always resolves to exactly one terminal outcome. Rollout
//! failures are typed precisely enough for an operator to distinguish
//! "the new checkpoint is bad" ([`FleetError::VerificationFailed`]) from
//! "the new version misbehaved under real traffic"
//! ([`FleetError::HealthCheckFailed`]) — both of which leave the old
//! version serving.

use cuttlefish_nn::NnError;
use cuttlefish_serve::ServeError;
use std::error::Error;
use std::fmt;

/// Result alias for the fleet crate.
pub type FleetResult<T> = std::result::Result<T, FleetError>;

/// Error type for registry operations, rollouts, and fleet requests.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The request named a model id the registry has never deployed.
    UnknownModel {
        /// The unrecognized model id.
        model: String,
    },
    /// The operation named a version the model does not have.
    UnknownVersion {
        /// Model id.
        model: String,
        /// The version that does not exist.
        version: u32,
    },
    /// The model exists but no version is currently routable (its first
    /// rollout is still in flight or was rolled back).
    NoActiveVersion {
        /// Model id.
        model: String,
    },
    /// The tenant's token bucket is empty: admission control sheds the
    /// request at the fleet front door before it can occupy queue space.
    Throttled {
        /// Tenant whose quota was exhausted.
        tenant: String,
    },
    /// Another rollout for this model is already in flight; rollouts are
    /// serialized per model so the routing pointer has one writer.
    RolloutInProgress {
        /// Model id.
        model: String,
    },
    /// A rollout state machine was asked for a transition its current
    /// phase does not allow; the rollout logic itself is broken if this
    /// ever surfaces.
    IllegalTransition {
        /// Phase the machine was in.
        from: &'static str,
        /// Phase the caller asked for.
        to: &'static str,
    },
    /// The new version failed `Network::verify()` (or checkpoint restore)
    /// at freeze time. The rollout rolled back before the version was
    /// ever routable; the old version keeps serving.
    VerificationFailed {
        /// Model id.
        model: String,
        /// The version that failed.
        version: u32,
        /// Rendered verification / restore error.
        detail: String,
    },
    /// The new version passed verification but its post-shift health
    /// probe failed; traffic was shifted back to the old version.
    HealthCheckFailed {
        /// Model id.
        model: String,
        /// The version that failed.
        version: u32,
        /// Rendered probe error.
        detail: String,
    },
    /// An underlying serving operation failed; the wrapped error is the
    /// request's terminal outcome (overload, deadline, drain, …).
    Serve(ServeError),
    /// A checkpoint store operation (versioned save/load) failed.
    Checkpoint(NnError),
    /// Invalid fleet configuration (empty model id, zero quota, missing
    /// checkpoint store, …).
    BadConfig {
        /// Explanation of the invalid configuration.
        detail: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownModel { model } => {
                write!(f, "unknown model `{model}`")
            }
            FleetError::UnknownVersion { model, version } => {
                write!(f, "model `{model}` has no version {version}")
            }
            FleetError::NoActiveVersion { model } => {
                write!(f, "model `{model}` has no routable version")
            }
            FleetError::Throttled { tenant } => {
                write!(
                    f,
                    "tenant `{tenant}` is over its admission quota; retry later"
                )
            }
            FleetError::RolloutInProgress { model } => {
                write!(f, "a rollout for model `{model}` is already in flight")
            }
            FleetError::IllegalTransition { from, to } => {
                write!(f, "illegal rollout transition {from} -> {to}")
            }
            FleetError::VerificationFailed {
                model,
                version,
                detail,
            } => {
                write!(
                    f,
                    "model `{model}` v{version} failed verification, rolled back: {detail}"
                )
            }
            FleetError::HealthCheckFailed {
                model,
                version,
                detail,
            } => {
                write!(
                    f,
                    "model `{model}` v{version} failed its health probe, rolled back: {detail}"
                )
            }
            FleetError::Serve(e) => write!(f, "serving error: {e}"),
            FleetError::Checkpoint(e) => write!(f, "checkpoint store error: {e}"),
            FleetError::BadConfig { detail } => write!(f, "bad fleet configuration: {detail}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Serve(e) => Some(e),
            FleetError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

impl From<NnError> for FleetError {
    fn from(e: NnError) -> Self {
        FleetError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(FleetError::UnknownModel {
            model: "resnet".into()
        }
        .to_string()
        .contains("resnet"));
        assert!(FleetError::Throttled {
            tenant: "t7".into()
        }
        .to_string()
        .contains("t7"));
        assert!(FleetError::VerificationFailed {
            model: "m".into(),
            version: 3,
            detail: "shape".into()
        }
        .to_string()
        .contains("v3"));
        let e: FleetError = ServeError::ShuttingDown.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<FleetError>();
    }
}
