//! Per-tenant QoS: token-bucket admission quotas and deadline classes.
//!
//! Admission happens at the fleet front door, before a request touches
//! any model's queue, so one tenant's burst cannot occupy queue slots
//! that belong to others — the per-model bounded queues then provide
//! fair-share *across models* structurally (each model has its own
//! queue and worker pool), while the buckets provide fair-share *across
//! tenants* within the shared admission path.
//!
//! Deadline classes map tenants onto the serving layer's existing
//! dual-deadline enforcement ([`cuttlefish_serve::ServeError::DeadlineExceeded`]
//! is checked at dequeue and again at completion): admission stamps the
//! class's deadline onto the request, and the batcher does the rest.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{FleetError, FleetResult};

/// Latency class a tenant's requests are served under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineClass {
    /// Tight per-request deadline; late responses are dropped rather
    /// than delivered.
    Interactive,
    /// Moderate deadline for ordinary traffic.
    #[default]
    Standard,
    /// No deadline: throughput-oriented traffic that tolerates queueing.
    Batch,
}

impl DeadlineClass {
    /// The deadline stamped onto requests of this class, measured from
    /// admission. `None` means the request never expires.
    pub fn deadline(self) -> Option<Duration> {
        match self {
            DeadlineClass::Interactive => Some(Duration::from_millis(50)),
            DeadlineClass::Standard => Some(Duration::from_millis(500)),
            DeadlineClass::Batch => None,
        }
    }

    /// Stable lowercase name (for labels and reports).
    pub fn name(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Standard => "standard",
            DeadlineClass::Batch => "batch",
        }
    }
}

/// Admission policy for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPolicy {
    /// Deadline class stamped onto the tenant's requests.
    pub class: DeadlineClass,
    /// Sustained admission rate in requests per second.
    pub rate_per_sec: f64,
    /// Burst allowance: the token bucket's capacity. The bucket starts
    /// full, so a tenant may burst this many requests instantly.
    pub burst: f64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            class: DeadlineClass::Standard,
            rate_per_sec: 1000.0,
            burst: 100.0,
        }
    }
}

/// A classic token bucket: capacity `burst`, refilled continuously at
/// `rate_per_sec`, one token per admitted request.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket with the given burst capacity and refill rate.
    pub fn new(burst: f64, rate_per_sec: f64) -> TokenBucket {
        TokenBucket {
            capacity: burst.max(0.0),
            refill_per_sec: rate_per_sec.max(0.0),
            tokens: burst.max(0.0),
            last: Instant::now(),
        }
    }

    /// Tries to take one token now.
    pub fn try_take(&mut self) -> bool {
        self.try_take_at(Instant::now())
    }

    /// Tries to take one token at an explicit instant — the testable
    /// core: refills `elapsed · rate` (clamped to capacity), then admits
    /// iff at least one whole token is available.
    pub fn try_take_at(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostic).
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

struct TenantState {
    policy: TenantPolicy,
    bucket: TokenBucket,
}

/// The fleet front door's admission controller: one token bucket per
/// tenant, created on first sight from the default policy unless an
/// explicit policy was registered.
pub struct AdmissionController {
    default_policy: TenantPolicy,
    tenants: Mutex<BTreeMap<String, TenantState>>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("default_policy", &self.default_policy)
            .finish()
    }
}

impl AdmissionController {
    /// A controller that admits unknown tenants under `default_policy`.
    pub fn new(default_policy: TenantPolicy) -> AdmissionController {
        AdmissionController {
            default_policy,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers (or replaces) `tenant`'s policy; the bucket resets to
    /// full at the new capacity.
    pub fn set_policy(&self, tenant: &str, policy: TenantPolicy) {
        let mut tenants = self.lock();
        tenants.insert(
            tenant.to_string(),
            TenantState {
                policy,
                bucket: TokenBucket::new(policy.burst, policy.rate_per_sec),
            },
        );
    }

    /// The policy `tenant` is admitted under.
    pub fn policy(&self, tenant: &str) -> TenantPolicy {
        self.lock()
            .get(tenant)
            .map(|s| s.policy)
            .unwrap_or(self.default_policy)
    }

    /// Admits one request for `tenant`, charging its token bucket.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Throttled`] when the bucket is empty.
    pub fn admit(&self, tenant: &str) -> FleetResult<DeadlineClass> {
        let mut tenants = self.lock();
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                policy: self.default_policy,
                bucket: TokenBucket::new(
                    self.default_policy.burst,
                    self.default_policy.rate_per_sec,
                ),
            });
        if state.bucket.try_take() {
            Ok(state.policy.class)
        } else {
            Err(FleetError::Throttled {
                tenant: tenant.to_string(),
            })
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, TenantState>> {
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bursts_then_refills_at_rate() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(3.0, 10.0);
        // Burst: the full capacity is available immediately.
        assert!(b.try_take_at(t0));
        assert!(b.try_take_at(t0));
        assert!(b.try_take_at(t0));
        assert!(!b.try_take_at(t0), "capacity 3 admits exactly 3 instantly");
        // 100 ms at 10/s refills exactly one token.
        assert!(b.try_take_at(t0 + Duration::from_millis(100)));
        assert!(!b.try_take_at(t0 + Duration::from_millis(100)));
        // Refill clamps at capacity: a long idle stretch doesn't bank
        // more than `burst` tokens.
        let later = t0 + Duration::from_secs(60);
        for _ in 0..3 {
            assert!(b.try_take_at(later));
        }
        assert!(!b.try_take_at(later));
    }

    #[test]
    fn controller_throttles_per_tenant_independently() {
        let ctl = AdmissionController::new(TenantPolicy {
            class: DeadlineClass::Standard,
            rate_per_sec: 0.0,
            burst: 2.0,
        });
        ctl.set_policy(
            "vip",
            TenantPolicy {
                class: DeadlineClass::Interactive,
                rate_per_sec: 0.0,
                burst: 4.0,
            },
        );
        assert_eq!(ctl.admit("vip").unwrap(), DeadlineClass::Interactive);
        for _ in 0..2 {
            assert_eq!(ctl.admit("small").unwrap(), DeadlineClass::Standard);
        }
        // `small` exhausted its own bucket; `vip` is unaffected.
        assert!(matches!(
            ctl.admit("small"),
            Err(FleetError::Throttled { tenant }) if tenant == "small"
        ));
        for _ in 0..3 {
            ctl.admit("vip").unwrap();
        }
        assert!(matches!(
            ctl.admit("vip"),
            Err(FleetError::Throttled { .. })
        ));
    }

    #[test]
    fn deadline_classes_map_to_batcher_deadlines() {
        assert!(
            DeadlineClass::Interactive.deadline().unwrap()
                < DeadlineClass::Standard.deadline().unwrap()
        );
        assert_eq!(DeadlineClass::Batch.deadline(), None);
        assert_eq!(DeadlineClass::Interactive.name(), "interactive");
    }
}
