//! The rollout state machine: the single source of truth for what a
//! hot-swap is allowed to do next.
//!
//! A rollout moves a model from version `from` to `version` through a
//! fixed phase sequence:
//!
//! ```text
//! Loading ─▶ Verifying ─▶ Warming ─▶ Shifting ─▶ DrainingOld ─▶ Committed
//!    │           │           │           │            │
//!    └───────────┴───────────┴───────────┴────────────┴──▶ RolledBack
//! ```
//!
//! The machine is pure state — no clocks, no threads, no I/O — so the
//! same type drives the production registry
//! ([`crate::registry::ModelRegistry`]) and the `cuttlefish-check`
//! model-checker scenario that explores interleavings of routers against
//! a rollout. Two invariants are encoded here and model-checked there:
//!
//! * **No routing before verification**: [`RolloutMachine::routable`] is
//!   `false` until the machine has passed both `Verifying` (static
//!   `Network::verify()`) and `Warming` (a smoke forward pass on every
//!   replica) — a version becomes eligible for traffic only in
//!   `Shifting` and later.
//! * **Old replicas drain before join**: `DrainingOld` is reachable only
//!   from `Shifting`, i.e. only after the routing pointer moved, so the
//!   old version stops receiving new traffic before its workers are
//!   drained and joined; `Committed` is reachable only through
//!   `DrainingOld`.

use crate::error::{FleetError, FleetResult};

/// One phase of a rollout. Names match the `fleet_rollout` telemetry
/// event's `phase` strings (see [`RolloutPhase::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RolloutPhase {
    /// Reading the candidate checkpoint (from the store or memory).
    Loading,
    /// Restoring into a probe network and running `Network::verify()`.
    Verifying,
    /// Building per-worker replicas and smoke-forwarding each one.
    Warming,
    /// The routing pointer now targets the new version; both versions'
    /// workers are alive.
    Shifting,
    /// The old version no longer receives traffic; its queue is being
    /// drained and its workers joined.
    DrainingOld,
    /// Terminal success: the new version serves alone.
    Committed,
    /// Terminal failure: the old version (if any) kept or regained the
    /// routing pointer; the new version never serves again.
    RolledBack,
}

impl RolloutPhase {
    /// The telemetry string for this phase (the `fleet_rollout` event's
    /// `phase` field).
    pub fn name(self) -> &'static str {
        match self {
            RolloutPhase::Loading => "loading",
            RolloutPhase::Verifying => "verifying",
            RolloutPhase::Warming => "warming",
            RolloutPhase::Shifting => "shifting",
            RolloutPhase::DrainingOld => "draining_old",
            RolloutPhase::Committed => "committed",
            RolloutPhase::RolledBack => "rolled_back",
        }
    }

    /// The phase that follows this one on the success path, if any.
    fn successor(self) -> Option<RolloutPhase> {
        match self {
            RolloutPhase::Loading => Some(RolloutPhase::Verifying),
            RolloutPhase::Verifying => Some(RolloutPhase::Warming),
            RolloutPhase::Warming => Some(RolloutPhase::Shifting),
            RolloutPhase::Shifting => Some(RolloutPhase::DrainingOld),
            RolloutPhase::DrainingOld => Some(RolloutPhase::Committed),
            RolloutPhase::Committed | RolloutPhase::RolledBack => None,
        }
    }
}

/// The typed state machine for one rollout of one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutMachine {
    model: String,
    version: u32,
    from: Option<u32>,
    phase: RolloutPhase,
}

impl RolloutMachine {
    /// Starts a rollout of `model` to `version` in [`RolloutPhase::Loading`].
    /// `from` is the currently-active version (`None` for a model's first
    /// deployment).
    pub fn new(model: impl Into<String>, version: u32, from: Option<u32>) -> RolloutMachine {
        RolloutMachine {
            model: model.into(),
            version,
            from,
            phase: RolloutPhase::Loading,
        }
    }

    /// Model id under rollout.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Target version of the rollout.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Version active before the rollout began.
    pub fn from(&self) -> Option<u32> {
        self.from
    }

    /// Current phase.
    pub fn phase(&self) -> RolloutPhase {
        self.phase
    }

    /// `true` once the machine reached a terminal phase.
    pub fn terminal(&self) -> bool {
        matches!(
            self.phase,
            RolloutPhase::Committed | RolloutPhase::RolledBack
        )
    }

    /// `true` while the new version may receive traffic: only from
    /// [`RolloutPhase::Shifting`] onward on the success path — never
    /// before verification and warming completed, and never after a
    /// rollback.
    pub fn routable(&self) -> bool {
        matches!(
            self.phase,
            RolloutPhase::Shifting | RolloutPhase::DrainingOld | RolloutPhase::Committed
        )
    }

    /// `true` once the new version passed static verification (the
    /// machine advanced beyond [`RolloutPhase::Verifying`] on the success
    /// path).
    pub fn verified(&self) -> bool {
        matches!(
            self.phase,
            RolloutPhase::Warming
                | RolloutPhase::Shifting
                | RolloutPhase::DrainingOld
                | RolloutPhase::Committed
        )
    }

    /// Advances to the next phase on the success path and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::IllegalTransition`] from a terminal phase.
    pub fn advance(&mut self) -> FleetResult<RolloutPhase> {
        match self.phase.successor() {
            Some(next) => {
                self.phase = next;
                Ok(next)
            }
            None => Err(FleetError::IllegalTransition {
                from: self.phase.name(),
                to: "<next>",
            }),
        }
    }

    /// Moves to [`RolloutPhase::RolledBack`] from any non-terminal phase.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::IllegalTransition`] from a terminal phase —
    /// a committed rollout cannot be un-committed (that is a new
    /// rollout), and rolling back twice is a logic error.
    pub fn roll_back(&mut self) -> FleetResult<RolloutPhase> {
        if self.terminal() {
            return Err(FleetError::IllegalTransition {
                from: self.phase.name(),
                to: RolloutPhase::RolledBack.name(),
            });
        }
        self.phase = RolloutPhase::RolledBack;
        Ok(self.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_path_orders_phases_and_gates_routability() {
        let mut m = RolloutMachine::new("resnet", 2, Some(1));
        assert_eq!(m.phase(), RolloutPhase::Loading);
        assert!(!m.routable());
        assert!(!m.verified());

        assert_eq!(m.advance().unwrap(), RolloutPhase::Verifying);
        assert!(!m.routable(), "must not route while verifying");
        assert_eq!(m.advance().unwrap(), RolloutPhase::Warming);
        assert!(m.verified());
        assert!(!m.routable(), "must not route before warm-up completes");
        assert_eq!(m.advance().unwrap(), RolloutPhase::Shifting);
        assert!(m.routable());
        assert_eq!(m.advance().unwrap(), RolloutPhase::DrainingOld);
        assert!(m.routable());
        assert_eq!(m.advance().unwrap(), RolloutPhase::Committed);
        assert!(m.terminal());
        assert!(m.routable());
        assert!(matches!(
            m.advance(),
            Err(FleetError::IllegalTransition { .. })
        ));
    }

    #[test]
    fn rollback_is_reachable_from_every_live_phase_and_absorbs() {
        for steps in 0..5 {
            let mut m = RolloutMachine::new("m", 1, None);
            for _ in 0..steps {
                m.advance().unwrap();
            }
            m.roll_back().unwrap();
            assert_eq!(m.phase(), RolloutPhase::RolledBack);
            assert!(m.terminal());
            assert!(!m.routable(), "a rolled-back version must never route");
            assert!(matches!(
                m.roll_back(),
                Err(FleetError::IllegalTransition { .. })
            ));
            assert!(matches!(
                m.advance(),
                Err(FleetError::IllegalTransition { .. })
            ));
        }
    }

    #[test]
    fn committed_cannot_roll_back() {
        let mut m = RolloutMachine::new("m", 1, None);
        while !m.terminal() {
            m.advance().unwrap();
        }
        assert_eq!(m.phase(), RolloutPhase::Committed);
        assert!(matches!(
            m.roll_back(),
            Err(FleetError::IllegalTransition { .. })
        ));
    }

    #[test]
    fn phase_names_match_event_vocabulary() {
        let names: Vec<&str> = [
            RolloutPhase::Loading,
            RolloutPhase::Verifying,
            RolloutPhase::Warming,
            RolloutPhase::Shifting,
            RolloutPhase::DrainingOld,
            RolloutPhase::Committed,
            RolloutPhase::RolledBack,
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        assert_eq!(
            names,
            vec![
                "loading",
                "verifying",
                "warming",
                "shifting",
                "draining_old",
                "committed",
                "rolled_back"
            ]
        );
    }
}
