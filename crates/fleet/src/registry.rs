//! The model registry: model ids → versioned checkpoints → live servers,
//! with zero-downtime hot-swap rollouts and per-tenant admission.
//!
//! # Ownership
//!
//! The registry owns the replica lifecycle end to end: it builds and
//! smoke-tests replicas during warm-up, hands them to
//! [`Server::start_with_replicas`], holds every version's server in an
//! `Arc`, and drains retired versions through
//! [`Server::drain`] while clients still hold submission clones. The
//! serving layer never learns about versions; the registry's routing
//! pointer (one `active` version per model) is the only coupling.
//!
//! # Rollout path
//!
//! [`ModelRegistry::rollout`] drives the [`RolloutMachine`] through
//! `Loading → Verifying → Warming → Shifting → DrainingOld → Committed`:
//!
//! 1. **Loading/Verifying** — [`FrozenModel::freeze`] restores the
//!    checkpoint into a probe network and runs `Network::verify()`. A
//!    failure rolls back before the version was ever routable.
//! 2. **Warming** — every replica is built and smoke-forwarded on the
//!    calling thread; the server starts with warm replicas, so the first
//!    real request never pays construction cost.
//! 3. **Shifting** — the routing pointer swaps under the registry lock;
//!    a post-shift health probe runs one request through the new server.
//!    A probe failure swaps the pointer back (typed
//!    [`FleetError::HealthCheckFailed`]) and reject-drains the new
//!    version — the old version never stopped serving.
//! 4. **DrainingOld** — the old server drains gracefully: requests it
//!    admitted before the shift are served to completion, then its
//!    workers join. New traffic already flows to the new version, so
//!    clients observe no gap; a client that raced the shift and got a
//!    typed [`ServeError::ShuttingDown`] / [`ServeError::Draining`]
//!    rejection is retried once against the new routing pointer by
//!    [`ModelRegistry::call`].
//!
//! Every phase transition emits a `fleet_rollout` event, so the run
//! report can reconstruct the exact path (and its timing) of every
//! rollout, including rollbacks.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::Network;
use cuttlefish_serve::{DrainMode, FrozenModel, ResponseHandle, ServeError, Server, ServerConfig};
use cuttlefish_telemetry::{MetricsRegistry, NullRecorder, Recorder};

use crate::error::{FleetError, FleetResult};
use crate::metrics::{FleetMetrics, FleetSink};
use crate::qos::{AdmissionController, TenantPolicy};
use crate::rollout::RolloutMachine;

/// Lifecycle state of one deployed version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionState {
    /// Verified, warmed, and currently holding (or sharing) live workers.
    Serving,
    /// Drained and joined after a newer version took the routing pointer,
    /// or reject-drained by a rollback.
    Retired,
}

struct VersionRecord {
    server: Arc<Server>,
    state: VersionState,
}

struct ModelEntry {
    versions: BTreeMap<u32, VersionRecord>,
    /// The routing pointer: requests go to this version. `None` only
    /// while the model's first rollout is still in flight (or after it
    /// rolled back).
    active: Option<u32>,
    rollout_in_progress: bool,
}

/// A client's handle to one in-flight fleet request.
///
/// Dropping the ticket without waiting forfeits the response but the
/// outcome is still recorded when the ticket is waited; prefer
/// [`FleetTicket::wait`] (or [`ModelRegistry::call`], which also retries
/// across a concurrent rollout's drain).
#[derive(Debug)]
pub struct FleetTicket {
    handle: ResponseHandle,
    admitted: Instant,
    model: String,
    tenant: String,
    sink: Arc<crate::metrics::FleetSink>,
}

impl FleetTicket {
    /// Blocks until the request's terminal outcome, recording it in the
    /// event log and metrics registry (one record per admitted request).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Serve`] wrapping the typed serving outcome
    /// (deadline, drain, worker failure, …).
    pub fn wait(self) -> FleetResult<Vec<f32>> {
        let result = self.handle.wait();
        let latency_ms = self.admitted.elapsed().as_secs_f64() * 1e3;
        let outcome = match &result {
            Ok(_) => "ok",
            Err(ServeError::DeadlineExceeded { .. }) => "deadline",
            Err(ServeError::Draining) | Err(ServeError::ShuttingDown) => "draining",
            Err(ServeError::Overloaded { .. }) => "overloaded",
            Err(_) => "error",
        };
        self.sink
            .request(&self.model, &self.tenant, outcome, latency_ms);
        result.map_err(FleetError::from)
    }
}

/// The fleet registry. See the module docs for the rollout protocol.
pub struct ModelRegistry {
    models: Mutex<BTreeMap<String, ModelEntry>>,
    admission: AdmissionController,
    sink: Arc<FleetSink>,
    store: Option<PathBuf>,
    server_config: ServerConfig,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("store", &self.store)
            .field("server_config", &self.server_config)
            .finish()
    }
}

impl ModelRegistry {
    /// A registry with no telemetry, default QoS, and default server
    /// sizing — the zero-setup entry point for tests and examples.
    pub fn new() -> ModelRegistry {
        ModelRegistry::with_observability(Arc::new(NullRecorder), None)
    }

    /// A registry that emits `fleet_request` / `fleet_rollout` events
    /// through `recorder` and (optionally) records live labeled series
    /// into a metrics registry.
    pub fn with_observability(
        recorder: Arc<dyn Recorder + Send + Sync>,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> ModelRegistry {
        ModelRegistry {
            models: Mutex::new(BTreeMap::new()),
            admission: AdmissionController::new(TenantPolicy::default()),
            sink: Arc::new(FleetSink {
                recorder,
                metrics: metrics.map(FleetMetrics::new),
            }),
            store: None,
            server_config: ServerConfig::default(),
        }
    }

    /// Sets the on-disk checkpoint store used by
    /// [`ModelRegistry::publish`] and [`ModelRegistry::activate`].
    /// Artifacts are named `<model>-v<version>.ckpt.json` via the
    /// checkpoint layer's versioned naming.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> ModelRegistry {
        self.store = Some(dir.into());
        self
    }

    /// Sets the server sizing every deployed version starts with.
    pub fn with_server_config(mut self, config: ServerConfig) -> ModelRegistry {
        self.server_config = config;
        self
    }

    /// Sets the default admission policy for tenants without an explicit
    /// one.
    pub fn with_default_policy(mut self, policy: TenantPolicy) -> ModelRegistry {
        self.admission = AdmissionController::new(policy);
        self
    }

    /// Registers an explicit admission policy for one tenant.
    pub fn set_tenant_policy(&self, tenant: &str, policy: TenantPolicy) {
        self.admission.set_policy(tenant, policy);
    }

    /// Saves `checkpoint` into the store as the next version of `model`
    /// and returns that version number. Publishing does not deploy: the
    /// artifact becomes routable only after [`ModelRegistry::activate`].
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::BadConfig`] without a store, and
    /// [`FleetError::Checkpoint`] when the save fails.
    pub fn publish(&self, model: &str, checkpoint: &Checkpoint) -> FleetResult<u32> {
        let dir = self.store.as_ref().ok_or_else(|| FleetError::BadConfig {
            detail: "publish requires a checkpoint store (with_store)".to_string(),
        })?;
        let version = Checkpoint::latest_version(dir, model)?.unwrap_or(0) + 1;
        checkpoint.save_versioned(dir, model, version)?;
        Ok(version)
    }

    /// Loads `model` version `version` from the store and rolls it out
    /// (hot-swapping any currently active version).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::BadConfig`] without a store,
    /// [`FleetError::UnknownVersion`] when the artifact is missing, and
    /// everything [`ModelRegistry::rollout`] can return.
    pub fn activate(
        &self,
        model: &str,
        version: u32,
        builder: impl Fn() -> Network + Send + Sync + 'static,
    ) -> FleetResult<u32> {
        let dir = self.store.as_ref().ok_or_else(|| FleetError::BadConfig {
            detail: "activate requires a checkpoint store (with_store)".to_string(),
        })?;
        if !Checkpoint::list_versions(dir, model)?.contains(&version) {
            return Err(FleetError::UnknownVersion {
                model: model.to_string(),
                version,
            });
        }
        let ckpt = Checkpoint::load_versioned(dir, model, version)?;
        self.rollout_inner(model, builder, ckpt, Some(version))
    }

    /// Deploys `checkpoint` as the next version of `model`, hot-swapping
    /// any currently active version with zero downtime, and returns the
    /// new version number.
    ///
    /// On any failure the old version (if one was active) keeps or
    /// regains the routing pointer; the error names the phase that
    /// failed.
    ///
    /// # Errors
    ///
    /// * [`FleetError::RolloutInProgress`] — rollouts are serialized per
    ///   model.
    /// * [`FleetError::VerificationFailed`] — restore or
    ///   `Network::verify()` rejected the checkpoint (never routable).
    /// * [`FleetError::HealthCheckFailed`] — the post-shift probe failed;
    ///   traffic was shifted back.
    /// * [`FleetError::Serve`] — replica warm-up or server start failed.
    pub fn rollout(
        &self,
        model: &str,
        builder: impl Fn() -> Network + Send + Sync + 'static,
        checkpoint: Checkpoint,
    ) -> FleetResult<u32> {
        self.rollout_inner(model, builder, checkpoint, None)
    }

    fn rollout_inner(
        &self,
        model: &str,
        builder: impl Fn() -> Network + Send + Sync + 'static,
        checkpoint: Checkpoint,
        explicit_version: Option<u32>,
    ) -> FleetResult<u32> {
        if model.is_empty() {
            return Err(FleetError::BadConfig {
                detail: "model id must be non-empty".to_string(),
            });
        }
        let t0 = Instant::now();
        // Claim the per-model rollout slot and pick the version number.
        let (version, from) = {
            let mut models = self.lock();
            let entry = models
                .entry(model.to_string())
                .or_insert_with(|| ModelEntry {
                    versions: BTreeMap::new(),
                    active: None,
                    rollout_in_progress: false,
                });
            if entry.rollout_in_progress {
                return Err(FleetError::RolloutInProgress {
                    model: model.to_string(),
                });
            }
            let next = entry
                .versions
                .last_key_value()
                .map(|(v, _)| v + 1)
                .unwrap_or(1);
            let version = explicit_version.unwrap_or(next);
            if entry.versions.contains_key(&version) {
                return Err(FleetError::BadConfig {
                    detail: format!("model `{model}` already deployed version {version}"),
                });
            }
            entry.rollout_in_progress = true;
            (version, entry.active)
        };
        let mut machine = RolloutMachine::new(model, version, from);
        self.emit(&machine, t0);

        let result = self.drive_rollout(&mut machine, builder, checkpoint, t0);
        {
            let mut models = self.lock();
            if let Some(entry) = models.get_mut(model) {
                entry.rollout_in_progress = false;
                // A first deployment that rolled back leaves nothing to
                // route to; drop the placeholder entry so the model reads
                // as unknown rather than permanently empty.
                if result.is_err() && entry.versions.is_empty() {
                    models.remove(model);
                }
            }
        }
        result.map(|()| version)
    }

    /// The phase-by-phase body; any error here triggers the rollback
    /// transition (with the routing pointer already restored by the
    /// failing step itself).
    fn drive_rollout(
        &self,
        machine: &mut RolloutMachine,
        builder: impl Fn() -> Network + Send + Sync + 'static,
        checkpoint: Checkpoint,
        t0: Instant,
    ) -> FleetResult<()> {
        let model = machine.model().to_string();
        let version = machine.version();
        let from = machine.from();

        // Loading -> Verifying: freeze restores into a probe network and
        // runs Network::verify(); a bad checkpoint dies here, before any
        // replica or routing change exists.
        machine.advance()?;
        self.emit(machine, t0);
        let frozen = match FrozenModel::freeze(builder, checkpoint) {
            Ok(f) => f,
            Err(e) => {
                machine.roll_back()?;
                self.emit(machine, t0);
                return Err(FleetError::VerificationFailed {
                    model,
                    version,
                    detail: e.to_string(),
                });
            }
        };
        // Verifying -> Warming: build every replica and smoke-forward it
        // so the server starts with proven-warm workers.
        machine.advance()?;
        self.emit(machine, t0);
        let smoke = vec![0.0f32; frozen.input_width()];
        let workers = self.server_config.workers.max(1);
        let mut replicas = Vec::with_capacity(workers);
        for _ in 0..workers {
            let built = frozen.replica().and_then(|mut r| {
                r.infer_one(&smoke)?;
                Ok(r)
            });
            match built {
                Ok(r) => replicas.push(r),
                Err(e) => {
                    machine.roll_back()?;
                    self.emit(machine, t0);
                    return Err(FleetError::VerificationFailed {
                        model,
                        version,
                        detail: format!("replica warm-up failed: {e}"),
                    });
                }
            }
        }
        let server = match Server::start_with_replicas(
            replicas,
            self.server_config,
            Arc::clone(&self.sink.recorder),
            None,
        ) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                machine.roll_back()?;
                self.emit(machine, t0);
                return Err(FleetError::Serve(e));
            }
        };

        // Warming -> Shifting: install the version and move the routing
        // pointer under the lock. From this instant new submissions go to
        // the new server; the old one still finishes what it admitted.
        machine.advance()?;
        debug_assert!(machine.routable());
        let old_server = {
            let mut models = self.lock();
            let entry = models.get_mut(&model).ok_or(FleetError::UnknownModel {
                model: model.clone(),
            })?;
            entry.versions.insert(
                version,
                VersionRecord {
                    server: Arc::clone(&server),
                    state: VersionState::Serving,
                },
            );
            entry.active = Some(version);
            from.and_then(|v| entry.versions.get(&v).map(|r| Arc::clone(&r.server)))
        };
        self.emit(machine, t0);

        // Post-shift health probe: one request through the full serving
        // path of the new version. Failure swaps the pointer back and
        // reject-drains the new version — the old one never stopped.
        let probe = server
            .submit(smoke, None)
            .map_err(FleetError::from)
            .and_then(|h| h.wait().map_err(FleetError::from));
        if let Err(e) = probe {
            {
                let mut models = self.lock();
                if let Some(entry) = models.get_mut(&model) {
                    entry.active = from;
                    if let Some(rec) = entry.versions.get_mut(&version) {
                        rec.state = VersionState::Retired;
                    }
                }
            }
            let _ = server.drain(DrainMode::Reject);
            machine.roll_back()?;
            self.emit(machine, t0);
            return Err(FleetError::HealthCheckFailed {
                model,
                version,
                detail: e.to_string(),
            });
        }

        // Shifting -> DrainingOld: the old version serves out its queue,
        // then its workers join. Graceful mode means no admitted request
        // is rejected by the swap.
        machine.advance()?;
        self.emit(machine, t0);
        if let Some(old) = old_server {
            let _ = old.drain(DrainMode::Graceful);
            let mut models = self.lock();
            if let Some(entry) = models.get_mut(&model) {
                if let Some(v) = from {
                    if let Some(rec) = entry.versions.get_mut(&v) {
                        rec.state = VersionState::Retired;
                    }
                }
            }
        }

        machine.advance()?;
        self.emit(machine, t0);
        Ok(())
    }

    /// Submits one request for `tenant` to `model`'s active version.
    /// Admission charges the tenant's token bucket and stamps its
    /// deadline class onto the request; rejections at the door are
    /// recorded as terminal outcomes (`throttled`, `unknown_model`,
    /// `overloaded`, `draining`) so the event log accounts for every
    /// arrival.
    ///
    /// # Errors
    ///
    /// [`FleetError::Throttled`], [`FleetError::UnknownModel`],
    /// [`FleetError::NoActiveVersion`], or [`FleetError::Serve`] wrapping
    /// the admission rejection.
    pub fn submit(&self, model: &str, tenant: &str, row: Vec<f32>) -> FleetResult<FleetTicket> {
        let admitted = Instant::now();
        let class = match self.admission.admit(tenant) {
            Ok(c) => c,
            Err(e) => {
                self.sink.request(model, tenant, "throttled", 0.0);
                return Err(e);
            }
        };
        let server = match self.active_server(model) {
            Ok(s) => s,
            Err(e) => {
                self.sink.request(model, tenant, "unknown_model", 0.0);
                return Err(e);
            }
        };
        match server.submit(row, class.deadline()) {
            Ok(handle) => Ok(FleetTicket {
                handle,
                admitted,
                model: model.to_string(),
                tenant: tenant.to_string(),
                sink: Arc::clone(&self.sink),
            }),
            Err(e) => {
                let outcome = match &e {
                    ServeError::Overloaded { .. } => "overloaded",
                    ServeError::ShuttingDown | ServeError::Draining => "draining",
                    _ => "error",
                };
                self.sink.request(model, tenant, outcome, 0.0);
                Err(FleetError::Serve(e))
            }
        }
    }

    /// Submits and waits, retrying once when the request raced a
    /// rollout's drain (typed `ShuttingDown` / `Draining` rejections):
    /// the retry re-reads the routing pointer, which by then targets the
    /// replacement version. This is the client loop fleet_bench and the
    /// rollout tests use to demonstrate zero dropped requests across a
    /// hot swap.
    ///
    /// # Errors
    ///
    /// Everything [`ModelRegistry::submit`] and [`FleetTicket::wait`]
    /// return, after the one drain retry is spent.
    pub fn call(&self, model: &str, tenant: &str, row: Vec<f32>) -> FleetResult<Vec<f32>> {
        let first = self
            .submit(model, tenant, row.clone())
            .and_then(FleetTicket::wait);
        match first {
            Err(FleetError::Serve(ServeError::Draining))
            | Err(FleetError::Serve(ServeError::ShuttingDown)) => {
                self.submit(model, tenant, row).and_then(FleetTicket::wait)
            }
            other => other,
        }
    }

    /// The currently routable version of `model`, if any.
    pub fn active_version(&self, model: &str) -> Option<u32> {
        self.lock().get(model).and_then(|e| e.active)
    }

    /// All deployed versions of `model` with their lifecycle states,
    /// ascending.
    pub fn versions(&self, model: &str) -> Vec<(u32, VersionState)> {
        self.lock()
            .get(model)
            .map(|e| e.versions.iter().map(|(v, r)| (*v, r.state)).collect())
            .unwrap_or_default()
    }

    /// All model ids with at least one deployed version.
    pub fn models(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Queue depth of `model`'s active server (diagnostic).
    pub fn queue_depth(&self, model: &str) -> Option<usize> {
        self.active_server(model).ok().map(|s| s.queue_depth())
    }

    /// Drains every version of every model gracefully. The registry is
    /// unusable for submissions afterwards.
    pub fn drain_all(&self) {
        let servers: Vec<Arc<Server>> = {
            let mut models = self.lock();
            models
                .values_mut()
                .flat_map(|e| {
                    e.active = None;
                    e.versions.values_mut().map(|r| {
                        r.state = VersionState::Retired;
                        Arc::clone(&r.server)
                    })
                })
                .collect()
        };
        for s in servers {
            let _ = s.drain(DrainMode::Graceful);
        }
    }

    fn active_server(&self, model: &str) -> FleetResult<Arc<Server>> {
        let models = self.lock();
        let entry = models.get(model).ok_or_else(|| FleetError::UnknownModel {
            model: model.to_string(),
        })?;
        let active = entry.active.ok_or_else(|| FleetError::NoActiveVersion {
            model: model.to_string(),
        })?;
        entry
            .versions
            .get(&active)
            .map(|r| Arc::clone(&r.server))
            .ok_or(FleetError::UnknownVersion {
                model: model.to_string(),
                version: active,
            })
    }

    fn emit(&self, machine: &RolloutMachine, t0: Instant) {
        self.sink.rollout(
            machine.model(),
            machine.version(),
            machine.from(),
            machine.phase().name(),
            t0.elapsed().as_secs_f64() * 1e3,
        );
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, ModelEntry>> {
        self.models.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        ModelRegistry::new()
    }
}

impl Drop for ModelRegistry {
    /// Registries dropped without [`ModelRegistry::drain_all`] still
    /// resolve every admitted request (each server's own drop drains
    /// gracefully), but draining here makes the order deterministic.
    fn drop(&mut self) {
        self.drain_all();
    }
}
