//! The workspace lint analyzer (library half).
//!
//! A deliberately simple, std-only multi-pass line analyzer — no `syn`,
//! no proc-macro machinery. Pass 1 computes per-line *masks* (which
//! lines sit inside a `#[cfg(test)]`-gated item, tracked through brace
//! nesting so test modules in the middle of a file no longer hide the
//! code after them). Pass 2 runs the per-file rules against unmasked
//! lines. Pass 3 is global: allowlist entries that no scanned line can
//! still match are themselves violations, so the exception list can
//! only shrink as code is fixed.
//!
//! Rules:
//!
//! 1. `no-panic` — no `.unwrap()` / `.expect(` / `panic!` in non-test
//!    library code; binaries (`src/bin/`, `src/main.rs`) may crash on
//!    bad CLI input.
//! 2. `no-float-index` — no float→`usize` casts in tensor kernels.
//! 3. `pub-fn-docs` — every `pub fn` in the core library crates carries
//!    a doc comment.
//! 4. `layer-impl-complete` — every `impl Layer for …` defines both
//!    `forward` and `backward`.
//! 5. `unsafe-contract` — every `unsafe` block/fn/impl carries a
//!    `// SAFETY:` contract (or a `/// # Safety` doc section) in the
//!    contiguous comment/attribute block above it or on the same line.
//! 6. `relaxed-ordering` — `Ordering::Relaxed` outside the allowlisted
//!    metrics/kernel hot paths must justify itself with a `RELAXED:`
//!    comment at the site.
//! 7. `stale-allowlist` — an allowlist entry whose `(prefix, needle)`
//!    no longer matches any scanned non-test line fails the run.
//!
//! Allowlist format (`crates/lint/allowlist.txt`), one entry per line:
//! `prefix:needle` forgives all rules, `rule@prefix:needle` forgives
//! one rule, for lines in files under `prefix` that contain `needle`.

use std::fmt;

/// One lint violation, path-relative so output is stable across hosts.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule that fired.
    pub rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line (or a synthesized description).
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel,
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

/// One allowlist entry: `rule@prefix:needle` or `prefix:needle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Restricts the entry to one rule; `None` forgives any rule.
    pub rule: Option<String>,
    /// Repo-relative path prefix the entry applies to.
    pub prefix: String,
    /// Substring the forgiven line must contain.
    pub needle: String,
}

impl fmt::Display for Allow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rule {
            Some(r) => write!(f, "{r}@{}:{}", self.prefix, self.needle),
            None => write!(f, "{}:{}", self.prefix, self.needle),
        }
    }
}

/// Parses the allowlist text (comments `#`, blank lines skipped).
pub fn parse_allowlist(text: &str) -> Vec<Allow> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (scope, needle) = l.split_once(':')?;
            let (rule, prefix) = match scope.split_once('@') {
                Some((r, p)) => (Some(r.trim().to_string()), p),
                None => (None, scope),
            };
            Some(Allow {
                rule,
                prefix: prefix.trim().to_string(),
                needle: needle.trim().to_string(),
            })
        })
        .collect()
}

/// Whether `allows` forgives a `rule` violation on `line` of `rel`.
pub fn is_allowed(allows: &[Allow], rule: &str, rel: &str, line: &str) -> bool {
    allows.iter().any(|a| {
        a.rule.as_deref().is_none_or(|r| r == rule)
            && rel.starts_with(&a.prefix)
            && line.contains(&a.needle)
    })
}

/// Computes which lines sit inside a `#[cfg(test)]`-gated item.
///
/// The old scanner cut the file at the *first* `#[cfg(test)]` line,
/// silently skipping any code after a mid-file test module. This pass
/// instead tracks brace depth: when a `#[cfg(test)]` attribute is seen,
/// the next item's braces open a masked region that closes when depth
/// returns to the attribute's level — code after the module is scanned
/// again.
pub fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth = 0isize;
    // Depth at which the innermost active test region started.
    let mut region_start: Option<isize> = None;
    // A `#[cfg(test)]` was seen and its item hasn't opened braces yet.
    let mut pending = false;
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        let in_region = region_start.is_some();
        if trimmed.starts_with("#[cfg(test)]") && !in_region {
            pending = true;
        }
        if pending || in_region {
            mask[i] = true;
        }
        let mut opened_this_line = false;
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending {
                        region_start = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                    opened_this_line = true;
                }
                '}' => {
                    depth -= 1;
                    if region_start.is_some_and(|d| depth <= d) {
                        region_start = None;
                    }
                }
                _ => {}
            }
        }
        // `#[cfg(test)] mod tests;` / `use` — attribute consumed by an
        // item with no body.
        if pending && !opened_this_line && trimmed.ends_with(';') {
            pending = false;
        }
    }
    mask
}

fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with("//")
}

fn is_attr(trimmed: &str) -> bool {
    trimmed.starts_with("#[") || trimmed.starts_with("#!")
}

/// Whether the contiguous comment/attribute block directly above line
/// `i` (or line `i` itself) contains `marker`.
fn block_above_contains(lines: &[&str], i: usize, marker: &str) -> bool {
    if lines[i].contains(marker) {
        return true;
    }
    for prev in lines[..i].iter().rev() {
        let p = prev.trim();
        if is_comment(p) {
            if p.contains(marker) {
                return true;
            }
        } else if !is_attr(p) {
            return false;
        }
    }
    false
}

fn push(out: &mut Vec<Violation>, rule: &'static str, rel: &str, i: usize, line: &str) {
    out.push(Violation {
        rule,
        rel: rel.to_string(),
        line: i + 1,
        excerpt: line.to_string(),
    });
}

/// Rule 1: panicking constructs in library code.
fn check_panics(rel: &str, lines: &[&str], mask: &[bool], out: &mut Vec<Violation>) {
    const NEEDLES: [&str; 3] = [".unwrap()", ".expect(", "panic!"];
    for (i, line) in lines.iter().enumerate() {
        if mask[i] || is_comment(line.trim()) {
            continue;
        }
        if NEEDLES.iter().any(|n| line.contains(n)) {
            push(out, "no-panic", rel, i, line);
        }
    }
}

/// Rule 2: float→usize casts in tensor kernels.
fn check_float_casts(rel: &str, lines: &[&str], mask: &[bool], out: &mut Vec<Violation>) {
    const NEEDLES: [&str; 6] = [
        "f32 as usize",
        "f64 as usize",
        ".round() as usize",
        ".floor() as usize",
        ".ceil() as usize",
        ".sqrt() as usize",
    ];
    for (i, line) in lines.iter().enumerate() {
        if mask[i] || is_comment(line.trim()) {
            continue;
        }
        if NEEDLES.iter().any(|n| line.contains(n)) {
            push(out, "no-float-index", rel, i, line);
        }
    }
}

/// Rule 3: doc comments on `pub fn`.
fn check_pub_fn_docs(rel: &str, lines: &[&str], mask: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let trimmed = line.trim();
        if !(trimmed.starts_with("pub fn ") || trimmed.starts_with("pub const fn ")) {
            continue;
        }
        let mut documented = false;
        for prev in lines[..i].iter().rev() {
            let p = prev.trim();
            if p.starts_with("///") {
                documented = true;
                break;
            }
            if is_attr(p) {
                continue;
            }
            break;
        }
        if !documented {
            push(out, "pub-fn-docs", rel, i, line);
        }
    }
}

/// Rule 4: every `impl Layer for …` block defines `forward`/`backward`.
fn check_layer_impls(rel: &str, lines: &[&str], mask: &[bool], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim();
        if mask[i] || !trimmed.starts_with("impl Layer for ") {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0isize;
        let mut body = String::new();
        let mut opened = false;
        while i < lines.len() {
            for ch in lines[i].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            body.push_str(lines[i]);
            body.push('\n');
            if opened && depth == 0 {
                break;
            }
            i += 1;
        }
        for required in ["fn forward", "fn backward"] {
            if !body.contains(required) {
                out.push(Violation {
                    rule: "layer-impl-complete",
                    rel: rel.to_string(),
                    line: start + 1,
                    excerpt: format!("{trimmed} … missing `{required}`"),
                });
            }
        }
        i += 1;
    }
}

/// Rule 5: `unsafe` requires a written safety contract.
///
/// Matches `unsafe fn` / `unsafe {` / `unsafe impl` / `unsafe trait`
/// outside attributes (so `#![forbid(unsafe_code)]` and
/// `#[deny(unsafe_op_in_unsafe_fn)]` don't trip it). The contract is a
/// `// SAFETY:` comment (for blocks) or a `/// # Safety` doc section
/// (for `unsafe fn` signatures) in the contiguous block above, or an
/// inline comment on the same line.
fn check_unsafe_contracts(rel: &str, lines: &[&str], mask: &[bool], out: &mut Vec<Violation>) {
    const FORMS: [&str; 4] = ["unsafe fn", "unsafe {", "unsafe impl", "unsafe trait"];
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if mask[i] || is_comment(trimmed) || is_attr(trimmed) {
            continue;
        }
        if !FORMS.iter().any(|f| line.contains(f)) {
            continue;
        }
        let has_contract =
            block_above_contains(lines, i, "SAFETY:") || block_above_contains(lines, i, "# Safety");
        if !has_contract {
            push(out, "unsafe-contract", rel, i, line);
        }
    }
}

/// Rule 6: `Ordering::Relaxed` must justify itself at the site with a
/// `RELAXED:` comment, unless the file/line is allowlisted (the metrics
/// and kernel hot paths, where per-site comments would be noise).
fn check_relaxed_ordering(rel: &str, lines: &[&str], mask: &[bool], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if mask[i] || is_comment(trimmed) {
            continue;
        }
        if !line.contains("Ordering::Relaxed") {
            continue;
        }
        if !block_above_contains(lines, i, "RELAXED:") {
            push(out, "relaxed-ordering", rel, i, line);
        }
    }
}

/// Analyzes one file's source, returning raw (pre-allowlist)
/// violations. `rel` is the repo-relative path with `/` separators;
/// rule applicability is dispatched on it exactly as the binary does.
pub fn analyze_source(rel: &str, text: &str) -> Vec<Violation> {
    let lines: Vec<&str> = text.lines().collect();
    let mask = test_mask(&lines);
    let mut out = Vec::new();
    let in_bin = rel.contains("/bin/") || rel.ends_with("/src/main.rs");
    if !in_bin {
        check_panics(rel, &lines, &mask, &mut out);
    }
    if rel.starts_with("crates/tensor/src") {
        check_float_casts(rel, &lines, &mask, &mut out);
    }
    if [
        "crates/check/src",
        "crates/core/src",
        "crates/dist/src",
        "crates/fleet/src",
        "crates/nn/src",
        "crates/serve/src",
        "crates/tensor/src",
    ]
    .iter()
    .any(|p| rel.starts_with(p))
        && !in_bin
    {
        check_pub_fn_docs(rel, &lines, &mask, &mut out);
    }
    if rel.starts_with("crates/nn/src/layers") {
        check_layer_impls(rel, &lines, &mask, &mut out);
    }
    check_unsafe_contracts(rel, &lines, &mask, &mut out);
    check_relaxed_ordering(rel, &lines, &mask, &mut out);
    out
}

/// Rule 7: allowlist entries must still be live. An entry is *stale*
/// when no scanned file both matches its prefix and contains its
/// needle on a non-test line — the exception it was written for is
/// gone, so the entry must be deleted before it silently forgives
/// something new.
pub fn stale_entries<'a>(allows: &'a [Allow], files: &[(String, String)]) -> Vec<&'a Allow> {
    allows
        .iter()
        .filter(|a| {
            !files.iter().any(|(rel, text)| {
                if !rel.starts_with(&a.prefix) {
                    return false;
                }
                let lines: Vec<&str> = text.lines().collect();
                let mask = test_mask(&lines);
                lines
                    .iter()
                    .enumerate()
                    .any(|(i, l)| !mask[i] && l.contains(&a.needle))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn mid_file_test_module_no_longer_hides_later_code() {
        // Regression for the "stop at first #[cfg(test)]" heuristic: the
        // unwrap after the test module must be caught.
        let src = "\
pub struct A;

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = Some(1).unwrap();
    }
}

fn later() {
    let _ = Some(2).unwrap();
}
";
        let vs = analyze_source("crates/nn/src/x.rs", src);
        assert_eq!(rules(&vs), vec!["no-panic"]);
        assert_eq!(vs[0].line, 12, "must flag the post-module unwrap only");
    }

    #[test]
    fn nested_braces_inside_test_module_stay_masked() {
        let src = "\
#[cfg(test)]
mod tests {
    fn helper() {
        if true {
            let _ = Some(1).unwrap();
        }
    }
}
";
        let vs = analyze_source("crates/nn/src/x.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn cfg_test_on_bodyless_item_does_not_mask_the_rest_of_the_file() {
        let src = "\
#[cfg(test)]
use std::collections::HashMap;

fn live() {
    let _ = Some(1).unwrap();
}
";
        let vs = analyze_source("crates/nn/src/x.rs", src);
        assert_eq!(rules(&vs), vec!["no-panic"]);
    }

    #[test]
    fn unsafe_without_contract_is_flagged_and_with_contract_passes() {
        let bad = "\
fn f(p: *const f32) -> f32 {
    unsafe { *p }
}
";
        let vs = analyze_source("crates/tensor/src/kernel/y.rs", bad);
        assert_eq!(rules(&vs), vec!["unsafe-contract"]);

        let good = "\
fn f(p: *const f32) -> f32 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
";
        assert!(analyze_source("crates/tensor/src/kernel/y.rs", good).is_empty());
    }

    #[test]
    fn unsafe_fn_with_safety_doc_section_passes() {
        let src = "\
/// Does pointer things.
///
/// # Safety
///
/// `p` must be valid for `n` reads.
/// And aligned.
pub unsafe fn g(p: *const f32, n: usize) {}
";
        let vs = analyze_source("crates/tensor/src/kernel/y.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn unsafe_attrs_do_not_trip_the_contract_rule() {
        let src = "\
#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

fn fine() {}
";
        assert!(analyze_source("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_ordering_requires_site_justification() {
        let bad = "\
fn f(a: &std::sync::atomic::AtomicU64) {
    a.store(1, Ordering::Relaxed);
}
";
        let vs = analyze_source("crates/serve/src/x.rs", bad);
        assert_eq!(rules(&vs), vec!["relaxed-ordering"]);

        let good = "\
fn f(a: &std::sync::atomic::AtomicU64) {
    // RELAXED: independent tally, no happens-before needed.
    a.store(1, Ordering::Relaxed);
}
";
        assert!(analyze_source("crates/serve/src/x.rs", good).is_empty());
    }

    #[test]
    fn rule_scoped_allowlist_forgives_only_its_rule() {
        let allows =
            parse_allowlist("relaxed-ordering@crates/telemetry/src/metrics.rs:Ordering::Relaxed\n");
        assert!(is_allowed(
            &allows,
            "relaxed-ordering",
            "crates/telemetry/src/metrics.rs",
            "x.load(Ordering::Relaxed)",
        ));
        assert!(!is_allowed(
            &allows,
            "no-panic",
            "crates/telemetry/src/metrics.rs",
            "x.load(Ordering::Relaxed).unwrap()",
        ));
        assert!(!is_allowed(
            &allows,
            "relaxed-ordering",
            "crates/serve/src/queue.rs",
            "x.load(Ordering::Relaxed)",
        ));
    }

    #[test]
    fn unscoped_allowlist_forgives_any_rule() {
        let allows = parse_allowlist("crates/nn/src/x.rs:launder(\n");
        assert!(is_allowed(
            &allows,
            "no-panic",
            "crates/nn/src/x.rs",
            "launder(v).unwrap()"
        ));
        assert!(is_allowed(
            &allows,
            "pub-fn-docs",
            "crates/nn/src/x.rs",
            "pub fn launder("
        ));
    }

    #[test]
    fn stale_allowlist_entries_are_reported() {
        let allows =
            parse_allowlist("crates/nn/src/x.rs:still_here(\ncrates/nn/src/x.rs:long_gone(\n");
        let files = vec![(
            "crates/nn/src/x.rs".to_string(),
            "fn still_here() {}\n".to_string(),
        )];
        let stale = stale_entries(&allows, &files);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].needle, "long_gone(");
    }

    #[test]
    fn needle_only_in_test_code_counts_as_stale() {
        let allows = parse_allowlist("crates/nn/src/x.rs:only_in_tests(\n");
        let files = vec![(
            "crates/nn/src/x.rs".to_string(),
            "#[cfg(test)]\nmod tests {\n    fn t() { only_in_tests(); }\n}\n".to_string(),
        )];
        assert_eq!(stale_entries(&allows, &files).len(), 1);
    }

    #[test]
    fn binaries_are_exempt_from_no_panic_but_not_unsafe_contract() {
        let src = "\
fn main() {
    let x: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap();
    let _ = unsafe { core::mem::transmute::<u32, i32>(x) };
}
";
        let vs = analyze_source("crates/serve/src/main.rs", src);
        assert_eq!(rules(&vs), vec!["unsafe-contract"]);
    }
}
