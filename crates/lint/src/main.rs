//! Workspace lint pass: `cargo run -p cuttlefish-lint`.
//!
//! A deliberately simple, std-only line scanner (no `syn`, no proc-macro
//! machinery) that enforces the conventions the compiler cannot:
//!
//! 1. **No `unwrap()`/`expect(`/`panic!` in non-test library code.**
//!    Library crates propagate typed errors; the curated exceptions live
//!    in `crates/lint/allowlist.txt`.
//! 2. **No float→`usize` casts in tensor kernels.** A silent `as usize`
//!    on a float truncates NaN to 0 and hides shape bugs; kernels must
//!    compute indices in integer arithmetic.
//! 3. **Doc comments on every `pub fn`** in the core, nn, serve, and
//!    tensor crates (extends `#![warn(missing_docs)]` to items the
//!    compiler skips, and makes it an error).
//! 4. **Every `impl Layer for …` defines both `forward` and `backward`.**
//!    A layer relying on a default/stub for either would silently break
//!    training.
//!
//! Scanning stops at the first `#[cfg(test)]` line of a file (the repo
//! convention keeps test modules at the end), and `src/bin/` trees are
//! exempt from rule 1 — binaries may crash on bad CLI input.
//!
//! Exit status is non-zero when any violation is found, so CI can gate on
//! it. The allowlist format is `path-prefix:needle` per line: a violating
//! line is forgiven when its file path starts with the prefix and the
//! line contains the needle.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint violation.
struct Violation {
    rule: &'static str,
    file: PathBuf,
    line: usize,
    excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

/// One `path-prefix:needle` allowlist entry.
struct Allow {
    prefix: String,
    needle: String,
}

fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (prefix, needle) = l.split_once(':')?;
            Some(Allow {
                prefix: prefix.trim().to_string(),
                needle: needle.trim().to_string(),
            })
        })
        .collect()
}

fn is_allowed(allows: &[Allow], rel: &str, line: &str) -> bool {
    allows
        .iter()
        .any(|a| rel.starts_with(&a.prefix) && line.contains(&a.needle))
}

/// Collects every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Whether a trimmed line is a comment (line, doc, or inner doc).
fn is_comment(trimmed: &str) -> bool {
    trimmed.starts_with("//")
}

/// Rule 1: panicking constructs in library code.
fn check_panics(lines: &[&str], out: &mut Vec<Violation>, file: &Path) {
    const NEEDLES: [&str; 3] = [".unwrap()", ".expect(", "panic!"];
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if is_comment(trimmed) {
            continue;
        }
        if NEEDLES.iter().any(|n| line.contains(n)) {
            out.push(Violation {
                rule: "no-panic",
                file: file.to_path_buf(),
                line: i + 1,
                excerpt: (*line).to_string(),
            });
        }
    }
}

/// Rule 2: float→usize casts in tensor kernels.
fn check_float_casts(lines: &[&str], out: &mut Vec<Violation>, file: &Path) {
    const NEEDLES: [&str; 6] = [
        "f32 as usize",
        "f64 as usize",
        ".round() as usize",
        ".floor() as usize",
        ".ceil() as usize",
        ".sqrt() as usize",
    ];
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if is_comment(trimmed) {
            continue;
        }
        if NEEDLES.iter().any(|n| line.contains(n)) {
            out.push(Violation {
                rule: "no-float-index",
                file: file.to_path_buf(),
                line: i + 1,
                excerpt: (*line).to_string(),
            });
        }
    }
}

/// Rule 3: doc comments on `pub fn`.
///
/// A `pub fn` must have at least one `///` line in the contiguous block of
/// doc comments and attributes immediately above it.
fn check_pub_fn_docs(lines: &[&str], out: &mut Vec<Violation>, file: &Path) {
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if !(trimmed.starts_with("pub fn ") || trimmed.starts_with("pub const fn ")) {
            continue;
        }
        let mut documented = false;
        for prev in lines[..i].iter().rev() {
            let p = prev.trim();
            if p.starts_with("///") {
                documented = true;
                break;
            }
            // Attributes and macro-ish lines between the docs and the fn
            // are fine; anything else terminates the block.
            if p.starts_with("#[") || p.starts_with("#!") {
                continue;
            }
            break;
        }
        if !documented {
            out.push(Violation {
                rule: "pub-fn-docs",
                file: file.to_path_buf(),
                line: i + 1,
                excerpt: (*line).to_string(),
            });
        }
    }
}

/// Rule 4: every `impl Layer for …` block defines `forward` and `backward`.
fn check_layer_impls(lines: &[&str], out: &mut Vec<Violation>, file: &Path) {
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim();
        if trimmed.starts_with("impl Layer for ") {
            let start = i;
            let mut depth = 0isize;
            let mut body = String::new();
            let mut opened = false;
            while i < lines.len() {
                for ch in lines[i].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                body.push_str(lines[i]);
                body.push('\n');
                if opened && depth == 0 {
                    break;
                }
                i += 1;
            }
            for required in ["fn forward", "fn backward"] {
                if !body.contains(required) {
                    out.push(Violation {
                        rule: "layer-impl-complete",
                        file: file.to_path_buf(),
                        line: start + 1,
                        excerpt: format!("{trimmed} … missing `{required}`"),
                    });
                }
            }
        }
        i += 1;
    }
}

fn main() -> ExitCode {
    // crates/lint/Cargo.toml → repo root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let allows = load_allowlist(&root.join("crates/lint/allowlist.txt"));

    // Library source trees: every crate's src/ plus the root package's.
    let mut files = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crates.sort();
        for c in crates {
            // The lint tool does not lint itself: its own scanner lines
            // contain the very needles it searches for.
            if c.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            rust_files(&c.join("src"), &mut files);
        }
    }
    rust_files(&root.join("src"), &mut files);

    let mut violations: Vec<Violation> = Vec::new();
    for file in &files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        // Scan only up to the test module; repo convention keeps
        // `#[cfg(test)] mod tests` at the end of each file.
        let all: Vec<&str> = text.lines().collect();
        let cut = all
            .iter()
            .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
            .unwrap_or(all.len());
        let lines = &all[..cut];

        let mut found: Vec<Violation> = Vec::new();
        let in_bin = rel.contains("/bin/");
        if !in_bin {
            check_panics(lines, &mut found, file);
        }
        if rel.starts_with("crates/tensor/src") {
            check_float_casts(lines, &mut found, file);
        }
        if [
            "crates/core/src",
            "crates/dist/src",
            "crates/nn/src",
            "crates/serve/src",
            "crates/tensor/src",
        ]
        .iter()
        .any(|p| rel.starts_with(p))
            && !in_bin
        {
            check_pub_fn_docs(lines, &mut found, file);
        }
        if rel.starts_with("crates/nn/src/layers") {
            check_layer_impls(lines, &mut found, file);
        }
        violations.extend(
            found
                .into_iter()
                .filter(|v| !is_allowed(&allows, &rel, &v.excerpt)),
        );
    }

    if violations.is_empty() {
        println!(
            "cuttlefish-lint: {} files clean ({} allowlist entries)",
            files.len(),
            allows.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("cuttlefish-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
