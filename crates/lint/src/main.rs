//! Workspace lint pass: `cargo run -p cuttlefish-lint`.
//!
//! Thin filesystem driver over the analyzer in `cuttlefish_lint`: walks
//! every crate's `src/` tree (plus the root package's), runs the
//! per-file rules, applies the allowlist, then checks the allowlist
//! itself for stale entries. Non-zero exit on any violation so CI can
//! gate on it. See the library crate docs for the rule catalogue and
//! the `rule@prefix:needle` allowlist format.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cuttlefish_lint::{analyze_source, is_allowed, parse_allowlist, stale_entries, Violation};

/// Collects every `.rs` file under `dir`, recursively, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() -> ExitCode {
    // crates/lint/Cargo.toml → repo root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let allow_text = fs::read_to_string(root.join("crates/lint/allowlist.txt")).unwrap_or_default();
    let allows = parse_allowlist(&allow_text);

    // Library source trees: every crate's src/ plus the root package's.
    let mut paths = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        crates.sort();
        for c in crates {
            // The lint tool does not lint itself: its own scanner lines
            // contain the very needles it searches for.
            if c.file_name().is_some_and(|n| n == "lint") {
                continue;
            }
            rust_files(&c.join("src"), &mut paths);
        }
    }
    rust_files(&root.join("src"), &mut paths);

    let files: Vec<(String, String)> = paths
        .iter()
        .filter_map(|p| {
            let text = fs::read_to_string(p).ok()?;
            let rel = p
                .strip_prefix(&root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            Some((rel, text))
        })
        .collect();

    let mut violations: Vec<Violation> = Vec::new();
    for (rel, text) in &files {
        violations.extend(
            analyze_source(rel, text)
                .into_iter()
                .filter(|v| !is_allowed(&allows, v.rule, rel, &v.excerpt)),
        );
    }
    for stale in stale_entries(&allows, &files) {
        violations.push(Violation {
            rule: "stale-allowlist",
            rel: "crates/lint/allowlist.txt".to_string(),
            line: 0,
            excerpt: format!("entry `{stale}` no longer matches any scanned line — delete it"),
        });
    }

    if violations.is_empty() {
        println!(
            "cuttlefish-lint: {} files clean ({} allowlist entries)",
            files.len(),
            allows.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("cuttlefish-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
