//! Seeded synthetic dataset generators for the Cuttlefish reproduction.
//!
//! The paper evaluates on CIFAR-10/100, SVHN, ImageNet, the GLUE benchmark
//! and Wikipedia/BookCorpus pre-training. None of those datasets are
//! available in this environment, so this crate generates *synthetic
//! equivalents* with controllable difficulty:
//!
//! * [`vision`] — Gaussian-prototype image classification. Each class has a
//!   smooth spatial prototype; samples mix prototype, a shared background,
//!   and pixel noise, with flip/shift augmentation. Presets mirror the
//!   paper's difficulty ordering (SVHN easier than CIFAR-10, CIFAR-100 and
//!   ImageNet harder with more classes).
//! * [`text`] — class-conditioned Markov-chain token sequences forming a
//!   GLUE-like suite of eight tasks (including an STS-B-style regression
//!   task scored by Spearman correlation) plus metric helpers.
//! * [`mlm`] — a masked-language-model stream for BERT-style pre-training.
//! * [`batch`] — seeded shuffled mini-batching.
//!
//! Everything is deterministic given a seed, so experiments are exactly
//! reproducible. Why the substitution is faithful: Cuttlefish's phenomena
//! (stable-rank stabilization during training, low-rank compressibility of
//! learned weights, accuracy/size trade-offs) are properties of gradient
//! descent on structured data, not of specific pixels; the generators keep
//! the structure while letting tests run in milliseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod mlm;
pub mod text;
pub mod vision;

pub use batch::shuffled_batches;
pub use mlm::MlmStream;
pub use text::{glue_suite, GlueTask, Labels, Metric};
pub use vision::{VisionSpec, VisionTask};
