//! Synthetic GLUE-like text-classification suite.
//!
//! Each task draws token sequences from class-conditioned Markov chains
//! over a shared vocabulary. Tasks differ in class count, sample budget,
//! and how close the class chains are (difficulty), mirroring the real
//! GLUE suite's spread (large MNLI/QQP, tiny RTE/MRPC/CoLA, and the
//! regression task STS-B scored by Spearman correlation).

use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The evaluation metric a task reports (paper Table 4: accuracy for most,
/// F1 for QQP/MRPC, Spearman for STS-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Fraction of correct argmax predictions.
    Accuracy,
    /// F1 of the positive class (binary tasks).
    F1,
    /// Spearman rank correlation of predicted scores vs. targets.
    Spearman,
}

/// Task labels: integer classes or continuous scores.
#[derive(Debug, Clone, PartialEq)]
pub enum Labels {
    /// Classification labels.
    Classes(Vec<usize>),
    /// Regression targets in `[0, 1]`.
    Scores(Vec<f32>),
}

impl Labels {
    /// Number of labeled samples.
    pub fn len(&self) -> usize {
        match self {
            Labels::Classes(v) => v.len(),
            Labels::Scores(v) => v.len(),
        }
    }

    /// Whether the label set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A synthetic GLUE-style task.
#[derive(Debug, Clone)]
pub struct GlueTask {
    /// Task name (mirrors the paper's Table 4 columns).
    pub name: &'static str,
    /// Output width of the model head (classes, or 1 for regression).
    pub classes: usize,
    /// Reported metric.
    pub metric: Metric,
    /// Token-id matrices `(B, T)` for training.
    pub train_x: Matrix,
    /// Training labels.
    pub train_labels: Labels,
    /// Token-id matrices for validation.
    pub val_x: Matrix,
    /// Validation labels.
    pub val_labels: Labels,
}

struct TaskSpec {
    name: &'static str,
    classes: usize,
    metric: Metric,
    train_n: usize,
    val_n: usize,
    /// Chain separation; lower is harder.
    sep: f32,
}

/// Per-class Markov transition tables.
fn class_chains(classes: usize, vocab: usize, sep: f32, rng: &mut StdRng) -> Vec<Vec<Vec<f32>>> {
    // Shared base chain plus class-specific perturbation of strength `sep`.
    let base: Vec<Vec<f32>> = (0..vocab)
        .map(|_| {
            let row: Vec<f32> = (0..vocab).map(|_| rng.gen_range(0.05f32..1.0)).collect();
            normalize(row)
        })
        .collect();
    (0..classes)
        .map(|_| {
            base.iter()
                .map(|row| {
                    let perturbed: Vec<f32> = row
                        .iter()
                        .map(|&p| (p + sep * rng.gen_range(0.0f32..1.0)).max(1e-4))
                        .collect();
                    normalize(perturbed)
                })
                .collect()
        })
        .collect()
}

fn normalize(mut row: Vec<f32>) -> Vec<f32> {
    let s: f32 = row.iter().sum();
    for v in &mut row {
        *v /= s;
    }
    row
}

fn sample_seq(chain: &[Vec<f32>], len: usize, rng: &mut StdRng) -> Vec<usize> {
    let vocab = chain.len();
    let mut tok = rng.gen_range(0..vocab);
    let mut out = Vec::with_capacity(len);
    out.push(tok);
    for _ in 1..len {
        let r: f32 = rng.gen();
        let mut acc = 0.0;
        let mut next = vocab - 1;
        for (j, &p) in chain[tok].iter().enumerate() {
            acc += p;
            if r <= acc {
                next = j;
                break;
            }
        }
        tok = next;
        out.push(tok);
    }
    out
}

fn seqs_to_matrix(seqs: &[Vec<usize>]) -> Matrix {
    let t = seqs[0].len();
    Matrix::from_fn(seqs.len(), t, |i, j| seqs[i][j] as f32)
}

/// Generates the full eight-task suite over a shared `vocab`/`seq_len`.
pub fn glue_suite(vocab: usize, seq_len: usize, seed: u64) -> Vec<GlueTask> {
    let specs = [
        TaskSpec {
            name: "MNLI",
            classes: 3,
            metric: Metric::Accuracy,
            train_n: 240,
            val_n: 90,
            sep: 0.55,
        },
        TaskSpec {
            name: "QNLI",
            classes: 2,
            metric: Metric::Accuracy,
            train_n: 200,
            val_n: 80,
            sep: 0.6,
        },
        TaskSpec {
            name: "QQP",
            classes: 2,
            metric: Metric::F1,
            train_n: 220,
            val_n: 80,
            sep: 0.6,
        },
        TaskSpec {
            name: "RTE",
            classes: 2,
            metric: Metric::Accuracy,
            train_n: 80,
            val_n: 40,
            sep: 0.4,
        },
        TaskSpec {
            name: "SST-2",
            classes: 2,
            metric: Metric::Accuracy,
            train_n: 180,
            val_n: 70,
            sep: 0.75,
        },
        TaskSpec {
            name: "MRPC",
            classes: 2,
            metric: Metric::F1,
            train_n: 90,
            val_n: 40,
            sep: 0.55,
        },
        TaskSpec {
            name: "CoLA",
            classes: 2,
            metric: Metric::Accuracy,
            train_n: 100,
            val_n: 40,
            sep: 0.35,
        },
        TaskSpec {
            name: "STS-B",
            classes: 1,
            metric: Metric::Spearman,
            train_n: 140,
            val_n: 60,
            sep: 0.7,
        },
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| generate_task(spec, vocab, seq_len, seed.wrapping_add(i as u64 * 7919)))
        .collect()
}

fn generate_task(spec: &TaskSpec, vocab: usize, seq_len: usize, seed: u64) -> GlueTask {
    let mut rng = StdRng::seed_from_u64(seed);
    if spec.metric == Metric::Spearman {
        // Regression: mix two chains with coefficient λ; target = λ.
        let chains = class_chains(2, vocab, spec.sep, &mut rng);
        let make = |n: usize, rng: &mut StdRng| {
            let mut seqs = Vec::with_capacity(n);
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                let lambda: f32 = rng.gen();
                let seq: Vec<usize> = (0..seq_len)
                    .map(|_| {
                        let chain = if rng.gen::<f32>() < lambda {
                            &chains[0]
                        } else {
                            &chains[1]
                        };
                        sample_seq(chain, 1, rng)[0]
                    })
                    .collect();
                seqs.push(seq);
                targets.push(lambda);
            }
            (seqs_to_matrix(&seqs), Labels::Scores(targets))
        };
        let (train_x, train_labels) = make(spec.train_n, &mut rng);
        let (val_x, val_labels) = make(spec.val_n, &mut rng);
        return GlueTask {
            name: spec.name,
            classes: 1,
            metric: spec.metric,
            train_x,
            train_labels,
            val_x,
            val_labels,
        };
    }
    let chains = class_chains(spec.classes, vocab, spec.sep, &mut rng);
    let make = |n: usize, rng: &mut StdRng| {
        let mut seqs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % spec.classes;
            seqs.push(sample_seq(&chains[c], seq_len, rng));
            labels.push(c);
        }
        (seqs_to_matrix(&seqs), Labels::Classes(labels))
    };
    let (train_x, train_labels) = make(spec.train_n, &mut rng);
    let (val_x, val_labels) = make(spec.val_n, &mut rng);
    GlueTask {
        name: spec.name,
        classes: spec.classes,
        metric: spec.metric,
        train_x,
        train_labels,
        val_x,
        val_labels,
    }
}

/// F1 score of the positive class for binary predictions.
pub fn f1_score(pred: &[usize], gold: &[usize], positive: usize) -> f32 {
    let mut tp = 0.0f32;
    let mut fp = 0.0f32;
    let mut fn_ = 0.0f32;
    for (&p, &g) in pred.iter().zip(gold) {
        match (p == positive, g == positive) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fn_ += 1.0,
            _ => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fn_);
    2.0 * precision * recall / (precision + recall)
}

/// Spearman rank correlation between two score vectors.
pub fn spearman(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "spearman requires equal-length inputs");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    // Pearson correlation of ranks.
    let mean = (n as f32 - 1.0) / 2.0;
    let mut num = 0.0f32;
    let mut da = 0.0f32;
    let mut db = 0.0f32;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da.sqrt() * db.sqrt())
    }
}

fn ranks(v: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = vec![0.0f32; v.len()];
    for (rank, &i) in idx.iter().enumerate() {
        out[i] = rank as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_named_tasks() {
        let suite = glue_suite(32, 8, 0);
        assert_eq!(suite.len(), 8);
        let names: Vec<&str> = suite.iter().map(|t| t.name).collect();
        assert!(names.contains(&"MNLI"));
        assert!(names.contains(&"STS-B"));
        // STS-B is the only regression task.
        for t in &suite {
            match t.metric {
                Metric::Spearman => assert!(matches!(t.train_labels, Labels::Scores(_))),
                _ => assert!(matches!(t.train_labels, Labels::Classes(_))),
            }
        }
    }

    #[test]
    fn token_ids_are_within_vocab() {
        let suite = glue_suite(16, 6, 3);
        for t in &suite {
            for v in t.train_x.as_slice() {
                assert!(*v >= 0.0 && *v < 16.0 && v.fract() == 0.0);
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        let a = glue_suite(16, 6, 11);
        let b = glue_suite(16, 6, 11);
        assert_eq!(a[0].train_x, b[0].train_x);
    }

    #[test]
    fn chains_are_class_distinguishable() {
        // Bigram count statistics should separate the two SST-2 classes.
        let suite = glue_suite(12, 16, 5);
        let sst = suite.iter().find(|t| t.name == "SST-2").unwrap();
        let Labels::Classes(train_y) = &sst.train_labels else {
            panic!("classification labels")
        };
        // Learn per-class unigram histograms, classify val by likelihood.
        let vocab = 12;
        let mut hist = vec![vec![1.0f32; vocab]; 2];
        for i in 0..sst.train_x.rows() {
            for j in 0..sst.train_x.cols() {
                hist[train_y[i]][sst.train_x.get(i, j) as usize] += 1.0;
            }
        }
        for h in &mut hist {
            let s: f32 = h.iter().sum();
            for v in h.iter_mut() {
                *v /= s;
            }
        }
        let Labels::Classes(val_y) = &sst.val_labels else {
            panic!()
        };
        let mut correct = 0;
        for (i, &label) in val_y.iter().enumerate().take(sst.val_x.rows()) {
            let mut scores = [0.0f32; 2];
            for j in 0..sst.val_x.cols() {
                let tok = sst.val_x.get(i, j) as usize;
                for (score, h) in scores.iter_mut().zip(&hist) {
                    *score += h[tok].ln();
                }
            }
            let pred = if scores[1] > scores[0] { 1 } else { 0 };
            if pred == label {
                correct += 1;
            }
        }
        let acc = correct as f32 / val_y.len() as f32;
        assert!(acc > 0.6, "unigram accuracy only {acc}");
    }

    #[test]
    fn f1_known_values() {
        // pred: [1,1,0,0], gold: [1,0,1,0] → tp=1, fp=1, fn=1 → F1 = 0.5.
        let f1 = f1_score(&[1, 1, 0, 0], &[1, 0, 1, 0], 1);
        assert!((f1 - 0.5).abs() < 1e-6);
        assert_eq!(f1_score(&[0, 0], &[1, 1], 1), 0.0);
    }

    #[test]
    fn spearman_known_values() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-6);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-6);
        assert_eq!(spearman(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn sts_b_targets_in_unit_interval() {
        let suite = glue_suite(16, 8, 2);
        let sts = suite.iter().find(|t| t.name == "STS-B").unwrap();
        let Labels::Scores(scores) = &sts.train_labels else {
            panic!()
        };
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }
}
