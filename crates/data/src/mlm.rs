//! Masked-language-model pre-training stream (Table 17's
//! Wikipedia/BookCorpus stand-in).

use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An endless stream of token sequences from a fixed Markov chain, with
/// BERT-style masking: 15% of positions are selected; selected tokens are
/// replaced by the mask id (80%), a random token (10%), or left unchanged
/// (10%), and the model must reconstruct the original token at every
/// selected position.
#[derive(Debug, Clone)]
pub struct MlmStream {
    vocab: usize,
    seq_len: usize,
    mask_id: usize,
    chain: Vec<Vec<f32>>,
    rng: StdRng,
}

impl MlmStream {
    /// Creates a stream over a vocabulary of `vocab` tokens (the last id is
    /// reserved as the mask token) with sequences of `seq_len` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 4` or `seq_len == 0`.
    pub fn new(vocab: usize, seq_len: usize, seed: u64) -> Self {
        assert!(
            vocab >= 4 && seq_len > 0,
            "vocab >= 4 and seq_len > 0 required"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let data_vocab = vocab - 1;
        let chain: Vec<Vec<f32>> = (0..data_vocab)
            .map(|_| {
                let mut row: Vec<f32> = (0..data_vocab)
                    .map(|_| rng.gen_range(0.02f32..1.0))
                    .collect();
                // Make the chain structured: strong self/successor links.
                let len = row.len();
                for (j, v) in row.iter_mut().enumerate() {
                    *v += if j % 4 == 0 { 1.5 } else { 0.0 };
                    let _ = len;
                }
                let s: f32 = row.iter().sum();
                row.iter_mut().for_each(|v| *v /= s);
                row
            })
            .collect();
        MlmStream {
            vocab,
            seq_len,
            mask_id: vocab - 1,
            chain,
            rng,
        }
    }

    /// Vocabulary size (including the mask token).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The reserved mask-token id.
    pub fn mask_id(&self) -> usize {
        self.mask_id
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Samples a masked batch: `(masked_ids (B, T), original targets
    /// (B·T), mask flags (B·T))`, row-major by `(batch, token)` matching
    /// the `Seq` activation layout.
    pub fn sample_batch(&mut self, batch: usize) -> (Matrix, Vec<usize>, Vec<bool>) {
        let data_vocab = self.vocab - 1;
        let mut ids = Matrix::zeros(batch, self.seq_len);
        let mut targets = Vec::with_capacity(batch * self.seq_len);
        let mut mask = Vec::with_capacity(batch * self.seq_len);
        for b in 0..batch {
            let mut tok = self.rng.gen_range(0..data_vocab);
            for t in 0..self.seq_len {
                if t > 0 {
                    let r: f32 = self.rng.gen();
                    let mut acc = 0.0;
                    let mut next = data_vocab - 1;
                    for (j, &p) in self.chain[tok].iter().enumerate() {
                        acc += p;
                        if r <= acc {
                            next = j;
                            break;
                        }
                    }
                    tok = next;
                }
                targets.push(tok);
                let selected = self.rng.gen::<f32>() < 0.15;
                mask.push(selected);
                let visible = if selected {
                    let r: f32 = self.rng.gen();
                    if r < 0.8 {
                        self.mask_id
                    } else if r < 0.9 {
                        self.rng.gen_range(0..data_vocab)
                    } else {
                        tok
                    }
                } else {
                    tok
                };
                ids.set(b, t, visible as f32);
            }
        }
        // Guarantee at least one masked position per batch.
        if !mask.iter().any(|&m| m) {
            mask[0] = true;
            ids.set(0, 0, self.mask_id as f32);
        }
        (ids, targets, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shapes_consistent() {
        let mut s = MlmStream::new(32, 8, 0);
        let (ids, targets, mask) = s.sample_batch(4);
        assert_eq!(ids.shape(), (4, 8));
        assert_eq!(targets.len(), 32);
        assert_eq!(mask.len(), 32);
        assert!(mask.iter().any(|&m| m));
    }

    #[test]
    fn mask_rate_near_fifteen_percent() {
        let mut s = MlmStream::new(32, 16, 1);
        let mut masked = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            let (_, _, mask) = s.sample_batch(8);
            masked += mask.iter().filter(|&&m| m).count();
            total += mask.len();
        }
        let rate = masked as f32 / total as f32;
        assert!((rate - 0.15).abs() < 0.03, "mask rate {rate}");
    }

    #[test]
    fn visible_ids_in_vocab_and_targets_exclude_mask() {
        let mut s = MlmStream::new(16, 8, 2);
        let (ids, targets, _) = s.sample_batch(8);
        for v in ids.as_slice() {
            assert!(*v >= 0.0 && (*v as usize) < 16);
        }
        for &t in &targets {
            assert!(t < 15, "targets never include the mask id");
        }
    }

    #[test]
    fn masked_positions_usually_show_mask_token() {
        let mut s = MlmStream::new(32, 16, 3);
        let mut masked_shown = 0usize;
        let mut masked_total = 0usize;
        for _ in 0..30 {
            let (ids, _, mask) = s.sample_batch(4);
            for b in 0..4 {
                for t in 0..16 {
                    if mask[b * 16 + t] {
                        masked_total += 1;
                        if ids.get(b, t) as usize == s.mask_id() {
                            masked_shown += 1;
                        }
                    }
                }
            }
        }
        let frac = masked_shown as f32 / masked_total.max(1) as f32;
        assert!(frac > 0.6, "mask-token fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "vocab >= 4")]
    fn rejects_tiny_vocab() {
        let _ = MlmStream::new(2, 4, 0);
    }
}
