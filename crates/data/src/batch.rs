//! Seeded shuffled mini-batching.

use cuttlefish_tensor::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Splits `(x, y)` into shuffled mini-batches of up to `batch_size` rows.
///
/// The last batch may be smaller (drop-last is not used, matching the
/// paper's epoch accounting). Order is determined by `rng`, so epochs are
/// reproducible from the experiment seed.
///
/// # Panics
///
/// Panics if `y.len() != x.rows()` or `batch_size == 0`.
pub fn shuffled_batches<R: Rng + ?Sized>(
    x: &Matrix,
    y: &[usize],
    batch_size: usize,
    rng: &mut R,
) -> Vec<(Matrix, Vec<usize>)> {
    assert_eq!(x.rows(), y.len(), "features and labels must align");
    assert!(batch_size > 0, "batch_size must be positive");
    let mut order: Vec<usize> = (0..x.rows()).collect();
    order.shuffle(rng);
    order
        .chunks(batch_size)
        .map(|chunk| {
            let mut bx = Matrix::zeros(chunk.len(), x.cols());
            let mut by = Vec::with_capacity(chunk.len());
            for (row, &src) in chunk.iter().enumerate() {
                bx.row_mut(row).copy_from_slice(x.row(src));
                by.push(y[src]);
            }
            (bx, by)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f32);
        let y = (0..n).collect();
        (x, y)
    }

    #[test]
    fn covers_every_sample_once() {
        let (x, y) = dataset(10);
        let mut rng = StdRng::seed_from_u64(0);
        let batches = shuffled_batches(&x, &y, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        let mut seen: Vec<usize> = batches.iter().flat_map(|(_, y)| y.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rows_match_labels() {
        let (x, y) = dataset(7);
        let mut rng = StdRng::seed_from_u64(1);
        for (bx, by) in shuffled_batches(&x, &y, 4, &mut rng) {
            for (row, &label) in by.iter().enumerate() {
                // Row content encodes its original index.
                assert_eq!(bx.get(row, 0) as usize, label * 3);
                let _ = row;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = dataset(12);
        let a = shuffled_batches(&x, &y, 5, &mut StdRng::seed_from_u64(9));
        let b = shuffled_batches(&x, &y, 5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.len(), b.len());
        for ((ax, ay), (bx, by)) in a.iter().zip(&b) {
            assert_eq!(ax, bx);
            assert_eq!(ay, by);
        }
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn panics_on_length_mismatch() {
        let (x, _) = dataset(3);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = shuffled_batches(&x, &[0, 1], 2, &mut rng);
    }
}
