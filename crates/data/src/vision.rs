//! Synthetic image-classification tasks.

use cuttlefish_tensor::init::standard_normal;
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of a synthetic vision task.
///
/// Difficulty knobs: more `classes` and lower `signal`/`noise` ratio make
/// the task harder, mirroring the paper's SVHN < CIFAR-10 < CIFAR-100 <
/// ImageNet ordering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisionSpec {
    /// Task name, used in experiment tables.
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image resolution.
    pub hw: (usize, usize),
    /// Training samples per class.
    pub train_per_class: usize,
    /// Validation samples per class.
    pub val_per_class: usize,
    /// Prototype mixing strength (higher = easier).
    pub signal: f32,
    /// Pixel noise standard deviation.
    pub noise: f32,
}

impl VisionSpec {
    /// CIFAR-10-like preset: 10 classes, moderate noise.
    pub fn cifar10_like() -> Self {
        VisionSpec {
            name: "cifar10-like".into(),
            classes: 10,
            channels: 3,
            hw: (16, 16),
            train_per_class: 40,
            val_per_class: 16,
            signal: 0.6,
            noise: 1.5,
        }
    }

    /// CIFAR-100-like preset: more classes, noisier.
    pub fn cifar100_like() -> Self {
        VisionSpec {
            name: "cifar100-like".into(),
            classes: 20,
            channels: 3,
            hw: (16, 16),
            train_per_class: 20,
            val_per_class: 8,
            signal: 0.5,
            noise: 1.5,
        }
    }

    /// SVHN-like preset: easier (stronger signal), like the paper's
    /// observation that SVHN admits more aggressive compression.
    pub fn svhn_like() -> Self {
        VisionSpec {
            name: "svhn-like".into(),
            classes: 10,
            channels: 3,
            hw: (16, 16),
            train_per_class: 40,
            val_per_class: 16,
            signal: 0.85,
            noise: 1.1,
        }
    }

    /// ImageNet-like preset: many classes, used for the large-scale tables.
    pub fn imagenet_like() -> Self {
        VisionSpec {
            name: "imagenet-like".into(),
            classes: 20,
            channels: 3,
            hw: (16, 16),
            train_per_class: 24,
            val_per_class: 8,
            signal: 0.55,
            noise: 1.4,
        }
    }

    /// Tiny preset for unit tests (8×8, 4 classes).
    pub fn tiny() -> Self {
        VisionSpec {
            name: "tiny".into(),
            classes: 4,
            channels: 3,
            hw: (8, 8),
            train_per_class: 16,
            val_per_class: 8,
            signal: 1.2,
            noise: 0.5,
        }
    }
}

/// A generated vision task: train/val splits of `(B, C·H·W)` image
/// matrices (already normalized) with integer labels.
///
/// # Example
///
/// ```
/// use cuttlefish_data::vision::{VisionSpec, VisionTask};
/// let task = VisionTask::generate(&VisionSpec::tiny(), 42);
/// assert_eq!(task.train_x.rows(), task.train_y.len());
/// assert!(task.train_y.iter().all(|&y| y < task.spec.classes));
/// ```
#[derive(Debug, Clone)]
pub struct VisionTask {
    /// The generating spec.
    pub spec: VisionSpec,
    /// Training images, one row per sample.
    pub train_x: Matrix,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Validation images.
    pub val_x: Matrix,
    /// Validation labels.
    pub val_y: Vec<usize>,
}

impl VisionTask {
    /// Generates the task deterministically from `seed`.
    pub fn generate(spec: &VisionSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = spec.channels * spec.hw.0 * spec.hw.1;
        // Smooth per-class prototypes: white noise box-blurred twice.
        let protos: Vec<Vec<f32>> = (0..spec.classes)
            .map(|_| {
                let raw: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
                blur(&blur(&raw, spec.channels, spec.hw), spec.channels, spec.hw)
            })
            .collect();
        let background: Vec<f32> = {
            let raw: Vec<f32> = (0..dim).map(|_| standard_normal(&mut rng)).collect();
            blur(&raw, spec.channels, spec.hw)
        };

        let make_split = |per_class: usize, rng: &mut StdRng| {
            let n = per_class * spec.classes;
            let mut x = Matrix::zeros(n, dim);
            let mut y = Vec::with_capacity(n);
            for (c, proto) in protos.iter().enumerate() {
                for s in 0..per_class {
                    let row = x.row_mut(c * per_class + s);
                    for ((r, &p), &b) in row.iter_mut().zip(proto).zip(&background) {
                        *r = spec.signal * p + 0.3 * b + spec.noise * standard_normal(rng);
                    }
                    y.push(c);
                }
            }
            (x, y)
        };
        let (train_x, train_y) = make_split(spec.train_per_class, &mut rng);
        let (val_x, val_y) = make_split(spec.val_per_class, &mut rng);
        VisionTask {
            spec: spec.clone(),
            train_x,
            train_y,
            val_x,
            val_y,
        }
    }

    /// Image dimensionality `C·H·W`.
    pub fn dim(&self) -> usize {
        self.spec.channels * self.spec.hw.0 * self.spec.hw.1
    }

    /// Applies random horizontal flip and ±1-pixel shift to a batch of
    /// image rows — the standard-augmentation stand-in (Appendix B.1).
    pub fn augment<R: Rng + ?Sized>(&self, batch: &Matrix, rng: &mut R) -> Matrix {
        let (c, h, w) = (self.spec.channels, self.spec.hw.0, self.spec.hw.1);
        let mut out = Matrix::zeros(batch.rows(), batch.cols());
        for i in 0..batch.rows() {
            let flip = rng.gen_bool(0.5);
            let dy = rng.gen_range(-1i32..=1);
            let dx = rng.gen_range(-1i32..=1);
            let src = batch.row(i);
            let dst = out.row_mut(i);
            for ci in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        let sy = y as i32 + dy;
                        let sx0 = if flip { (w - 1 - x) as i32 } else { x as i32 };
                        let sx = sx0 + dx;
                        let val = if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                            src[ci * h * w + sy as usize * w + sx as usize]
                        } else {
                            0.0
                        };
                        dst[ci * h * w + y * w + x] = val;
                    }
                }
            }
        }
        out
    }
}

/// 3×3 box blur per channel (clamped borders) used to make prototypes
/// spatially smooth, so convolutional features are actually useful.
fn blur(data: &[f32], channels: usize, hw: (usize, usize)) -> Vec<f32> {
    let (h, w) = hw;
    let mut out = vec![0.0f32; data.len()];
    for c in 0..channels {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                let mut cnt = 0.0f32;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let sy = y as i32 + dy;
                        let sx = x as i32 + dx;
                        if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                            acc += data[c * h * w + sy as usize * w + sx as usize];
                            cnt += 1.0;
                        }
                    }
                }
                out[c * h * w + y * w + x] = acc / cnt * 1.8; // rescale post-blur
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = VisionSpec::tiny();
        let a = VisionTask::generate(&spec, 42);
        let b = VisionTask::generate(&spec, 42);
        assert_eq!(a.train_x, b.train_x);
        assert_eq!(a.train_y, b.train_y);
        let c = VisionTask::generate(&spec, 43);
        assert_ne!(a.train_x, c.train_x);
    }

    #[test]
    fn split_sizes_match_spec() {
        let spec = VisionSpec::tiny();
        let t = VisionTask::generate(&spec, 0);
        assert_eq!(t.train_x.rows(), spec.classes * spec.train_per_class);
        assert_eq!(t.val_x.rows(), spec.classes * spec.val_per_class);
        assert_eq!(t.train_x.cols(), t.dim());
        assert_eq!(t.train_y.len(), t.train_x.rows());
        assert!(t.train_y.iter().all(|&y| y < spec.classes));
    }

    #[test]
    fn classes_are_linearly_separable_enough() {
        // Nearest-class-prototype classification on the noiseless class
        // means should beat chance by a wide margin.
        let spec = VisionSpec::tiny();
        let t = VisionTask::generate(&spec, 7);
        let dim = t.dim();
        let per = spec.train_per_class;
        // Class means from train.
        let mut means = vec![vec![0.0f32; dim]; spec.classes];
        for (i, &y) in t.train_y.iter().enumerate() {
            for (j, m) in means[y].iter_mut().enumerate() {
                *m += t.train_x.get(i, j) / per as f32;
            }
        }
        let mut correct = 0;
        for (i, &y) in t.val_y.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (c, m) in means.iter().enumerate() {
                let d: f32 = (0..dim).map(|j| (t.val_x.get(i, j) - m[j]).powi(2)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == y {
                correct += 1;
            }
        }
        let acc = correct as f32 / t.val_y.len() as f32;
        assert!(acc > 0.6, "nearest-mean accuracy only {acc}");
    }

    #[test]
    fn svhn_preset_is_easier_than_cifar100() {
        let svhn = VisionSpec::svhn_like();
        let c100 = VisionSpec::cifar100_like();
        assert!(svhn.signal / svhn.noise > c100.signal / c100.noise);
        assert!(c100.classes > svhn.classes);
    }

    #[test]
    fn augmentation_preserves_shape_and_changes_content() {
        let spec = VisionSpec::tiny();
        let t = VisionTask::generate(&spec, 1);
        let batch = t.train_x.take_rows(4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let aug = t.augment(&batch, &mut rng);
        assert_eq!(aug.shape(), batch.shape());
        assert_ne!(aug, batch);
    }

    #[test]
    fn blur_smooths() {
        // Blurring a delta spreads mass to neighbours.
        let mut data = vec![0.0f32; 25];
        data[12] = 9.0;
        let out = blur(&data, 1, (5, 5));
        assert!(out[12] > 0.0);
        assert!(out[11] > 0.0);
        assert_eq!(out[0], 0.0);
    }
}
