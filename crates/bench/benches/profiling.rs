//! Cost of the Algorithm 2 profiling decision itself (the roofline scan
//! over all stacks of the paper-scale architectures) — it must be
//! negligible next to training.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cuttlefish::profile::Profiler;
use cuttlefish_perf::arch::{deit_base, resnet18_cifar, resnet50_imagenet, vgg19_cifar};
use cuttlefish_perf::DeviceProfile;
use std::hint::black_box;

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_determine_k");
    for (name, targets, batch) in [
        ("resnet18_cifar", resnet18_cifar(10), 1024usize),
        ("vgg19_cifar", vgg19_cifar(10), 1024),
        ("resnet50_imagenet", resnet50_imagenet(), 256),
        ("deit_base", deit_base(), 256),
    ] {
        let profiler = Profiler::new(DeviceProfile::v100(), batch);
        group.bench_with_input(BenchmarkId::from_parameter(name), &targets, |b, t| {
            b.iter(|| black_box(profiler.determine_k(t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
