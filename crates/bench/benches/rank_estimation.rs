//! §4.3 companion: the real cost of one epoch of stable-rank estimation
//! over a whole micro network — the exact `svdvals` path vs. the
//! power-iteration fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use cuttlefish::rank::{stable_rank_fast, stable_rank_of};
use cuttlefish_bench::scenarios::{build_model, VisionModel};
use cuttlefish_tensor::Matrix;
use std::hint::black_box;

fn bench_rank_estimation(c: &mut Criterion) {
    let mut net = build_model(VisionModel::ResNet18, 10, 0);
    let names: Vec<String> = net.targets().iter().map(|t| t.name.clone()).collect();
    let weights: Vec<Matrix> = names
        .iter()
        .map(|n| net.weight_matrix(n).unwrap())
        .collect();

    let mut group = c.benchmark_group("rank_estimation_per_epoch");
    group.sample_size(10);
    group.bench_function("svdvals_all_layers", |b| {
        b.iter(|| {
            for w in &weights {
                black_box(stable_rank_of(w).unwrap());
            }
        })
    });
    group.bench_function("power_iteration_all_layers", |b| {
        b.iter(|| {
            for w in &weights {
                black_box(stable_rank_fast(w).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rank_estimation);
criterion_main!(benches);
