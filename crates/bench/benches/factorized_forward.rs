//! Real-substrate companion to Figures 4/6: forward time of a micro
//! ResNet-18 with stacks full-rank vs. factorized at ρ = 1/4 on this
//! machine's CPU. (Absolute numbers differ from the GPU roofline; the
//! kernel-splitting overhead and FLOP savings are real.)

use criterion::{criterion_group, criterion_main, Criterion};
use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish_bench::scenarios::{build_model, VisionModel};
use cuttlefish_nn::{Act, Mode};
use cuttlefish_tensor::init::randn_matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let x = randn_matrix(16, 3 * 256, 1.0, &mut rng);

    let mut full = build_model(VisionModel::ResNet18, 10, 0);
    let mut fact = build_model(VisionModel::ResNet18, 10, 0);
    switch_to_low_rank(
        &mut fact,
        &SwitchOptions {
            k: 5,
            plan: RankPlan::FixedRatio { rho: 0.25 },
            extra_bn: false,
            frobenius_decay: None,
        },
    )
    .unwrap();

    let mut group = c.benchmark_group("resnet18_forward_batch16");
    group.sample_size(10);
    group.bench_function("full_rank", |b| {
        b.iter(|| {
            let a = Act::image(x.clone(), 3, 16, 16).unwrap();
            black_box(full.forward(a, Mode::Eval).unwrap())
        })
    });
    group.bench_function("factorized_rho_quarter", |b| {
        b.iter(|| {
            let a = Act::image(x.clone(), 3, 16, 16).unwrap();
            black_box(fact.forward(a, Mode::Eval).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
