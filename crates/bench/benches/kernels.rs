//! Kernel-level micro-benchmarks: matmul and SVD primitives underlying
//! every training step and every rank estimate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cuttlefish_tensor::init::randn_matrix;
use cuttlefish_tensor::svd::{svdvals, Svd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(0);
        let a = randn_matrix(n, n, 1.0, &mut rng);
        let b = randn_matrix(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(10);
    // Conv-shaped matrices: (m·k², n) with the Gram trick making svdvals
    // much cheaper than the full decomposition.
    for &(rows, cols) in &[(108usize, 24usize), (216, 48), (432, 96)] {
        let mut rng = StdRng::seed_from_u64(1);
        let w = randn_matrix(rows, cols, 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("svdvals", format!("{rows}x{cols}")),
            &w,
            |bench, w| bench.iter(|| black_box(svdvals(w).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("full_svd", format!("{rows}x{cols}")),
            &w,
            |bench, w| bench.iter(|| black_box(Svd::compute(w).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_svd);
criterion_main!(benches);
