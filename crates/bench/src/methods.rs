//! Uniform runner for Cuttlefish and every baseline on a vision scenario.

use crate::scenarios::{
    bench_cuttlefish_config, build_model, clock_targets, trainer_config, vision_adapter,
    VisionModel,
};
use cuttlefish::config::RankRule;
use cuttlefish::factorize::RankDecision;
use cuttlefish::{run_training_with, CfResult, CuttlefishConfig, SwitchPolicy, TrainerConfig};
use cuttlefish_baselines::util::LoopCfg;
use cuttlefish_baselines::{eb, grasp, imp, lc, pufferfish, si_fd, xnor};
use cuttlefish_nn::TargetInfo;
use cuttlefish_perf::TrainingClock;
use cuttlefish_telemetry::{NullRecorder, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// A training method under comparison.
#[derive(Debug, Clone)]
pub enum Method {
    /// Vanilla full-rank training.
    FullRank,
    /// Cuttlefish with the bench defaults (FD on/off both tried, best
    /// reported, per the paper's `*` footnote).
    Cuttlefish,
    /// Cuttlefish with an explicit configuration.
    CuttlefishWith(CuttlefishConfig),
    /// Pufferfish with the paper's tuned (E, K, ρ = 1/4).
    Pufferfish,
    /// SI&FD with ρ tuned to (approximately) match Cuttlefish's size.
    SiFd {
        /// Global rank ratio.
        rho: f32,
    },
    /// Iterative magnitude pruning.
    Imp {
        /// Number of pruning rounds.
        rounds: usize,
    },
    /// XNOR-Net binary training.
    Xnor,
    /// LC compression (learned ranks).
    Lc,
    /// EB-Train structured pruning.
    EbTrain {
        /// Channel prune fraction.
        prune_fraction: f32,
    },
    /// GraSP pruning at init.
    Grasp {
        /// Kept weight fraction.
        keep: f32,
    },
}

impl Method {
    /// Row label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Method::FullRank => "Full-rank".into(),
            Method::Cuttlefish | Method::CuttlefishWith(_) => "Cuttlefish".into(),
            Method::Pufferfish => "Pufferfish".into(),
            Method::SiFd { .. } => "SI&FD".into(),
            Method::Imp { .. } => "IMP".into(),
            Method::Xnor => "XNOR-Net".into(),
            Method::Lc => "LC Compress.".into(),
            Method::EbTrain { prune_fraction } => {
                format!("EB Train ({:.0}%)", prune_fraction * 100.0)
            }
            Method::Grasp { keep } => format!("GraSP ({:.0}%)", (1.0 - keep) * 100.0),
        }
    }
}

/// One table row.
#[derive(Debug, Clone, Serialize)]
pub struct MethodRow {
    /// Method label.
    pub method: String,
    /// Final trainable parameter count (nonzero count for pruning methods).
    pub params: usize,
    /// Full-rank parameter count of the same model.
    pub params_full: usize,
    /// Best validation metric.
    pub metric: f32,
    /// Simulated end-to-end hours on the paper's hardware workload.
    pub hours: f64,
    /// Discovered/imposed full-rank epochs.
    pub e_hat: Option<usize>,
    /// Discovered/imposed K.
    pub k_hat: Option<usize>,
    /// Rank decisions (empty for non-factorizing methods).
    pub decisions: Vec<RankDecision>,
}

fn loop_cfg(t: &TrainerConfig) -> LoopCfg {
    LoopCfg {
        epochs: t.total_epochs,
        batch_size: t.batch_size,
        schedule: t.schedule.clone(),
        optimizer: t.optimizer,
        label_smoothing: t.label_smoothing,
    }
}

fn full_rank_hours(t: &TrainerConfig, clock: &[TargetInfo]) -> f64 {
    let mut c = TrainingClock::new(t.device.clone());
    c.add_training_iterations(
        clock,
        t.sim_batch,
        t.sim_iters_per_epoch * t.total_epochs,
        |_| None,
    );
    c.hours()
}

/// Runs one method on one (model, dataset) scenario.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_vision(
    method: &Method,
    model: VisionModel,
    dataset: &str,
    epochs: usize,
    seed: u64,
) -> CfResult<MethodRow> {
    run_vision_with(method, model, dataset, epochs, seed, &NullRecorder)
}

/// Like [`run_vision`], emitting structured telemetry for the methods that
/// go through the core trainer (Cuttlefish, full-rank, Pufferfish, SI&FD).
///
/// [`Method::Cuttlefish`] runs two training probes (Frobenius decay off
/// and on) and reports the better; recording both would duplicate every
/// event, so its probes run silent and callers that want a telemetry
/// stream with exactly one switch should use [`Method::CuttlefishWith`]
/// (the `cuttlefish_cli --telemetry` path does this). Baseline methods
/// with their own training loops (IMP, XNOR, LC, EB, GraSP) are not
/// instrumented.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_vision_with(
    method: &Method,
    model: VisionModel,
    dataset: &str,
    epochs: usize,
    seed: u64,
    recorder: &dyn Recorder,
) -> CfResult<MethodRow> {
    let tcfg = trainer_config(model, dataset, epochs, seed);
    let clock = clock_targets(model);
    let mut net = build_model(model, crate::scenarios::dataset_spec(dataset).classes, seed);
    let mut adapter = vision_adapter(dataset, seed.wrapping_add(1000));
    let params_full = net.param_count();
    let mut rng = StdRng::seed_from_u64(tcfg.seed.wrapping_add(7));

    let row = match method {
        Method::FullRank => {
            let res = run_training_with(
                &mut net,
                &mut adapter,
                &tcfg,
                &SwitchPolicy::FullRankOnly,
                Some(&clock),
                recorder,
            )?;
            MethodRow {
                method: method.label(),
                params: res.params_final,
                params_full,
                metric: res.best_metric,
                hours: res.sim_hours,
                e_hat: None,
                k_hat: None,
                decisions: vec![],
            }
        }
        Method::Cuttlefish => {
            // Try FD off and on; report the better (paper footnote `*`).
            let base = tuned_cuttlefish_config(model);
            let mut with_fd = base.clone();
            with_fd.frobenius_decay = Some(1e-4);
            // Both probes run silent; see `run_vision_with` docs.
            let res_a =
                run_one_cuttlefish(&base, model, dataset, &tcfg, &clock, seed, &NullRecorder)?;
            let res_b =
                run_one_cuttlefish(&with_fd, model, dataset, &tcfg, &clock, seed, &NullRecorder)?;
            if res_a.metric >= res_b.metric {
                res_a
            } else {
                res_b
            }
        }
        Method::CuttlefishWith(cfg) => {
            run_one_cuttlefish(cfg, model, dataset, &tcfg, &clock, seed, recorder)?
        }
        Method::Pufferfish => {
            let policy = pufferfish::policy_for(model.pufferfish_key(), epochs);
            let res = run_training_with(
                &mut net,
                &mut adapter,
                &tcfg,
                &policy,
                Some(&clock),
                recorder,
            )?;
            MethodRow {
                method: method.label(),
                params: res.params_final,
                params_full,
                metric: res.best_metric,
                hours: res.sim_hours,
                e_hat: res.e_hat,
                k_hat: res.k_hat,
                decisions: res.decisions,
            }
        }
        Method::SiFd { rho } => {
            let policy = si_fd::policy_with_rho(*rho);
            let res = run_training_with(
                &mut net,
                &mut adapter,
                &tcfg,
                &policy,
                Some(&clock),
                recorder,
            )?;
            MethodRow {
                method: method.label(),
                params: res.params_final,
                params_full,
                metric: res.best_metric,
                hours: res.sim_hours,
                e_hat: res.e_hat,
                k_hat: res.k_hat,
                decisions: res.decisions,
            }
        }
        Method::Imp { rounds } => {
            let cfg = imp::ImpConfig {
                rounds: *rounds,
                prune_fraction: 0.2,
                rewind_epoch: 1,
            };
            let res = imp::run_imp(
                &mut net,
                &mut adapter,
                &loop_cfg(&tcfg),
                &cfg,
                &mut rng,
                &clock,
                tcfg.device.clone(),
                tcfg.sim_batch,
                tcfg.sim_iters_per_epoch,
            )?;
            MethodRow {
                method: method.label(),
                params: res.remaining_params,
                params_full,
                metric: res.best_metric,
                hours: res.sim_hours,
                e_hat: None,
                k_hat: None,
                decisions: vec![],
            }
        }
        Method::Xnor => {
            let res = xnor::run_xnor(&mut net, &mut adapter, &loop_cfg(&tcfg), &mut rng)?;
            MethodRow {
                method: method.label(),
                // Paper convention: same parameter count, quantized to 1
                // bit → reported as the 3.1% storage row.
                params: (params_full as f32 * res.effective_compression) as usize,
                params_full,
                metric: res.best_metric,
                hours: full_rank_hours(&tcfg, &clock) * res.time_multiplier,
                e_hat: None,
                k_hat: None,
                decisions: vec![],
            }
        }
        Method::Lc => {
            let cfg = lc::LcConfig {
                alpha: 2e-3,
                c_every: 2,
                ..lc::LcConfig::default()
            };
            let res = lc::run_lc(
                &mut net,
                &mut adapter,
                &loop_cfg(&tcfg),
                &cfg,
                &mut rng,
                &clock,
                tcfg.device.clone(),
                tcfg.sim_batch,
                tcfg.sim_iters_per_epoch,
            )?;
            MethodRow {
                method: method.label(),
                params: res.params_final,
                params_full,
                metric: res.best_metric,
                hours: res.sim_hours,
                e_hat: None,
                k_hat: None,
                decisions: vec![],
            }
        }
        Method::EbTrain { prune_fraction } => {
            let cfg = eb::EbConfig {
                prune_fraction: *prune_fraction,
                ..eb::EbConfig::default()
            };
            let res = eb::run_eb(&mut net, &mut adapter, &loop_cfg(&tcfg), &cfg, &mut rng)?;
            MethodRow {
                method: method.label(),
                params: res.params_estimate,
                params_full,
                metric: res.best_metric,
                hours: full_rank_hours(&tcfg, &clock),
                e_hat: res.eb_epoch.map(|e| e + 1),
                k_hat: None,
                decisions: vec![],
            }
        }
        Method::Grasp { keep } => {
            let res = grasp::run_grasp(&mut net, &mut adapter, &loop_cfg(&tcfg), *keep, &mut rng)?;
            MethodRow {
                method: method.label(),
                params: res.remaining_params,
                params_full,
                metric: res.best_metric,
                hours: full_rank_hours(&tcfg, &clock),
                e_hat: None,
                k_hat: None,
                decisions: vec![],
            }
        }
    };
    Ok(row)
}

#[allow(clippy::too_many_arguments)]
fn run_one_cuttlefish(
    cfg: &CuttlefishConfig,
    model: VisionModel,
    dataset: &str,
    tcfg: &TrainerConfig,
    clock: &[TargetInfo],
    seed: u64,
    recorder: &dyn Recorder,
) -> CfResult<MethodRow> {
    let mut net = build_model(model, crate::scenarios::dataset_spec(dataset).classes, seed);
    let mut adapter = vision_adapter(dataset, seed.wrapping_add(1000));
    let params_full = net.param_count();
    let res = run_training_with(
        &mut net,
        &mut adapter,
        tcfg,
        &SwitchPolicy::Cuttlefish(cfg.clone()),
        Some(clock),
        recorder,
    )?;
    Ok(MethodRow {
        method: "Cuttlefish".into(),
        params: res.params_final,
        params_full,
        metric: res.best_metric,
        hours: res.sim_hours,
        e_hat: res.e_hat,
        k_hat: res.k_hat,
        decisions: res.decisions,
    })
}

/// The bench Cuttlefish configuration with the model-family tweaks used by
/// [`Method::Cuttlefish`] (transformer-style models get the accumulative
/// rank rule and a gentler post-switch learning rate). Exposed so the CLI
/// can run a single recorded [`Method::CuttlefishWith`] pass with the same
/// tuning.
pub fn tuned_cuttlefish_config(model: VisionModel) -> CuttlefishConfig {
    let mut base = bench_cuttlefish_config();
    if matches!(model, VisionModel::Deit | VisionModel::Mixer) {
        base.rank_rule = RankRule::ScaledWithAccumulative { p: 0.8 };
        base.post_switch_lr_scale = 0.5;
    }
    base
}

/// Mean rank ratio chosen by a set of decisions (for SI&FD size matching).
pub fn mean_chosen_ratio(decisions: &[RankDecision]) -> f32 {
    let chosen: Vec<f32> = decisions
        .iter()
        .filter_map(|d| d.chosen.map(|r| r as f32 / d.full_rank.max(1) as f32))
        .collect();
    if chosen.is_empty() {
        0.25
    } else {
        chosen.iter().sum::<f32>() / chosen.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Method::FullRank.label(), "Full-rank");
        assert_eq!(
            Method::EbTrain {
                prune_fraction: 0.3
            }
            .label(),
            "EB Train (30%)"
        );
        assert_eq!(Method::Grasp { keep: 0.4 }.label(), "GraSP (60%)");
    }

    #[test]
    fn full_rank_and_cuttlefish_rows_are_consistent() {
        // Smoke test of the whole runner path. Long enough that the switch
        // leaves low-rank epochs to amortize the rank-tracking overhead.
        let epochs = 10;
        let full = run_vision(
            &Method::FullRank,
            VisionModel::ResNet18,
            "cifar10",
            epochs,
            0,
        )
        .unwrap();
        assert_eq!(full.params, full.params_full);
        assert!(full.hours > 0.0);
        let mut cfg = bench_cuttlefish_config();
        cfg.max_full_rank_fraction = 0.3;
        let cf = run_vision(
            &Method::CuttlefishWith(cfg),
            VisionModel::ResNet18,
            "cifar10",
            epochs,
            0,
        )
        .unwrap();
        assert!(cf.params < cf.params_full);
        assert!(cf.e_hat.is_some());
        // With a third of the run full-rank, the low-rank epochs must
        // amortize the profiling/rank-tracking overhead.
        assert!(
            cf.hours < full.hours,
            "cuttlefish {} vs full {}",
            cf.hours,
            full.hours
        );
    }
}
