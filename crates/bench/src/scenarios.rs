//! Experiment scenarios: model builders, dataset presets, trainer configs,
//! and paper-scale clock shapes for each (model, dataset) pair used by the
//! paper's tables.

use cuttlefish::adapter::VisionAdapter;
use cuttlefish::{CuttlefishConfig, OptimizerKind, TrainerConfig};
use cuttlefish_data::vision::{VisionSpec, VisionTask};
use cuttlefish_nn::models::{
    build_micro_deit, build_micro_mixer, build_micro_resnet18, build_micro_resnet50,
    build_micro_vgg19, build_micro_wide_resnet50, MicroDeiTConfig, MicroMixerConfig,
    MicroResNetConfig, MicroVggConfig,
};
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_nn::{Network, TargetInfo};
use cuttlefish_perf::{arch, DeviceProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The vision models evaluated in Tables 1–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisionModel {
    /// Micro ResNet-18 (CIFAR/SVHN tables).
    ResNet18,
    /// Micro VGG-19-BN (CIFAR/SVHN tables).
    Vgg19,
    /// Micro ResNet-50 (ImageNet table).
    ResNet50,
    /// Micro WideResNet-50-2 (ImageNet table).
    WideResNet50,
    /// Micro DeiT (Table 3).
    Deit,
    /// Micro ResMLP (Table 3).
    Mixer,
}

impl VisionModel {
    /// Display name matching the paper's rows.
    pub fn name(self) -> &'static str {
        match self {
            VisionModel::ResNet18 => "ResNet-18",
            VisionModel::Vgg19 => "VGG-19",
            VisionModel::ResNet50 => "ResNet-50",
            VisionModel::WideResNet50 => "WideResNet-50",
            VisionModel::Deit => "DeiT-base",
            VisionModel::Mixer => "ResMLP-S36",
        }
    }

    /// Key used by the Pufferfish preset table.
    pub fn pufferfish_key(self) -> &'static str {
        match self {
            VisionModel::ResNet18 => "resnet18",
            VisionModel::Vgg19 => "vgg19",
            VisionModel::ResNet50 => "resnet50",
            VisionModel::WideResNet50 => "wideresnet50",
            VisionModel::Deit => "deit",
            VisionModel::Mixer => "resmlp",
        }
    }
}

/// Dataset preset by paper name.
pub fn dataset_spec(name: &str) -> VisionSpec {
    match name {
        "cifar10" => VisionSpec::cifar10_like(),
        "cifar100" => VisionSpec::cifar100_like(),
        "svhn" => VisionSpec::svhn_like(),
        "imagenet" => VisionSpec::imagenet_like(),
        other => {
            let mut s = VisionSpec::cifar10_like();
            s.name = other.to_string();
            s
        }
    }
}

/// Builds the micro network for a model on a dataset's class count.
pub fn build_model(model: VisionModel, classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    match model {
        VisionModel::ResNet18 => build_micro_resnet18(&MicroResNetConfig::cifar(classes), &mut rng),
        VisionModel::Vgg19 => build_micro_vgg19(&MicroVggConfig::cifar(classes), &mut rng),
        VisionModel::ResNet50 => {
            build_micro_resnet50(&MicroResNetConfig::imagenet50(classes), &mut rng)
        }
        VisionModel::WideResNet50 => {
            build_micro_wide_resnet50(&MicroResNetConfig::imagenet_wide50(classes), &mut rng)
        }
        VisionModel::Deit => build_micro_deit(&MicroDeiTConfig::base(classes), &mut rng),
        VisionModel::Mixer => build_micro_mixer(&MicroMixerConfig::s36(classes), &mut rng),
    }
}

/// Paper-scale layer shapes used for the simulated clock and profiling.
pub fn clock_targets(model: VisionModel) -> Vec<TargetInfo> {
    match model {
        VisionModel::ResNet18 => arch::resnet18_cifar(10),
        VisionModel::Vgg19 => arch::vgg19_cifar(10),
        VisionModel::ResNet50 => arch::resnet50_imagenet(),
        VisionModel::WideResNet50 => arch::wide_resnet50_imagenet(),
        VisionModel::Deit => arch::deit_base(),
        VisionModel::Mixer => arch::resmlp_s36(),
    }
}

/// Trainer config matching the paper's per-task setup (§4.1 / Appendix C):
/// SGD + Goyal schedule on V100 for CIFAR/SVHN, SGD on T4 for ImageNet
/// CNNs, AdamW + cosine on A100 for DeiT/ResMLP. Simulated batch sizes and
/// iterations-per-epoch mirror the paper's hardware workloads.
pub fn trainer_config(
    model: VisionModel,
    dataset: &str,
    epochs: usize,
    seed: u64,
) -> TrainerConfig {
    let mut cfg = match model {
        VisionModel::ResNet18 | VisionModel::Vgg19 => {
            let mut c = TrainerConfig::cnn_default(epochs, seed);
            c.device = DeviceProfile::v100();
            // Micro-scale recalibration: the paper's 1e-4 weight decay
            // over 300 epochs shrinks unused directions far more than 12
            // micro epochs can; a stronger per-step decay reproduces the
            // spectral dynamics (documented in EXPERIMENTS.md).
            c.optimizer = OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 2e-2,
            };
            c.sim_batch = 1024;
            c.sim_iters_per_epoch = if dataset == "svhn" { 72 } else { 49 };
            c.schedule = LrSchedule::WarmupMultiStep {
                base_lr: 0.02,
                peak_lr: 0.1,
                warmup_epochs: (epochs / 6).max(1),
                milestones: vec![epochs / 2, epochs * 3 / 4],
                gamma: 0.1,
            };
            c
        }
        VisionModel::ResNet50 | VisionModel::WideResNet50 => {
            let mut c = TrainerConfig::cnn_default(epochs, seed);
            c.device = DeviceProfile::t4();
            c.optimizer = OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 2e-2,
            };
            c.sim_batch = 256;
            c.sim_iters_per_epoch = 5004;
            c.label_smoothing = 0.1;
            c.schedule = LrSchedule::WarmupMultiStep {
                base_lr: 0.02,
                peak_lr: 0.1,
                warmup_epochs: 1,
                milestones: vec![epochs / 3, epochs * 2 / 3],
                gamma: 0.1,
            };
            c
        }
        VisionModel::Deit | VisionModel::Mixer => {
            let mut c = TrainerConfig::transformer_default(epochs, seed);
            c.device = DeviceProfile::a100();
            c.sim_batch = 256;
            c.sim_iters_per_epoch = 5004;
            c.optimizer = OptimizerKind::AdamW { weight_decay: 0.02 };
            c.schedule = LrSchedule::WarmupCosine {
                peak_lr: 2e-3,
                min_lr: 1e-5,
                warmup_epochs: (epochs / 6).max(1),
                total_epochs: epochs,
            };
            c
        }
    };
    cfg.batch_size = 40;
    cfg
}

/// The Cuttlefish configuration used by the bench tables: paper constants
/// (v = 1.5, ρ̄ = 1/4) with the stabilization threshold recalibrated for
/// micro-scale ranks (our stable ranks live in ~5–60 instead of ~20–512,
/// and 12-epoch runs see proportionally larger per-epoch drift).
pub fn bench_cuttlefish_config() -> CuttlefishConfig {
    CuttlefishConfig {
        epsilon: 0.6,
        window: 2,
        max_full_rank_fraction: 0.5,
        ..CuttlefishConfig::default()
    }
}

/// Generates the task + adapter for a scenario.
pub fn vision_adapter(dataset: &str, seed: u64) -> VisionAdapter {
    VisionAdapter::new(VisionTask::generate(&dataset_spec(dataset), seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_clock_shapes_align_by_stack() {
        // Micro ResNet-18 and the paper-scale spec must expose the same
        // stack structure so K̂ and rank projection map across.
        let net = build_model(VisionModel::ResNet18, 10, 0);
        let clock = clock_targets(VisionModel::ResNet18);
        let micro_stacks: std::collections::BTreeSet<usize> =
            net.targets().iter().map(|t| t.stack).collect();
        let clock_stacks: std::collections::BTreeSet<usize> =
            clock.iter().map(|t| t.stack).collect();
        assert_eq!(micro_stacks, clock_stacks);
        assert_eq!(net.targets().len(), clock.len());
    }

    #[test]
    fn configs_match_paper_devices() {
        let cifar = trainer_config(VisionModel::ResNet18, "cifar10", 12, 0);
        assert_eq!(cifar.device.name, "V100");
        assert_eq!(cifar.sim_batch, 1024);
        let imagenet = trainer_config(VisionModel::ResNet50, "imagenet", 12, 0);
        assert_eq!(imagenet.device.name, "T4");
        let deit = trainer_config(VisionModel::Deit, "imagenet", 12, 0);
        assert_eq!(deit.device.name, "A100");
        assert!(matches!(deit.optimizer, OptimizerKind::AdamW { .. }));
    }

    #[test]
    fn all_models_build() {
        for m in [
            VisionModel::ResNet18,
            VisionModel::Vgg19,
            VisionModel::ResNet50,
            VisionModel::WideResNet50,
            VisionModel::Deit,
            VisionModel::Mixer,
        ] {
            let mut net = build_model(m, 4, 1);
            assert!(net.param_count() > 0, "{}", m.name());
            assert!(!net.targets().is_empty());
        }
    }
}
