//! Figure 8: the ranks chosen by Cuttlefish vs. Pufferfish (ρ = 1/4) for
//! ResNet-50 and WideResNet-50-2 on the ImageNet-like task. Shape target:
//! Cuttlefish picks *lower* ranks than Pufferfish in deep layers while
//! training full-rank for longer.

use cuttlefish_bench::methods::{run_vision, Method};
use cuttlefish_bench::scenarios::VisionModel;
use cuttlefish_bench::{default_epochs, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let mut snapshots = Vec::new();
    for model in [VisionModel::ResNet50, VisionModel::WideResNet50] {
        let cf = run_vision(&Method::Cuttlefish, model, "imagenet", epochs, 0).expect("cf run");
        let pf = run_vision(&Method::Pufferfish, model, "imagenet", epochs, 0).expect("pf run");
        let rows: Vec<Vec<String>> = cf
            .decisions
            .iter()
            .zip(&pf.decisions)
            .map(|(c, p)| {
                vec![
                    c.name.clone(),
                    c.full_rank.to_string(),
                    c.chosen
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "-".into()),
                    p.chosen
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 8 — ranks for {} (E_hat={:?} vs Pufferfish E={:?})",
                model.name(),
                cf.e_hat,
                pf.e_hat
            ),
            &["layer", "full rank", "Cuttlefish", "Pufferfish"],
            &rows,
        );
        snapshots.push((model.name(), cf, pf));
    }
    let payload: Vec<_> = snapshots
        .iter()
        .map(|(name, cf, pf)| {
            serde_json::json!({
                "model": name,
                "cuttlefish": cf.decisions,
                "pufferfish": pf.decisions,
                "cf_e": cf.e_hat, "pf_e": pf.e_hat,
            })
        })
        .collect();
    save_json("fig8_imagenet_ranks", &payload);
}
