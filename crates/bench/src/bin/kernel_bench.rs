//! GEMM kernel benchmark: scalar reference vs. cache-blocked vs. SIMD vs.
//! multi-threaded, at the factorized hot-path shapes.
//!
//! Shapes are the im2col GEMMs that dominate the paper's three workloads —
//! ResNet-18 and VGG-19 conv stages (`M = output positions`,
//! `N = out channels`, `K = in_ch·k²`) and the MLP-Mixer token/channel MLPs —
//! plus the rank-ρ factorization of each: replacing the single `M×K×N` GEMM
//! with the two skinny GEMMs `(M×K)·(K×r)` and `(M×r)·(r×N)` at
//! `r = ρ·min(K, N)`, which is the multiply Cuttlefish actually runs after
//! the low-rank switch.
//!
//! Variants per shape:
//!
//! * `reference` — the textbook triple loop the repo shipped with.
//! * `blocked` — packed cache-blocked kernel, scalar micro-kernel, 1 thread.
//! * `simd` — same blocking with the best runtime-detected ISA (AVX2+FMA or
//!   NEON), 1 thread.
//! * `simd_2t` / `simd_4t` — SIMD plus striped threading (only when built
//!   with `--features parallel`; bit-identical to 1 thread by construction).
//!
//! Results print as a table and persist to `bench_results/kernel_bench.json`.
//! `--quick` runs a reduced shape set with single repetitions for CI smoke.

use std::fmt::Write as _;
use std::time::Instant;

use cuttlefish_bench::{print_table, results_dir};
use cuttlefish_tensor::kernel::{active_isa, detected_isa, gemm_nn_with, reference_gemm_nn, Isa};

/// Fractional rank for the factorized variant of each shape (the paper's
/// default compression band).
const RHO: f64 = 0.25;

#[derive(Clone, Copy)]
struct Shape {
    name: &'static str,
    m: usize,
    n: usize,
    k: usize,
}

const SHAPES: &[Shape] = &[
    // ResNet-18 stages: 28²/14²/7² positions, 3×3 kernels.
    Shape {
        name: "resnet18_conv3x3_s2",
        m: 784,
        n: 128,
        k: 1152,
    },
    Shape {
        name: "resnet18_conv3x3_s3",
        m: 196,
        n: 256,
        k: 2304,
    },
    Shape {
        name: "resnet18_conv3x3_s4",
        m: 49,
        n: 512,
        k: 4608,
    },
    // VGG-19 middle blocks at 28² positions.
    Shape {
        name: "vgg19_conv3x3_b4",
        m: 196,
        n: 512,
        k: 4608,
    },
    // MLP-Mixer: token-mixing (196 tokens) and channel-mixing (512 dim) MLPs.
    Shape {
        name: "mixer_channel_mlp",
        m: 196,
        n: 2048,
        k: 512,
    },
];

/// Shape subset exercised by `--quick` (CI smoke): one conv, one MLP.
const QUICK: &[&str] = &["resnet18_conv3x3_s3", "mixer_channel_mlp"];

struct VariantResult {
    variant: String,
    threads: usize,
    /// Wall-clock seconds per call, best of `reps`.
    secs: f64,
    gflops: f64,
    speedup_vs_reference: f64,
}

struct ShapeResult {
    name: String,
    m: usize,
    n: usize,
    k: usize,
    /// Rank of the factorized variant, `RHO * min(k, n)`.
    rank: usize,
    dense: Vec<VariantResult>,
    factorized: Vec<VariantResult>,
}

struct Report {
    detected_isa: String,
    parallel_enabled: bool,
    /// Physical parallelism of the benchmarking host. Thread-scaling numbers
    /// are only meaningful when this exceeds the measured thread count —
    /// on a 1-core host the 2t/4t variants just pay striping overhead.
    host_cpus: usize,
    rho: f64,
    quick: bool,
    shapes: Vec<ShapeResult>,
}

/// Deterministic xorshift64* fill — no RNG dependency, same data every run.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5);
    }
    out
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn isa_name(isa: Isa) -> &'static str {
    match isa {
        Isa::Scalar => "scalar",
        Isa::Avx2Fma => "avx2+fma",
        Isa::Neon => "neon",
    }
}

/// Thread counts to measure: always 1; 2 and 4 when threading is compiled in.
fn thread_counts() -> Vec<usize> {
    if cfg!(feature = "parallel") {
        vec![1, 2, 4]
    } else {
        vec![1]
    }
}

fn variant_label(isa: Isa, threads: usize) -> String {
    let base = match isa {
        Isa::Scalar => "blocked",
        _ => "simd",
    };
    if threads == 1 {
        base.to_string()
    } else {
        format!("{base}_{threads}t")
    }
}

/// Measure every variant of a dense `m×k · k×n` GEMM.
fn bench_dense(s: Shape, reps: usize) -> Vec<VariantResult> {
    let a = fill(0x5eed ^ s.m as u64, s.m * s.k);
    let b = fill(0xfeed ^ s.n as u64, s.k * s.n);
    let mut c = vec![0.0f32; s.m * s.n];
    let flops = 2.0 * s.m as f64 * s.n as f64 * s.k as f64;

    let mut out = Vec::new();
    let ref_secs = time_best(reps, || {
        c.iter_mut().for_each(|v| *v = 0.0);
        reference_gemm_nn(s.m, s.n, s.k, &a, &b, &mut c);
    });
    out.push(VariantResult {
        variant: "reference".into(),
        threads: 1,
        secs: ref_secs,
        gflops: flops / ref_secs / 1e9,
        speedup_vs_reference: 1.0,
    });

    let mut isas = vec![Isa::Scalar];
    if detected_isa() != Isa::Scalar {
        isas.push(detected_isa());
    }
    for isa in isas {
        for threads in thread_counts() {
            // The blocked scalar path is single-thread-only in this table;
            // thread scaling is reported on the SIMD variant.
            if isa == Isa::Scalar && threads > 1 {
                continue;
            }
            let secs = time_best(reps, || {
                c.iter_mut().for_each(|v| *v = 0.0);
                gemm_nn_with(isa, threads, s.m, s.n, s.k, &a, &b, &mut c);
            });
            out.push(VariantResult {
                variant: variant_label(isa, threads),
                threads,
                secs,
                gflops: flops / secs / 1e9,
                speedup_vs_reference: ref_secs / secs,
            });
        }
    }
    out
}

/// Measure the factorized two-GEMM chain `(M×K)·(K×r)` then `(M×r)·(r×N)`.
fn bench_factorized(s: Shape, rank: usize, reps: usize) -> Vec<VariantResult> {
    let a = fill(0xabcd ^ s.m as u64, s.m * s.k);
    let v = fill(0x1111 ^ rank as u64, s.k * rank);
    let u = fill(0x2222 ^ rank as u64, rank * s.n);
    let mut mid = vec![0.0f32; s.m * rank];
    let mut c = vec![0.0f32; s.m * s.n];
    let flops = 2.0 * s.m as f64 * rank as f64 * (s.k + s.n) as f64;

    let mut out = Vec::new();
    let ref_secs = time_best(reps, || {
        mid.iter_mut().for_each(|x| *x = 0.0);
        c.iter_mut().for_each(|x| *x = 0.0);
        reference_gemm_nn(s.m, rank, s.k, &a, &v, &mut mid);
        reference_gemm_nn(s.m, s.n, rank, &mid, &u, &mut c);
    });
    out.push(VariantResult {
        variant: "reference".into(),
        threads: 1,
        secs: ref_secs,
        gflops: flops / ref_secs / 1e9,
        speedup_vs_reference: 1.0,
    });

    let mut isas = vec![Isa::Scalar];
    if detected_isa() != Isa::Scalar {
        isas.push(detected_isa());
    }
    for isa in isas {
        for threads in thread_counts() {
            if isa == Isa::Scalar && threads > 1 {
                continue;
            }
            let secs = time_best(reps, || {
                mid.iter_mut().for_each(|x| *x = 0.0);
                c.iter_mut().for_each(|x| *x = 0.0);
                gemm_nn_with(isa, threads, s.m, rank, s.k, &a, &v, &mut mid);
                gemm_nn_with(isa, threads, s.m, s.n, rank, &mid, &u, &mut c);
            });
            out.push(VariantResult {
                variant: variant_label(isa, threads),
                threads,
                secs,
                gflops: flops / secs / 1e9,
                speedup_vs_reference: ref_secs / secs,
            });
        }
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };

    println!(
        "kernel_bench: detected ISA = {}, parallel = {}, mode = {}",
        isa_name(detected_isa()),
        cfg!(feature = "parallel"),
        if quick { "quick" } else { "full" }
    );

    let mut shapes = Vec::new();
    for &s in SHAPES {
        if quick && !QUICK.contains(&s.name) {
            continue;
        }
        let rank = ((RHO * s.k.min(s.n) as f64).round() as usize).max(1);
        let dense = bench_dense(s, reps);
        let factorized = bench_factorized(s, rank, reps);

        let mut rows = Vec::new();
        for (kind, variants) in [("dense", &dense), (&format!("rank-{rank}"), &factorized)] {
            for r in variants {
                rows.push(vec![
                    format!("{} {}", s.name, kind),
                    r.variant.clone(),
                    format!("{:.3} ms", r.secs * 1e3),
                    format!("{:.2} GF/s", r.gflops),
                    format!("{:.2}x", r.speedup_vs_reference),
                ]);
            }
        }
        print_table(
            &format!("{} ({}x{}x{})", s.name, s.m, s.n, s.k),
            &["shape", "variant", "best", "rate", "vs ref"],
            &rows,
        );

        shapes.push(ShapeResult {
            name: s.name.into(),
            m: s.m,
            n: s.n,
            k: s.k,
            rank,
            dense,
            factorized,
        });
    }

    let report = Report {
        detected_isa: isa_name(active_isa()).into(),
        parallel_enabled: cfg!(feature = "parallel"),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rho: RHO,
        quick,
        shapes,
    };
    let path = results_dir().join("kernel_bench.json");
    match std::fs::write(&path, render_json(&report)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Serialize the report by hand: the schema is small and fixed, and this keeps
/// the artifact byte-stable across serde versions.
fn render_json(r: &Report) -> String {
    fn variants(out: &mut String, rows: &[VariantResult], indent: &str) {
        for (i, v) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "{indent}{{\"variant\": \"{}\", \"threads\": {}, \"secs\": {:.6}, \
                 \"gflops\": {:.2}, \"speedup_vs_reference\": {:.2}}}{comma}",
                v.variant, v.threads, v.secs, v.gflops, v.speedup_vs_reference
            );
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"detected_isa\": \"{}\",", r.detected_isa);
    let _ = writeln!(out, "  \"parallel_enabled\": {},", r.parallel_enabled);
    let _ = writeln!(out, "  \"host_cpus\": {},", r.host_cpus);
    let _ = writeln!(out, "  \"rho\": {},", r.rho);
    let _ = writeln!(out, "  \"quick\": {},", r.quick);
    let _ = writeln!(out, "  \"shapes\": [");
    for (i, s) in r.shapes.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"name\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \"rank\": {},",
            s.name, s.m, s.n, s.k, s.rank
        );
        let _ = writeln!(out, "      \"dense\": [");
        variants(&mut out, &s.dense, "        ");
        let _ = writeln!(out, "      ],");
        let _ = writeln!(out, "      \"factorized\": [");
        variants(&mut out, &s.factorized, "        ");
        let _ = writeln!(out, "      ]");
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < r.shapes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push('}');
    out.push('\n');
    out
}
