//! Fleet load benchmark: an open-loop, multi-tenant, multi-model
//! workload against the fleet registry, with one hot-swap mid-run.
//!
//! The generator models a small inference fleet the way the serving
//! literature does: ≥3 models whose popularity follows a Zipf law, many
//! tenants (also Zipf-skewed) with per-tenant token-bucket quotas and
//! deadline classes, and arrivals on a fixed clock regardless of
//! completions. Halfway through the run the most popular model is
//! hot-swapped to a new checkpoint version while traffic keeps flowing;
//! the bench asserts **zero dropped in-flight requests** across the swap
//! and reports the rollout latency blip (p99 inside the rollout window
//! vs. steady state).
//!
//! Per-tenant p50/p99 come from the live `MetricsRegistry` histograms
//! (`fleet_latency_us{tenant=…}`), not from a side channel, so the
//! printed table is exactly what a scrape of the registry would show.
//! Results persist to `bench_results/fleet_bench.json` and the telemetry
//! fleet section renders at the end from the recorded event log.
//!
//! Flags: `--quick` shrinks the run for CI smoke. Knobs:
//! `CUTTLEFISH_FLEET_REQUESTS`, `CUTTLEFISH_FLEET_INTERVAL_US`,
//! `CUTTLEFISH_FLEET_TENANTS`.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cuttlefish_bench::{print_table, save_json};
use cuttlefish_fleet::{
    DeadlineClass, FleetError, FleetMetrics, FleetTicket, ModelRegistry, TenantPolicy,
};
use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_nn::Network;
use cuttlefish_serve::{BatchPolicy, ServeError, ServerConfig};
use cuttlefish_telemetry::{Event, Histogram, MemoryRecorder, MetricsRegistry, RunReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Input width of the tiny micro-ResNet used for every fleet model.
const WIDTH: usize = 3 * 8 * 8;

fn builder(seed: u64) -> impl Fn() -> Network + Send + Sync + 'static {
    move || {
        build_micro_resnet18(
            &MicroResNetConfig::tiny(4),
            &mut StdRng::seed_from_u64(seed),
        )
    }
}

fn checkpoint(seed: u64) -> Checkpoint {
    Checkpoint::capture(&mut builder(seed)())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn request_row(seed: usize) -> Vec<f32> {
    (0..WIDTH)
        .map(|j| (((seed * 193 + j * 17) % 29) as f32 - 14.0) * 0.05)
        .collect()
}

/// Cumulative Zipf(s) distribution over ranks `1..=n` (rank 0 hottest).
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample(cdf: &[f64], u: f64) -> usize {
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

/// One completed (or terminally failed) request as observed client-side.
struct Completion {
    /// Seconds since the load clock started, at submit time.
    submit_offset_s: f64,
    latency_ms: f64,
    outcome: Outcome,
}

#[derive(PartialEq, Clone, Copy)]
enum Outcome {
    Ok,
    Deadline,
    /// Typed drain rejection that survived the one resubmit — an
    /// admitted request the fleet failed to carry across the swap.
    Dropped,
    Error,
}

#[derive(Serialize)]
struct TenantRow {
    tenant: String,
    class: String,
    requests: u64,
    ok: u64,
    throttled: u64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct ModelRow {
    model: String,
    ok: u64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct RolloutRow {
    model: String,
    from_version: u32,
    to_version: u32,
    wall_ms: f64,
    phases: Vec<String>,
}

#[derive(Serialize)]
struct FleetBenchReport {
    quick: bool,
    models: usize,
    tenants: usize,
    requests: usize,
    interval_us: u64,
    zipf_s: f64,
    ok: usize,
    deadline_missed: usize,
    dropped: usize,
    errors: usize,
    drain_retries: usize,
    tenant_rows: Vec<TenantRow>,
    model_rows: Vec<ModelRow>,
    rollout: RolloutRow,
    steady_p99_ms: f64,
    rollout_window_p99_ms: f64,
    blip_ratio: f64,
    verdict: String,
}

fn class_for(tenant_idx: usize) -> DeadlineClass {
    match tenant_idx % 3 {
        0 => DeadlineClass::Standard,
        1 => DeadlineClass::Batch,
        _ => DeadlineClass::Interactive,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Arrival clocks leave headroom in unoptimized builds: the bench
    // measures the rollout blip against a loaded-but-stable fleet, not a
    // saturated queue.
    let (default_requests, default_interval) = if quick { (400, 4_000) } else { (2_000, 1_500) };
    let total_requests = env_usize("CUTTLEFISH_FLEET_REQUESTS", default_requests);
    let interval =
        Duration::from_micros(env_usize("CUTTLEFISH_FLEET_INTERVAL_US", default_interval) as u64);
    let n_tenants = env_usize("CUTTLEFISH_FLEET_TENANTS", 8);
    let zipf_s = 1.2;

    let models = ["resnet-a", "resnet-b", "resnet-c"];
    let tenants: Vec<String> = (0..n_tenants).map(|i| format!("tenant-{i}")).collect();

    let recorder = Arc::new(MemoryRecorder::new());
    let metrics_registry = Arc::new(MetricsRegistry::new());
    let registry = Arc::new(
        ModelRegistry::with_observability(
            Arc::clone(&recorder) as _,
            Some(Arc::clone(&metrics_registry)),
        )
        .with_server_config(ServerConfig {
            workers: 2,
            queue_bound: 512,
            policy: BatchPolicy {
                max_batch_size: 8,
                max_wait: Duration::from_millis(1),
            },
        }),
    );

    // Tenant quotas: everyone gets a generous bucket except the last
    // tenant, whose tight budget demonstrates token-bucket throttling as
    // a typed outcome rather than queueing pressure.
    for (i, t) in tenants.iter().enumerate() {
        let tight = i + 1 == n_tenants;
        registry.set_tenant_policy(
            t,
            TenantPolicy {
                class: class_for(i),
                rate_per_sec: if tight { 2.0 } else { 5_000.0 },
                burst: if tight { 4.0 } else { 512.0 },
            },
        );
    }

    eprintln!("[fleet_bench] deploying {} models ...", models.len());
    for (i, m) in models.iter().enumerate() {
        let seed = 10 + i as u64;
        let v = registry
            .rollout(m, builder(seed), checkpoint(seed))
            .expect("initial rollout");
        assert_eq!(v, 1);
    }

    // Waiter pool: arrivals are open-loop, so ticket waits happen off the
    // arrival clock. Each waiter records client-observed completions.
    let (tx, rx) = mpsc::channel::<(FleetTicket, f64, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || {
                let mut done: Vec<Completion> = Vec::new();
                loop {
                    let job = rx.lock().expect("waiter lock").recv();
                    let Ok((ticket, submit_offset_s, submitted)) = job else {
                        return done;
                    };
                    let outcome = match ticket.wait() {
                        Ok(_) => Outcome::Ok,
                        Err(FleetError::Serve(ServeError::DeadlineExceeded { .. })) => {
                            Outcome::Deadline
                        }
                        Err(FleetError::Serve(ServeError::Draining))
                        | Err(FleetError::Serve(ServeError::ShuttingDown)) => Outcome::Dropped,
                        Err(_) => Outcome::Error,
                    };
                    done.push(Completion {
                        submit_offset_s,
                        latency_ms: submitted.elapsed().as_secs_f64() * 1e3,
                        outcome,
                    });
                }
            })
        })
        .collect();

    // Mid-run hot-swap of the hottest model, on its own thread so the
    // arrival clock never pauses. Offsets are relative to the load clock.
    let swap_at = total_requests / 2;
    let hot_model = models[0];
    let mut swap_thread: Option<std::thread::JoinHandle<(f64, f64, u32)>> = None;

    let model_cdf = zipf_cdf(models.len(), zipf_s);
    let tenant_cdf = zipf_cdf(n_tenants, zipf_s);
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    let mut throttled = 0usize;
    let mut drain_retries = 0usize;
    let mut door_drops = 0usize;
    let t0 = Instant::now();

    eprintln!(
        "[fleet_bench] open loop: {total_requests} req @ {interval:?} across {} tenants ...",
        n_tenants
    );
    for i in 0..total_requests {
        if i == swap_at {
            let registry = Arc::clone(&registry);
            let load_t0 = t0;
            swap_thread = Some(std::thread::spawn(move || {
                let start = load_t0.elapsed().as_secs_f64();
                let v = registry
                    .rollout(hot_model, builder(99), checkpoint(99))
                    .expect("hot swap");
                (start, load_t0.elapsed().as_secs_f64(), v)
            }));
        }
        let next_tick = t0 + interval * i as u32;
        if let Some(wait) = next_tick.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let model = models[sample(&model_cdf, rng.gen::<f64>())];
        let tenant = tenants[sample(&tenant_cdf, rng.gen::<f64>())].clone();
        let submitted = Instant::now();
        let submit_offset_s = t0.elapsed().as_secs_f64();
        // One resubmit on a typed drain rejection: the retry re-reads the
        // routing pointer, which the swap has already moved.
        let mut attempt = registry.submit(model, &tenant, request_row(i));
        if matches!(
            attempt,
            Err(FleetError::Serve(ServeError::Draining))
                | Err(FleetError::Serve(ServeError::ShuttingDown))
        ) {
            drain_retries += 1;
            attempt = registry.submit(model, &tenant, request_row(i));
        }
        match attempt {
            Ok(ticket) => tx.send((ticket, submit_offset_s, submitted)).expect("send"),
            Err(FleetError::Throttled { .. }) => throttled += 1,
            Err(FleetError::Serve(ServeError::Draining))
            | Err(FleetError::Serve(ServeError::ShuttingDown)) => door_drops += 1,
            Err(e) => panic!("fleet admission failed: {e}"),
        }
    }
    drop(tx);
    let mut completions: Vec<Completion> = Vec::new();
    for w in waiters {
        completions.extend(w.join().expect("waiter thread"));
    }
    let (swap_start, swap_end, new_version) = swap_thread
        .expect("swap scheduled")
        .join()
        .expect("swap thread");
    assert_eq!(new_version, 2, "hot swap should mint version 2");
    registry.drain_all();

    // --- Zero-drop accounting -------------------------------------------
    let ok = completions
        .iter()
        .filter(|c| c.outcome == Outcome::Ok)
        .count();
    let deadline_missed = completions
        .iter()
        .filter(|c| c.outcome == Outcome::Deadline)
        .count();
    let dropped = door_drops
        + completions
            .iter()
            .filter(|c| c.outcome == Outcome::Dropped)
            .count();
    let errors = completions
        .iter()
        .filter(|c| c.outcome == Outcome::Error)
        .count();
    assert_eq!(
        ok + deadline_missed + throttled + dropped + errors,
        total_requests,
        "every arrival must reach exactly one terminal outcome"
    );
    assert_eq!(dropped, 0, "hot swap dropped in-flight requests");
    assert_eq!(errors, 0, "unexpected terminal errors under load");

    // --- Rollout blip: p99 inside vs. outside the rollout window --------
    let steady = Histogram::new();
    let during = Histogram::new();
    for c in completions.iter().filter(|c| c.outcome == Outcome::Ok) {
        let h = if c.submit_offset_s >= swap_start && c.submit_offset_s <= swap_end {
            &during
        } else {
            &steady
        };
        h.record_f64(c.latency_ms * 1e3);
    }
    let steady_p99_ms = steady.snapshot().percentile(0.99) / 1e3;
    let rollout_window_p99_ms = during.snapshot().percentile(0.99) / 1e3;
    let blip_ratio = rollout_window_p99_ms / steady_p99_ms.max(1e-9);

    // --- Per-tenant table straight from the live registry ---------------
    let fleet_metrics = FleetMetrics::new(Arc::clone(&metrics_registry));
    let tenant_rows: Vec<TenantRow> = tenants
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let snap = fleet_metrics.tenant_latency(t).snapshot();
            let ok = fleet_metrics.request_counter(t, "ok").get();
            let throttled = fleet_metrics.request_counter(t, "throttled").get();
            let deadline = fleet_metrics.request_counter(t, "deadline").get();
            TenantRow {
                tenant: t.clone(),
                class: class_for(i).name().to_string(),
                requests: ok + throttled + deadline,
                ok,
                throttled,
                p50_ms: snap.percentile(0.50) / 1e3,
                p99_ms: snap.percentile(0.99) / 1e3,
            }
        })
        .collect();
    let model_rows: Vec<ModelRow> = models
        .iter()
        .map(|m| {
            let snap = fleet_metrics.model_latency(m).snapshot();
            ModelRow {
                model: m.to_string(),
                ok: snap.count,
                p50_ms: snap.percentile(0.50) / 1e3,
                p99_ms: snap.percentile(0.99) / 1e3,
            }
        })
        .collect();

    // Rollout phase trail for the swap, from the event log.
    let phases: Vec<String> = recorder
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::FleetRollout {
                model,
                version,
                phase,
                ..
            } if model == hot_model && *version == 2 => Some(phase.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(
        phases,
        [
            "loading",
            "verifying",
            "warming",
            "shifting",
            "draining_old",
            "committed"
        ],
        "hot swap should walk the full rollout state machine"
    );
    let rollout = RolloutRow {
        model: hot_model.to_string(),
        from_version: 1,
        to_version: 2,
        wall_ms: (swap_end - swap_start) * 1e3,
        phases,
    };

    let t_headers = [
        "tenant",
        "class",
        "reqs",
        "ok",
        "throttled",
        "p50ms",
        "p99ms",
    ];
    let t_rows: Vec<Vec<String>> = tenant_rows
        .iter()
        .map(|r| {
            vec![
                r.tenant.clone(),
                r.class.clone(),
                r.requests.to_string(),
                r.ok.to_string(),
                r.throttled.to_string(),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p99_ms),
            ]
        })
        .collect();
    print_table(
        "fleet: per-tenant (live registry histograms)",
        &t_headers,
        &t_rows,
    );
    let m_headers = ["model", "ok", "p50ms", "p99ms"];
    let m_rows: Vec<Vec<String>> = model_rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.ok.to_string(),
                format!("{:.2}", r.p50_ms),
                format!("{:.2}", r.p99_ms),
            ]
        })
        .collect();
    print_table("fleet: per-model", &m_headers, &m_rows);

    let verdict = format!(
        "hot swap {hot_model} v1→v2 committed in {:.1} ms under open-loop load; \
         0 dropped of {total_requests} arrivals; rollout-window p99 {rollout_window_p99_ms:.2} ms \
         vs steady {steady_p99_ms:.2} ms ({blip_ratio:.2}x blip)",
        rollout.wall_ms
    );
    println!("\n{verdict}");

    let report = FleetBenchReport {
        quick,
        models: models.len(),
        tenants: n_tenants,
        requests: total_requests,
        interval_us: interval.as_micros() as u64,
        zipf_s,
        ok,
        deadline_missed,
        dropped,
        errors,
        drain_retries,
        tenant_rows,
        model_rows,
        rollout,
        steady_p99_ms,
        rollout_window_p99_ms,
        blip_ratio,
        verdict,
    };
    save_json("fleet_bench", &report);

    // Prove the events flow end-to-end into the telemetry summary.
    let jsonl: String = recorder
        .events()
        .iter()
        .map(|e| e.to_jsonl() + "\n")
        .collect();
    let rendered = RunReport::from_jsonl(&jsonl).render();
    if let Some(section) = rendered.split("== fleet ==").nth(1) {
        println!("\n== fleet (telemetry) =={section}");
    } else {
        panic!("telemetry report is missing the fleet section");
    }
}
