//! Figure 9: the cumulative distribution of singular values of transformer
//! encoder weights at the switch epoch. Shape target: transformer spectra
//! sit close to the diagonal reference line (≈ full-rank), so capturing
//! 80% of the spectral mass needs ρ ≈ 1/2 — the Appendix C.2 motivation
//! for the accumulative-rank rule. A trained CNN layer is printed for
//! contrast (it bends far above the diagonal).

use cuttlefish::rank::accumulative_rank;
use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::{default_epochs, print_table, save_json, scenarios};
use cuttlefish_tensor::svd::svdvals;
use serde::Serialize;

#[derive(Serialize)]
struct Cdf {
    layer: String,
    full_rank: usize,
    /// CDF of spectral mass at each rank fraction in `FRACTIONS`.
    cdf: Vec<f32>,
    acc_rank_80: usize,
}

const FRACTIONS: [f32; 5] = [0.125, 0.25, 0.5, 0.75, 1.0];

fn cdf_of(svals: &[f32]) -> Vec<f32> {
    let total: f32 = svals.iter().sum();
    FRACTIONS
        .iter()
        .map(|&f| {
            let k = ((svals.len() as f32 * f).round() as usize).clamp(1, svals.len());
            svals[..k].iter().sum::<f32>() / total.max(f32::MIN_POSITIVE)
        })
        .collect()
}

fn main() {
    let epochs = default_epochs().min(8);
    // Train a micro DeiT briefly (to its switch-like point).
    let model = scenarios::VisionModel::Deit;
    let mut net = scenarios::build_model(model, 10, 0);
    let mut adapter = scenarios::vision_adapter("cifar10", 42);
    let tcfg = scenarios::trainer_config(model, "cifar10", epochs, 0);
    run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::FullRankOnly,
        None,
    )
    .expect("deit training");

    let mut results = Vec::new();
    let picks: Vec<String> = net
        .targets()
        .iter()
        .filter(|t| t.name.starts_with("enc0") || t.name.starts_with("enc1."))
        .map(|t| t.name.clone())
        .collect();
    for name in picks {
        let w = net.weight_matrix(&name).expect("target exists");
        let svals = svdvals(&w).expect("svd");
        results.push(Cdf {
            layer: name,
            full_rank: w.full_rank(),
            cdf: cdf_of(&svals),
            acc_rank_80: accumulative_rank(&svals, 0.8),
        });
    }

    // Contrast: a trained CNN layer.
    let cnn_model = scenarios::VisionModel::ResNet18;
    let mut cnn = scenarios::build_model(cnn_model, 10, 0);
    let mut cnn_ad = scenarios::vision_adapter("cifar10", 42);
    let cnn_cfg = scenarios::trainer_config(cnn_model, "cifar10", epochs, 0);
    run_training(
        &mut cnn,
        &mut cnn_ad,
        &cnn_cfg,
        &SwitchPolicy::FullRankOnly,
        None,
    )
    .expect("cnn training");
    let w = cnn.weight_matrix("s3.b0.conv1").expect("target");
    let svals = svdvals(&w).expect("svd");
    results.push(Cdf {
        layer: "CNN contrast: s3.b0.conv1".into(),
        full_rank: w.full_rank(),
        cdf: cdf_of(&svals),
        acc_rank_80: accumulative_rank(&svals, 0.8),
    });

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|c| {
            let mut row = vec![c.layer.clone(), c.full_rank.to_string()];
            row.extend(c.cdf.iter().map(|v| format!("{v:.2}")));
            row.push(format!(
                "{} ({:.0}%)",
                c.acc_rank_80,
                100.0 * c.acc_rank_80 as f32 / c.full_rank as f32
            ));
            row
        })
        .collect();
    print_table(
        "Figure 9 — spectral-mass CDF at rank fractions (diagonal reference = 0.12/0.25/0.50/0.75/1.00)",
        &["layer", "rank", "12.5%", "25%", "50%", "75%", "100%", "acc-rank(80%)"],
        &rows,
    );
    println!("\nPaper shape: transformer CDFs hug the diagonal (acc-rank(80%) ≳ 50% of full),");
    println!("so scaled stable rank alone underestimates and the Appendix C.2 max-rule applies.");
    save_json("fig9_singular_cdf", &results);
}
