//! Table 17: BERT MLM pre-training — vanilla vs. Cuttlefish. Shape target:
//! Cuttlefish pre-trains with ~70% of the parameters at (nearly) the same
//! final MLM loss.

use cuttlefish::adapter::MlmAdapter;
use cuttlefish::{run_training, CuttlefishConfig, OptimizerKind, SwitchPolicy, TrainerConfig};
use cuttlefish_bench::{default_epochs, print_table, save_json};
use cuttlefish_data::MlmStream;
use cuttlefish_nn::models::{build_micro_bert, BertHead, MicroBertConfig};
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_perf::DeviceProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let epochs = default_epochs().max(10);
    let cfg = MicroBertConfig {
        vocab: 48,
        max_tokens: 12,
        dim: 24,
        depth: 3,
        heads: 3,
        mlp_ratio: 2,
        head: BertHead::MaskedLm,
    };
    let tcfg = TrainerConfig {
        total_epochs: epochs,
        batch_size: 24,
        schedule: LrSchedule::WarmupCosine {
            peak_lr: 2e-3,
            min_lr: 5e-5,
            warmup_epochs: 1,
            total_epochs: epochs,
        },
        optimizer: OptimizerKind::AdamW { weight_decay: 0.01 },
        label_smoothing: 0.0,
        grad_clip: Some(1.0),
        seed: 0,
        device: DeviceProfile::v100(),
        sim_batch: 128,
        sim_iters_per_epoch: 2000,
        eval_every: 1,
        track_ranks: false,
    };

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, policy) in [
        ("Vanilla BERT", SwitchPolicy::FullRankOnly),
        (
            "Cuttlefish BERT",
            SwitchPolicy::Cuttlefish(CuttlefishConfig {
                epsilon: 1.5,
                window: 2,
                max_full_rank_fraction: 0.4,
                ..CuttlefishConfig::default()
            }),
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = build_micro_bert(&cfg, &mut rng);
        let mut adapter = MlmAdapter::new(MlmStream::new(cfg.vocab, cfg.max_tokens, 5), 20, 64);
        let res = run_training(&mut net, &mut adapter, &tcfg, &policy, None).expect("mlm run");
        rows.push(vec![
            label.to_string(),
            format!(
                "{:.0}k ({:.0}%)",
                res.params_final as f64 / 1e3,
                100.0 * res.params_final as f64 / res.params_full as f64
            ),
            format!("{:.3}", res.final_metric),
            format!("{:?}", res.e_hat),
        ]);
        json.push(serde_json::json!({
            "model": label, "params": res.params_final, "params_full": res.params_full,
            "mlm_loss": res.final_metric, "e_hat": res.e_hat,
        }));
    }
    print_table(
        &format!("Table 17 — MLM pre-training, micro BERT (T = {epochs}); lower loss is better"),
        &["model", "params", "final MLM loss", "E_hat"],
        &rows,
    );
    println!(
        "\nPaper shape: Cuttlefish BERT_LARGE pre-trains at 72% params with MLM loss 1.60 vs 1.58."
    );
    save_json("table17_bert_pretrain", &json);
}
