//! Tables 9–10: discovered (Ê, K̂) on the ImageNet-scale models (ResNet-50,
//! WideResNet-50-2, DeiT, ResMLP) vs. Pufferfish's manual values.

use cuttlefish::SwitchPolicy;
use cuttlefish_baselines::pufferfish;
use cuttlefish_bench::methods::{run_vision, Method};
use cuttlefish_bench::scenarios::VisionModel;
use cuttlefish_bench::{default_epochs, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for model in [
        VisionModel::ResNet50,
        VisionModel::WideResNet50,
        VisionModel::Deit,
        VisionModel::Mixer,
    ] {
        let cf = run_vision(&Method::Cuttlefish, model, "imagenet", epochs, 0).expect("cf");
        let SwitchPolicy::Manual {
            full_rank_epochs: pf_e,
            k: pf_k,
            ..
        } = pufferfish::policy_for(model.pufferfish_key(), epochs)
        else {
            unreachable!()
        };
        rows.push(vec![
            model.name().to_string(),
            format!("{:?}", cf.e_hat),
            format!("{:?}", cf.k_hat),
            pf_e.to_string(),
            pf_k.to_string(),
        ]);
        json.push(serde_json::json!({
            "model": model.name(), "cf_e": cf.e_hat, "cf_k": cf.k_hat,
            "pf_e": pf_e, "pf_k": pf_k,
        }));
    }
    print_table(
        &format!("Tables 9–10 — ImageNet-scale hyperparameters (T = {epochs})"),
        &["model", "CF E_hat", "CF K_hat", "PF E", "PF K"],
        &rows,
    );
    println!(
        "\nPaper shape: CNNs keep a long full-rank prefix (K = 40 of 54); transformers keep only"
    );
    println!("the embedding (K = 1) and switch later than Pufferfish's manual E.");
    save_json("table9_hyperparams_imagenet", &json);
}
