//! Figure 1: what Cuttlefish replaces — the manual grid search over
//! (E, ρ) at fixed K (top panel) and over (K, ρ) at a good E (bottom
//! panel), against Cuttlefish's single automatic run. ResNet-18 on the
//! CIFAR-10-like task.

use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::methods::{run_vision, Method};
use cuttlefish_bench::scenarios::{self, VisionModel};
use cuttlefish_bench::{default_epochs, print_table, save_json};
use serde::Serialize;

#[derive(Serialize)]
struct GridPoint {
    e: usize,
    k: usize,
    rho: f32,
    params: usize,
    acc: f32,
}

fn manual_run(model: VisionModel, epochs: usize, e: usize, k: usize, rho: f32) -> GridPoint {
    let mut net = scenarios::build_model(model, 10, 0);
    let mut adapter = scenarios::vision_adapter("cifar10", 1000);
    let tcfg = scenarios::trainer_config(model, "cifar10", epochs, 0);
    let res = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::Manual {
            full_rank_epochs: e,
            k,
            rank_ratio: rho,
            extra_bn: false,
            frobenius_decay: None,
        },
        Some(&scenarios::clock_targets(model)),
    )
    .expect("manual run");
    GridPoint {
        e,
        k,
        rho,
        params: res.params_final,
        acc: res.best_metric,
    }
}

fn main() {
    let epochs = default_epochs();
    let model = VisionModel::ResNet18;
    // The paper varies E ∈ {0,40,80,120} of 300 and ρ ∈ {1/32..1/2};
    // scaled to the micro budget: E fractions {0, 0.13, 0.27, 0.4}.
    let e_grid: Vec<usize> = [0.0f64, 0.25, 0.4]
        .iter()
        .map(|f| (epochs as f64 * f).round() as usize)
        .collect();
    let rho_grid = [1.0 / 16.0, 1.0 / 4.0, 1.0 / 2.0];

    let mut top = Vec::new();
    for &e in &e_grid {
        for &rho in &rho_grid {
            top.push(manual_run(model, epochs, e, 1, rho));
        }
    }
    let rows: Vec<Vec<String>> = top
        .iter()
        .map(|p| {
            vec![
                p.e.to_string(),
                format!("1/{:.0}", 1.0 / p.rho),
                format!("{:.3}M", p.params as f64 / 1e6),
                format!("{:.3}", p.acc),
            ]
        })
        .collect();
    print_table(
        "Figure 1 (top) — grid over (E, rho) at K = 1, ResNet-18 / cifar10-like",
        &["E", "rho", "params", "val acc"],
        &rows,
    );

    // Bottom: fix a good E (the best from the top grid), vary K and ρ.
    let good_e = top
        .iter()
        .max_by(|a, b| a.acc.total_cmp(&b.acc))
        .map(|p| p.e)
        .unwrap_or(epochs / 4);
    let mut bottom = Vec::new();
    for &k in &[1usize, 5, 13] {
        for &rho in &rho_grid {
            bottom.push(manual_run(model, epochs, good_e, k, rho));
        }
    }
    let rows: Vec<Vec<String>> = bottom
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                format!("1/{:.0}", 1.0 / p.rho),
                format!("{:.3}M", p.params as f64 / 1e6),
                format!("{:.3}", p.acc),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 1 (bottom) — grid over (K, rho) at E = {good_e}"),
        &["K", "rho", "params", "val acc"],
        &rows,
    );

    // Cuttlefish: one run, no grid.
    let cf = run_vision(&Method::Cuttlefish, model, "cifar10", epochs, 0).expect("cf");
    println!(
        "\nCuttlefish (single run): E_hat={:?} K_hat={:?} params {:.3}M acc {:.3}",
        cf.e_hat,
        cf.k_hat,
        cf.params as f64 / 1e6,
        cf.metric
    );
    // Where does Cuttlefish land on the frontier?
    let dominated_by_cf = top
        .iter()
        .chain(&bottom)
        .filter(|p| p.params >= cf.params && p.acc <= cf.metric)
        .count();
    println!(
        "grid points dominated by Cuttlefish (≥ params AND ≤ acc): {dominated_by_cf}/{}",
        top.len() + bottom.len()
    );
    save_json(
        "fig1_grid_search",
        &serde_json::json!({"top": top, "bottom": bottom, "cuttlefish": cf}),
    );
}
