//! Appendix Figures 10–17: stable-rank trajectories on every other
//! (model, dataset) pair — ResNet-18 and VGG-19 on the CIFAR-100- and
//! SVHN-like tasks. The paper's appendix point: the stabilize-then-flat
//! shape holds across all of them.

use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::{default_epochs, save_json, scenarios};
use serde::Serialize;

#[derive(Serialize)]
struct Trend {
    model: String,
    dataset: String,
    early_drift: f32,
    late_drift: f32,
    final_mean_rank: f32,
}

fn main() {
    let epochs = default_epochs().max(10);
    let mut trends = Vec::new();
    for model in [
        scenarios::VisionModel::ResNet18,
        scenarios::VisionModel::Vgg19,
    ] {
        for dataset in ["cifar100", "svhn"] {
            let classes = scenarios::dataset_spec(dataset).classes;
            let mut net = scenarios::build_model(model, classes, 0);
            let mut adapter = scenarios::vision_adapter(dataset, 42);
            let mut tcfg = scenarios::trainer_config(model, dataset, epochs, 0);
            tcfg.track_ranks = true;
            let res = run_training(
                &mut net,
                &mut adapter,
                &tcfg,
                &SwitchPolicy::FullRankOnly,
                None,
            )
            .expect("run");
            let drift = |range: std::ops::Range<usize>| -> f32 {
                let mut acc = 0.0f32;
                let mut n = 0usize;
                for e in range {
                    if e == 0 || e >= res.rank_history.len() {
                        continue;
                    }
                    for l in 0..res.tracked.len() {
                        acc += (res.rank_history[e][l] - res.rank_history[e - 1][l]).abs();
                        n += 1;
                    }
                }
                acc / n.max(1) as f32
            };
            let half = res.rank_history.len() / 2;
            let last = res.rank_history.last().expect("history");
            let trend = Trend {
                model: model.name().to_string(),
                dataset: dataset.to_string(),
                early_drift: drift(1..half.max(2)),
                late_drift: drift(half..res.rank_history.len()),
                final_mean_rank: last.iter().sum::<f32>() / last.len() as f32,
            };
            println!(
                "{:<10} {:<9} early |d rank/dt| {:>6.3}  late {:>6.3}  final mean rank {:>6.1}  (stabilized: {})",
                trend.model,
                trend.dataset,
                trend.early_drift,
                trend.late_drift,
                trend.final_mean_rank,
                trend.late_drift < 0.5 * trend.early_drift
            );
            trends.push(trend);
        }
    }
    println!("\nAppendix Figures 10–17 shape: every pair stabilizes (late drift << early drift).");
    save_json("appendix_rank_trends", &trends);
}
