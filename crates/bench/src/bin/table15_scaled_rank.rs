//! Tables 15–16: vanilla vs. scaled stable rank. The vanilla estimate is
//! far more aggressive (smaller models) and costs accuracy on the harder
//! tasks — the reason Cuttlefish scales by ξ = rank(W⁰)/stable_rank(Σ⁰).

use cuttlefish::config::RankRule;
use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::scenarios::{self, VisionModel};
use cuttlefish_bench::{default_epochs, fmt_params, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let mut json = Vec::new();
    for (model, dataset) in [
        (VisionModel::ResNet18, "cifar10"),
        (VisionModel::ResNet18, "cifar100"),
        (VisionModel::ResNet18, "svhn"),
        (VisionModel::Vgg19, "cifar10"),
        (VisionModel::ResNet50, "imagenet"),
        (VisionModel::Deit, "imagenet"),
    ] {
        let mut rows = Vec::new();
        for (label, rule) in [
            ("vanilla stable rank", RankRule::Vanilla),
            ("scaled stable rank", RankRule::Scaled),
        ] {
            let mut cfg = scenarios::bench_cuttlefish_config();
            cfg.rank_rule = rule;
            cfg.transformer_rank_rule = match rule {
                RankRule::Vanilla => RankRule::Vanilla,
                _ => RankRule::ScaledWithAccumulative { p: 0.8 },
            };
            let classes = scenarios::dataset_spec(dataset).classes;
            let mut net = scenarios::build_model(model, classes, 0);
            let mut adapter = scenarios::vision_adapter(dataset, 1000);
            let tcfg = scenarios::trainer_config(model, dataset, epochs, 0);
            let res = run_training(
                &mut net,
                &mut adapter,
                &tcfg,
                &SwitchPolicy::Cuttlefish(cfg),
                Some(&scenarios::clock_targets(model)),
            )
            .expect("run");
            rows.push((label, res));
        }
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(label, r)| {
                vec![
                    label.to_string(),
                    fmt_params(r.params_final, r.params_full),
                    format!("{:.3}", r.best_metric),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Tables 15–16 — rank-metric ablation, {} on {dataset}-like",
                model.name()
            ),
            &["metric", "params", "val acc"],
            &table,
        );
        let vanilla_smaller = rows[0].1.params_final <= rows[1].1.params_final;
        println!("vanilla produces the smaller model: {vanilla_smaller} (paper: always)");
        json.push(serde_json::json!({
            "model": model.name(), "dataset": dataset,
            "vanilla": {"params": rows[0].1.params_final, "acc": rows[0].1.best_metric},
            "scaled": {"params": rows[1].1.params_final, "acc": rows[1].1.best_metric},
        }));
    }
    save_json("table15_scaled_rank", &json);
}
