//! Design-choice ablation (DESIGN.md): the switch-detector's derivative
//! window. Window = 1 is the paper's raw `dϱ/dt ≤ ε` rule; larger windows
//! smooth single-epoch noise in the micro-scale rank sequences. We compare
//! the discovered Ê, the model size, and the accuracy across windows and
//! seeds.

use cuttlefish_bench::methods::{run_vision, Method};
use cuttlefish_bench::scenarios::{bench_cuttlefish_config, VisionModel};
use cuttlefish_bench::{default_epochs, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let seeds = [0u64, 1];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for window in [1usize, 2, 4] {
        let mut es = Vec::new();
        let mut accs = Vec::new();
        let mut params = Vec::new();
        for &seed in &seeds {
            let mut cfg = bench_cuttlefish_config();
            cfg.window = window;
            let r = run_vision(
                &Method::CuttlefishWith(cfg),
                VisionModel::ResNet18,
                "cifar10",
                epochs,
                seed,
            )
            .expect("run");
            es.push(r.e_hat.unwrap_or(epochs) as f32);
            accs.push(r.metric);
            params.push(r.params as f32);
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let std = |v: &[f32]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32).sqrt()
        };
        rows.push(vec![
            window.to_string(),
            format!("{:.1} ± {:.1}", mean(&es), std(&es)),
            format!("{:.3}", mean(&accs)),
            format!("{:.0}k", mean(&params) / 1e3),
        ]);
        json.push(serde_json::json!({
            "window": window, "e_mean": mean(&es), "e_std": std(&es),
            "acc": mean(&accs), "params": mean(&params),
        }));
    }
    print_table(
        &format!(
            "Ablation — switch-detector derivative window (ResNet-18 / cifar10-like, T = {epochs})"
        ),
        &["window", "E_hat", "val acc", "params"],
        &rows,
    );
    println!("\nwindow = 1 is the paper's raw rule; the windowed variant trades a slightly later");
    println!("switch for lower seed-to-seed variance of E_hat at micro scale.");
    save_json("ablation_tracker_window", &json);
}
