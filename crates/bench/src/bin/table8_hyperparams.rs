//! Tables 8–10: the hyperparameters (Ê, K̂) Cuttlefish discovers on every
//! task, next to the manually tuned Pufferfish and SI&FD values, over
//! three seeds (the paper reports mean ± std of Ê).

use cuttlefish::SwitchPolicy;
use cuttlefish_baselines::pufferfish;
use cuttlefish_bench::methods::{run_vision, Method};
use cuttlefish_bench::scenarios::VisionModel;
use cuttlefish_bench::{default_epochs, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let seeds = [0u64, 1];
    let mut json = Vec::new();
    let mut rows = Vec::new();
    for (model, dataset) in [
        (VisionModel::ResNet18, "cifar10"),
        (VisionModel::ResNet18, "cifar100"),
        (VisionModel::ResNet18, "svhn"),
        (VisionModel::Vgg19, "cifar10"),
        (VisionModel::Vgg19, "svhn"),
    ] {
        let mut es = Vec::new();
        let mut ks = Vec::new();
        for &seed in &seeds {
            let cf = run_vision(&Method::Cuttlefish, model, dataset, epochs, seed).expect("cf");
            es.push(cf.e_hat.unwrap_or(0) as f32);
            ks.push(cf.k_hat.unwrap_or(0) as f32);
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let std = |v: &[f32]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32).sqrt()
        };
        let SwitchPolicy::Manual {
            full_rank_epochs: pf_e,
            k: pf_k,
            ..
        } = pufferfish::policy_for(model.pufferfish_key(), epochs)
        else {
            unreachable!()
        };
        rows.push(vec![
            format!("{} / {dataset}", model.name()),
            format!("{:.1} ± {:.1}", mean(&es), std(&es)),
            format!("{:.0}", mean(&ks)),
            format!("{pf_e}"),
            format!("{pf_k}"),
            "0".into(),
            "1".into(),
        ]);
        json.push(serde_json::json!({
            "model": model.name(), "dataset": dataset,
            "cuttlefish_e_mean": mean(&es), "cuttlefish_e_std": std(&es),
            "cuttlefish_k": mean(&ks), "pufferfish_e": pf_e, "pufferfish_k": pf_k,
        }));
    }
    print_table(
        &format!("Tables 8 — discovered vs tuned hyperparameters (T = {epochs}, 2 seeds)"),
        &[
            "scenario", "CF E_hat", "CF K_hat", "PF E", "PF K", "SI&FD E", "SI&FD K",
        ],
        &rows,
    );
    println!("\nPaper shape: Cuttlefish finds larger K than Pufferfish on ResNet-18 and smaller on VGG-19;");
    println!("E_hat varies across seeds (the paper's Table 8 reports 82.3±10.1 of 300 for ResNet-18/CIFAR-10).");
    save_json("table8_hyperparams", &json);
}
