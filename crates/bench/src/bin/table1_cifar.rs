//! Table 1: ResNet-18 and VGG-19 on the CIFAR-10/CIFAR-100-like tasks —
//! params / accuracy / simulated end-to-end time for Full-rank,
//! Pufferfish, SI&FD (size-matched), IMP, XNOR-Net, LC (VGG only, as in
//! the paper) and Cuttlefish.

use cuttlefish_bench::methods::{mean_chosen_ratio, run_vision, Method, MethodRow};
use cuttlefish_bench::scenarios::VisionModel;
use cuttlefish_bench::{default_epochs, fmt_hours, fmt_params, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let mut all = Vec::new();
    for model in [VisionModel::ResNet18, VisionModel::Vgg19] {
        for dataset in ["cifar10", "cifar100"] {
            let mut rows: Vec<MethodRow> = Vec::new();
            let full = run_vision(&Method::FullRank, model, dataset, epochs, 0).expect("full");
            let cf = run_vision(&Method::Cuttlefish, model, dataset, epochs, 0).expect("cf");
            let si_rho = mean_chosen_ratio(&cf.decisions);
            rows.push(full.clone());
            rows.push(run_vision(&Method::Pufferfish, model, dataset, epochs, 0).expect("pf"));
            rows.push(
                run_vision(&Method::SiFd { rho: si_rho }, model, dataset, epochs, 0).expect("sifd"),
            );
            rows.push(
                run_vision(&Method::Imp { rounds: 2 }, model, dataset, epochs, 0).expect("imp"),
            );
            rows.push(run_vision(&Method::Xnor, model, dataset, epochs, 0).expect("xnor"));
            if model == VisionModel::Vgg19 {
                rows.push(run_vision(&Method::Lc, model, dataset, epochs, 0).expect("lc"));
            }
            rows.push(cf);

            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.method.clone(),
                        fmt_params(r.params, r.params_full),
                        format!("{:.3}", r.metric),
                        fmt_hours(r.hours, full.hours),
                    ]
                })
                .collect();
            print_table(
                &format!(
                    "Table 1 — {} on {dataset}-like (T = {epochs})",
                    model.name()
                ),
                &["method", "params", "val acc", "sim hrs (speedup)"],
                &table,
            );
            all.push(serde_json::json!({
                "model": model.name(), "dataset": dataset, "rows": rows,
            }));
        }
    }
    save_json("table1_cifar", &all);
}
