//! Renders a telemetry JSONL stream (from `cuttlefish_cli --telemetry`)
//! into a human-readable run report: manifest header, roofline profile,
//! stable-rank trajectory, switch decisions, time-per-phase breakdown, and
//! a kernel-counter histogram.
//!
//! ```text
//! cargo run --release -p cuttlefish-bench --bin telemetry_summary -- run.jsonl
//! ```

use cuttlefish_telemetry::RunReport;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: telemetry_summary <run.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = RunReport::from_jsonl(&text);
    if report.events().is_empty() && !report.skipped_lines.is_empty() {
        eprintln!(
            "error: {path} contains no parseable telemetry events ({} malformed lines)",
            report.skipped_lines.len()
        );
        return ExitCode::FAILURE;
    }
    print!("{}", report.render());
    ExitCode::SUCCESS
}
