//! §4.3: Cuttlefish's computational overheads — profiling and per-epoch
//! stable-rank estimation as fractions of the end-to-end run, on both the
//! simulated paper workload and this reproduction's real wall clock.

use cuttlefish::rank::{stable_rank_fast, stable_rank_of};
use cuttlefish_bench::{print_table, save_json, scenarios};
use cuttlefish_perf::{DeviceProfile, TrainingClock};
use std::time::Instant;

fn main() {
    // --- Simulated accounting at paper scale (300 epochs, E = 82) -------
    let targets = scenarios::clock_targets(scenarios::VisionModel::ResNet18);
    let mut train = TrainingClock::new(DeviceProfile::v100());
    train.add_training_iterations(&targets, 1024, 49 * 300, |_| None);
    let total = train.seconds();

    let mut prof = TrainingClock::new(DeviceProfile::v100());
    prof.add_profiling(&targets, 1024, 11, |t| Some((t.full_rank() / 4).max(1)));
    let mut est = TrainingClock::new(DeviceProfile::v100());
    for _ in 0..82 {
        est.add_rank_estimation(&targets);
    }

    let rows = vec![
        vec![
            "profiling (Alg. 2, tau=11)".to_string(),
            format!("{:.2} s", prof.seconds()),
            format!("{:.2}%", 100.0 * prof.seconds() / total),
            "3.98 s / 0.16%".to_string(),
        ],
        vec![
            "rank estimation (82 epochs)".to_string(),
            format!("{:.2} s", est.seconds()),
            format!(
                "{:.3} s/epoch; {:.2}%",
                est.seconds() / 82.0,
                100.0 * est.seconds() / total
            ),
            "0.49 s/epoch / 1.6%".to_string(),
        ],
    ];
    print_table(
        "§4.3 — simulated overheads, ResNet-18 / CIFAR-10 workload (V100, batch 1024, T = 300)",
        &["overhead", "simulated", "fraction of end-to-end", "paper"],
        &rows,
    );

    // --- Real wall-clock of the two rank-estimation paths ---------------
    let mut net = scenarios::build_model(scenarios::VisionModel::ResNet18, 10, 0);
    let names: Vec<String> = net.targets().iter().map(|t| t.name.clone()).collect();
    let t0 = Instant::now();
    for name in &names {
        let w = net.weight_matrix(name).unwrap();
        let _ = stable_rank_of(&w).unwrap();
    }
    let svd_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    for name in &names {
        let w = net.weight_matrix(name).unwrap();
        let _ = stable_rank_fast(&w).unwrap();
    }
    let fast_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nreal wall-clock, micro ResNet-18 ({} layers): svdvals path {:.1} ms/epoch, power-iteration fast path {:.1} ms/epoch ({:.1}x)",
        names.len(),
        svd_ms,
        fast_ms,
        svd_ms / fast_ms.max(1e-9)
    );
    save_json(
        "overhead_accounting",
        &serde_json::json!({
            "sim_profiling_s": prof.seconds(),
            "sim_profiling_frac": prof.seconds() / total,
            "sim_rank_est_s_per_epoch": est.seconds() / 82.0,
            "sim_rank_est_frac": est.seconds() / total,
            "real_svdvals_ms": svd_ms,
            "real_fast_ms": fast_ms,
        }),
    );
}
