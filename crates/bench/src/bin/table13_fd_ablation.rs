//! Tables 13–14: Frobenius-decay ablation — Cuttlefish with FD on vs. off
//! across the CIFAR-class tasks (and the ImageNet-like ResNet-50).
//! Paper shape: FD sometimes helps (notably CIFAR-100 / ImageNet) but not
//! consistently.

use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::scenarios::{self, VisionModel};
use cuttlefish_bench::{default_epochs, fmt_params, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let mut json = Vec::new();
    for (model, dataset) in [
        (VisionModel::ResNet18, "cifar10"),
        (VisionModel::ResNet18, "cifar100"),
        (VisionModel::ResNet18, "svhn"),
        (VisionModel::Vgg19, "cifar10"),
        (VisionModel::ResNet50, "imagenet"),
    ] {
        let mut rows = Vec::new();
        for fd in [None, Some(1e-4f32)] {
            let mut cfg = scenarios::bench_cuttlefish_config();
            cfg.frobenius_decay = fd;
            let classes = scenarios::dataset_spec(dataset).classes;
            let mut net = scenarios::build_model(model, classes, 0);
            let mut adapter = scenarios::vision_adapter(dataset, 1000);
            let tcfg = scenarios::trainer_config(model, dataset, epochs, 0);
            let res = run_training(
                &mut net,
                &mut adapter,
                &tcfg,
                &SwitchPolicy::Cuttlefish(cfg),
                Some(&scenarios::clock_targets(model)),
            )
            .expect("run");
            rows.push((fd, res));
        }
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(fd, r)| {
                vec![
                    if fd.is_some() {
                        "Cuttlefish w. FD"
                    } else {
                        "Cuttlefish wo. FD"
                    }
                    .to_string(),
                    fmt_params(r.params_final, r.params_full),
                    format!("{:.3}", r.best_metric),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Tables 13–14 — FD ablation, {} on {dataset}-like",
                model.name()
            ),
            &["variant", "params", "val acc"],
            &table,
        );
        json.push(serde_json::json!({
            "model": model.name(), "dataset": dataset,
            "without_fd": {"params": rows[0].1.params_final, "acc": rows[0].1.best_metric},
            "with_fd": {"params": rows[1].1.params_final, "acc": rows[1].1.best_metric},
        }));
    }
    save_json("table13_fd_ablation", &json);
}
