//! Table 19: ResNet-18 and VGG-19 on the SVHN-like (easier) task. Shape
//! target: SVHN admits the most aggressive compression — Cuttlefish's
//! discovered ranks are the lowest of the three CIFAR-class tasks — with
//! no accuracy loss, and Cuttlefish+FD is also reported.

use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::methods::{mean_chosen_ratio, run_vision, Method, MethodRow};
use cuttlefish_bench::scenarios::{self, VisionModel};
use cuttlefish_bench::{default_epochs, fmt_hours, fmt_params, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let mut all = Vec::new();
    for model in [VisionModel::ResNet18, VisionModel::Vgg19] {
        let full = run_vision(&Method::FullRank, model, "svhn", epochs, 0).expect("full");
        let cf = run_vision(&Method::Cuttlefish, model, "svhn", epochs, 0).expect("cf");
        let si_rho = mean_chosen_ratio(&cf.decisions);
        let mut rows: Vec<MethodRow> = vec![
            full.clone(),
            run_vision(&Method::Pufferfish, model, "svhn", epochs, 0).expect("pf"),
            run_vision(&Method::SiFd { rho: si_rho }, model, "svhn", epochs, 0).expect("sifd"),
            run_vision(&Method::Imp { rounds: 2 }, model, "svhn", epochs, 0).expect("imp"),
            cf,
        ];
        // Cuttlefish + FD explicitly (Table 19 has both rows).
        {
            let mut cfg = scenarios::bench_cuttlefish_config();
            cfg.frobenius_decay = Some(1e-4);
            let classes = scenarios::dataset_spec("svhn").classes;
            let mut net = scenarios::build_model(model, classes, 0);
            let mut adapter = scenarios::vision_adapter("svhn", 1000);
            let tcfg = scenarios::trainer_config(model, "svhn", epochs, 0);
            let res = run_training(
                &mut net,
                &mut adapter,
                &tcfg,
                &SwitchPolicy::Cuttlefish(cfg),
                Some(&scenarios::clock_targets(model)),
            )
            .expect("cf+fd");
            rows.push(MethodRow {
                method: "Cuttlefish+FD".into(),
                params: res.params_final,
                params_full: res.params_full,
                metric: res.best_metric,
                hours: res.sim_hours,
                e_hat: res.e_hat,
                k_hat: res.k_hat,
                decisions: res.decisions,
            });
        }
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.method.clone(),
                    fmt_params(r.params, r.params_full),
                    format!("{:.3}", r.metric),
                    fmt_hours(r.hours, full.hours),
                ]
            })
            .collect();
        print_table(
            &format!("Table 19 — {} on svhn-like (T = {epochs})", model.name()),
            &["method", "params", "val acc", "sim hrs (speedup)"],
            &table,
        );
        all.push(serde_json::json!({"model": model.name(), "rows": rows}));
    }
    save_json("table19_svhn", &all);
}
