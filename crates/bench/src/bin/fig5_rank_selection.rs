//! Figures 5/7: the per-layer ranks R chosen by Cuttlefish, Pufferfish
//! (ρ = 1/4), and LC compression for VGG-19 on the three CIFAR-class
//! tasks. The reproduction target: Cuttlefish's selections track LC's
//! *learned* ranks far better than the fixed global ratio does, and harder
//! tasks get higher ranks.

use cuttlefish_baselines::lc;
use cuttlefish_baselines::util::LoopCfg;
use cuttlefish_bench::methods::{run_vision, Method};
use cuttlefish_bench::scenarios::{self, VisionModel};
use cuttlefish_bench::{default_epochs, print_table, save_json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Selection {
    dataset: String,
    layers: Vec<String>,
    full_ranks: Vec<usize>,
    cuttlefish: Vec<Option<usize>>,
    pufferfish: Vec<Option<usize>>,
    lc: Vec<Option<usize>>,
}

fn main() {
    let epochs = default_epochs();
    let model = VisionModel::Vgg19;
    let mut all = Vec::new();
    for dataset in ["cifar10", "cifar100", "svhn"] {
        // Cuttlefish + Pufferfish rank decisions via the shared runner.
        let cf =
            run_vision(&Method::Cuttlefish, model, dataset, epochs, 0).expect("cuttlefish run");
        let pf =
            run_vision(&Method::Pufferfish, model, dataset, epochs, 0).expect("pufferfish run");

        // LC's learned ranks.
        let classes = scenarios::dataset_spec(dataset).classes;
        let mut net = scenarios::build_model(model, classes, 0);
        let mut adapter = scenarios::vision_adapter(dataset, 1000);
        let tcfg = scenarios::trainer_config(model, dataset, epochs, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let lc_res = lc::run_lc(
            &mut net,
            &mut adapter,
            &LoopCfg {
                epochs,
                batch_size: tcfg.batch_size,
                schedule: tcfg.schedule.clone(),
                optimizer: tcfg.optimizer,
                label_smoothing: 0.0,
            },
            &lc::LcConfig {
                alpha: 2e-3,
                c_every: 2,
                ..lc::LcConfig::default()
            },
            &mut rng,
            &scenarios::clock_targets(model),
            tcfg.device.clone(),
            tcfg.sim_batch,
            tcfg.sim_iters_per_epoch,
        )
        .expect("lc run");

        let cf_map: HashMap<&str, Option<usize>> = cf
            .decisions
            .iter()
            .map(|d| (d.name.as_str(), d.chosen))
            .collect();
        let pf_map: HashMap<&str, Option<usize>> = pf
            .decisions
            .iter()
            .map(|d| (d.name.as_str(), d.chosen))
            .collect();

        let targets = scenarios::build_model(model, classes, 0);
        let layers: Vec<String> = targets.targets().iter().map(|t| t.name.clone()).collect();
        let full_ranks: Vec<usize> = targets.targets().iter().map(|t| t.full_rank()).collect();
        let rows: Vec<Vec<String>> = layers
            .iter()
            .zip(&full_ranks)
            .map(|(name, &fr)| {
                let show = |v: Option<&Option<usize>>| match v.copied().flatten() {
                    Some(r) => r.to_string(),
                    None => "-".to_string(),
                };
                vec![
                    name.clone(),
                    fr.to_string(),
                    show(cf_map.get(name.as_str())),
                    show(pf_map.get(name.as_str())),
                    lc_res
                        .learned_ranks
                        .get(name)
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 5 — selected ranks, VGG-19 on {dataset} ('-' = kept full-rank)"),
            &["layer", "full rank", "Cuttlefish", "Pufferfish", "LC"],
            &rows,
        );
        all.push(Selection {
            dataset: dataset.to_string(),
            cuttlefish: layers
                .iter()
                .map(|n| cf_map.get(n.as_str()).copied().flatten())
                .collect(),
            pufferfish: layers
                .iter()
                .map(|n| pf_map.get(n.as_str()).copied().flatten())
                .collect(),
            lc: layers
                .iter()
                .map(|n| lc_res.learned_ranks.get(n).copied())
                .collect(),
            layers,
            full_ranks,
        });
    }
    // Alignment metric: mean |cf − lc| vs |pf − lc| over layers both chose.
    for sel in &all {
        let mut cf_err = Vec::new();
        let mut pf_err = Vec::new();
        for i in 0..sel.layers.len() {
            if let Some(lc_r) = sel.lc[i] {
                if let Some(cf_r) = sel.cuttlefish[i] {
                    cf_err.push((cf_r as f32 - lc_r as f32).abs());
                }
                if let Some(pf_r) = sel.pufferfish[i] {
                    pf_err.push((pf_r as f32 - lc_r as f32).abs());
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        println!(
            "{}: mean |rank - LC rank| — Cuttlefish {:.1}, Pufferfish {:.1}",
            sel.dataset,
            mean(&cf_err),
            mean(&pf_err)
        );
    }
    save_json("fig5_rank_selection", &all);
}
