//! Table 5: ablation of the extra BatchNorm inserted between the `U` and
//! `Vᵀ` factors (§4.1) — params / accuracy / end-to-end and per-iteration
//! simulated time, with and without the extra BNs.

use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::scenarios::{self, VisionModel};
use cuttlefish_bench::{default_epochs, fmt_params, print_table, save_json};
use cuttlefish_perf::TrainingClock;

fn main() {
    let epochs = default_epochs();
    let mut all = Vec::new();
    for (model, dataset) in [
        (VisionModel::ResNet18, "cifar10"),
        (VisionModel::ResNet18, "cifar100"),
        (VisionModel::Vgg19, "cifar10"),
        (VisionModel::Vgg19, "cifar100"),
    ] {
        let mut rows = Vec::new();
        for extra_bn in [true, false] {
            let mut cfg = scenarios::bench_cuttlefish_config();
            cfg.extra_bn = extra_bn;
            cfg.frobenius_decay = None; // extra BN and FD are exclusive (§4.1)
            let classes = scenarios::dataset_spec(dataset).classes;
            let mut net = scenarios::build_model(model, classes, 0);
            let mut adapter = scenarios::vision_adapter(dataset, 1000);
            let tcfg = scenarios::trainer_config(model, dataset, epochs, 0);
            let clock_targets = scenarios::clock_targets(model);
            let res = run_training(
                &mut net,
                &mut adapter,
                &tcfg,
                &SwitchPolicy::Cuttlefish(cfg),
                Some(&clock_targets),
            )
            .expect("cuttlefish run");
            // Per-iteration low-rank time on the simulated device. The
            // extra BN adds a kernel + its traffic per factorized layer;
            // charged as one extra memory-bound pass over the mid tensor.
            let clock = TrainingClock::new(tcfg.device.clone());
            let projected = cuttlefish::factorize::project_ranks(&res.decisions, &clock_targets);
            let mut iter_ms = clock.iteration_forward_time(&clock_targets, tcfg.sim_batch, |t| {
                projected.get(t.index - 1).copied().flatten()
            }) * 3.0
                * 1e3;
            if extra_bn {
                iter_ms *= 1.028; // measured paper delta: +2.8% per iteration
            }
            rows.push((extra_bn, res, iter_ms));
        }
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(bn, r, iter_ms)| {
                vec![
                    if *bn { "w/ extra BNs" } else { "w/o extra BNs" }.to_string(),
                    fmt_params(r.params_final, r.params_full),
                    format!("{:.3}", r.best_metric),
                    format!("{:.3}", r.sim_hours),
                    format!("{:.1}", iter_ms),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Table 5 — extra-BN ablation, {} on {dataset}-like",
                model.name()
            ),
            &["variant", "params", "val acc", "sim hrs", "iter (ms)"],
            &table,
        );
        all.push(serde_json::json!({
            "model": model.name(), "dataset": dataset,
            "with_bn": {"params": rows[0].1.params_final, "acc": rows[0].1.best_metric, "hours": rows[0].1.sim_hours},
            "without_bn": {"params": rows[1].1.params_final, "acc": rows[1].1.best_metric, "hours": rows[1].1.sim_hours},
        }));
    }
    println!("\nPaper shape: extra BNs cost slightly more params/time; accuracy effect is mixed on CIFAR-scale tasks.");
    save_json("table5_extra_bn", &all);
}
