//! Table 4: GLUE fine-tuning — vanilla micro-BERT, DistilBERT-like and
//! TinyBERT-like students (logit distillation), and Cuttlefish micro-BERT
//! (fine-tune full-rank for E = 1–2 epochs, then factorize with the
//! transformer rank rule). A shared encoder is MLM-pre-trained once and
//! its weights are transplanted into every fine-tuning run.

use cuttlefish::adapter::{GlueAdapter, MlmAdapter};
use cuttlefish::{run_training, CuttlefishConfig, OptimizerKind, SwitchPolicy, TrainerConfig};
use cuttlefish_baselines::distill::{distill_train, DistillConfig};
use cuttlefish_baselines::util::{train_with_hook, LoopCfg};
use cuttlefish_bench::{default_epochs, print_table, save_json};
use cuttlefish_data::{glue_suite, MlmStream};
use cuttlefish_nn::models::{build_micro_bert, BertHead, MicroBertConfig};
use cuttlefish_nn::schedule::LrSchedule;
use cuttlefish_nn::Network;
use cuttlefish_perf::DeviceProfile;
use cuttlefish_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

const VOCAB: usize = 48;
const TOKENS: usize = 10;
const DIM: usize = 24;
const DEPTH: usize = 3;
const HEADS: usize = 3;

fn encoder_cfg(head: BertHead) -> MicroBertConfig {
    MicroBertConfig {
        vocab: VOCAB,
        max_tokens: TOKENS,
        dim: DIM,
        depth: DEPTH,
        heads: HEADS,
        mlp_ratio: 2,
        head,
    }
}

/// Copies parameter values between nets while shapes line up (the heads
/// differ, everything before them matches by construction order).
fn transplant(src: &mut Network, dst: &mut Network) {
    let mut values: Vec<Matrix> = Vec::new();
    src.visit_params(&mut |p| values.push(p.value.clone()));
    let mut i = 0usize;
    dst.visit_params(&mut |p| {
        if i < values.len() && p.value.shape() == values[i].shape() {
            p.value = values[i].clone();
        }
        i += 1;
    });
}

fn finetune_cfg(epochs: usize, seed: u64) -> TrainerConfig {
    let mut c = TrainerConfig::transformer_default(epochs, seed);
    c.batch_size = 24;
    c.schedule = LrSchedule::Constant { lr: 2e-3 };
    c.optimizer = OptimizerKind::AdamW { weight_decay: 0.0 };
    c.label_smoothing = 0.0;
    c.device = DeviceProfile::v100();
    c.sim_batch = 32;
    c.sim_iters_per_epoch = 1000;
    c
}

fn main() {
    let ft_epochs = default_epochs().clamp(6, 8);
    let mut rng = StdRng::seed_from_u64(0);

    // --- Shared MLM pre-training ---------------------------------------
    println!("pre-training the shared encoder (MLM)...");
    let mut pretrained = build_micro_bert(&encoder_cfg(BertHead::MaskedLm), &mut rng);
    let mut mlm = MlmAdapter::new(MlmStream::new(VOCAB, TOKENS, 3), 24, 48);
    let pre_cfg = LoopCfg {
        epochs: 10,
        batch_size: 24,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        optimizer: OptimizerKind::AdamW { weight_decay: 0.0 },
        label_smoothing: 0.0,
    };
    let stats = train_with_hook(
        &mut pretrained,
        &mut mlm,
        &pre_cfg,
        &mut rng,
        &mut |_, _| Ok(()),
    )
    .expect("pretraining");
    println!(
        "pre-training MLM loss: {:.3} -> {:.3}",
        stats.loss_curve[0],
        stats.loss_curve.last().unwrap()
    );

    let suite = glue_suite(VOCAB, TOKENS, 11);
    let mut header = vec!["Model".to_string(), "Params".to_string()];
    header.extend(suite.iter().map(|t| t.name.to_string()));
    header.push("Avg.".to_string());
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows = Vec::new();

    // Method closures produce (params, per-task metric).
    for variant in ["BERT_BASE", "Distil-BERT", "TinyBERT", "Cuttlefish"] {
        let mut metrics = Vec::new();
        let mut params = 0usize;
        for task in &suite {
            let head = BertHead::Classification {
                classes: task.classes.max(1),
            };
            let seed = 100 + task.name.len() as u64;
            let metric = match variant {
                "BERT_BASE" => {
                    let mut net =
                        build_micro_bert(&encoder_cfg(head), &mut StdRng::seed_from_u64(seed));
                    transplant(&mut pretrained, &mut net);
                    let mut ad = GlueAdapter::new(task.clone());
                    let res = run_training(
                        &mut net,
                        &mut ad,
                        &finetune_cfg(ft_epochs, seed),
                        &SwitchPolicy::FullRankOnly,
                        None,
                    )
                    .expect("bert ft");
                    params = res.params_final;
                    res.best_metric
                }
                "Cuttlefish" => {
                    let mut net =
                        build_micro_bert(&encoder_cfg(head), &mut StdRng::seed_from_u64(seed));
                    transplant(&mut pretrained, &mut net);
                    let mut ad = GlueAdapter::new(task.clone());
                    // Short fine-tunes: switch as soon as the tracker has a
                    // derivative (E ≈ 2), matching the paper's E = 1.
                    let cfg = CuttlefishConfig {
                        epsilon: f32::INFINITY,
                        window: 1,
                        max_full_rank_fraction: 0.34,
                        ..CuttlefishConfig::default()
                    };
                    let res = run_training(
                        &mut net,
                        &mut ad,
                        &finetune_cfg(ft_epochs, seed),
                        &SwitchPolicy::Cuttlefish(cfg),
                        None,
                    )
                    .expect("cf ft");
                    params = res.params_final;
                    res.best_metric
                }
                student => {
                    // Distilled students: teacher = fine-tuned BERT_BASE.
                    if task.classes < 2 {
                        // STS-B regression is not distilled; student
                        // fine-tunes directly (paper trains all heads).
                        let cfgv = if student == "Distil-BERT" {
                            MicroBertConfig {
                                depth: 2,
                                head,
                                ..encoder_cfg(head)
                            }
                        } else {
                            MicroBertConfig {
                                depth: 2,
                                dim: 20,
                                heads: 2,
                                head,
                                ..encoder_cfg(head)
                            }
                        };
                        let mut net = build_micro_bert(&cfgv, &mut StdRng::seed_from_u64(seed));
                        transplant(&mut pretrained, &mut net);
                        let mut ad = GlueAdapter::new(task.clone());
                        let res = run_training(
                            &mut net,
                            &mut ad,
                            &finetune_cfg(ft_epochs, seed),
                            &SwitchPolicy::FullRankOnly,
                            None,
                        )
                        .expect("student ft");
                        params = res.params_final;
                        res.best_metric
                    } else {
                        let mut teacher =
                            build_micro_bert(&encoder_cfg(head), &mut StdRng::seed_from_u64(seed));
                        transplant(&mut pretrained, &mut teacher);
                        let mut t_ad = GlueAdapter::new(task.clone());
                        run_training(
                            &mut teacher,
                            &mut t_ad,
                            &finetune_cfg(ft_epochs, seed),
                            &SwitchPolicy::FullRankOnly,
                            None,
                        )
                        .expect("teacher ft");
                        let (cfgv, dcfg) = if student == "Distil-BERT" {
                            (
                                MicroBertConfig {
                                    depth: 2,
                                    head,
                                    ..encoder_cfg(head)
                                },
                                DistillConfig {
                                    alpha: 0.5,
                                    temperature: 2.0,
                                },
                            )
                        } else {
                            (
                                MicroBertConfig {
                                    depth: 2,
                                    dim: 20,
                                    heads: 2,
                                    head,
                                    ..encoder_cfg(head)
                                },
                                DistillConfig {
                                    alpha: 0.3,
                                    temperature: 4.0,
                                },
                            )
                        };
                        let mut net = build_micro_bert(&cfgv, &mut StdRng::seed_from_u64(seed));
                        transplant(&mut pretrained, &mut net);
                        let loop_cfg = LoopCfg {
                            epochs: ft_epochs,
                            batch_size: 24,
                            schedule: LrSchedule::Constant { lr: 2e-3 },
                            optimizer: OptimizerKind::AdamW { weight_decay: 0.0 },
                            label_smoothing: 0.0,
                        };
                        let m =
                            distill_train(&mut net, &mut teacher, task, &loop_cfg, &dcfg, &mut rng)
                                .expect("distill");
                        params = net.param_count();
                        m
                    }
                }
            };
            metrics.push(metric);
        }
        let avg: f32 = metrics.iter().sum::<f32>() / metrics.len() as f32;
        let mut row = vec![variant.to_string(), format!("{:.0}k", params as f64 / 1e3)];
        row.extend(metrics.iter().map(|m| format!("{:.3}", m)));
        row.push(format!("{avg:.3}"));
        json_rows.push(
            serde_json::json!({"model": variant, "params": params, "metrics": metrics, "avg": avg}),
        );
        rows.push(row);
    }

    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        &format!("Table 4 — GLUE fine-tuning ({ft_epochs} epochs per task; F1 for QQP/MRPC, Spearman for STS-B)"),
        &header_refs,
        &rows,
    );
    save_json("table4_glue", &json_rows);
}
