//! Table 2: ResNet-50 and WideResNet-50-2 on the ImageNet-like task —
//! params / accuracy / FLOPs / simulated time for vanilla, Pufferfish, and
//! Cuttlefish. FLOPs are computed on the paper-scale architecture shapes
//! (224×224 inputs) with the micro ranks projected stack-by-stack.

use cuttlefish::factorize::project_ranks;
use cuttlefish_bench::methods::{run_vision, Method, MethodRow};
use cuttlefish_bench::scenarios::{clock_targets, VisionModel};
use cuttlefish_bench::{default_epochs, fmt_hours, fmt_params, print_table, save_json};
use cuttlefish_perf::arch::total_flops;

fn gflops(row: &MethodRow, model: VisionModel) -> f64 {
    let clock = clock_targets(model);
    if row.decisions.is_empty() {
        total_flops(&clock, |_| None) / 1e9
    } else {
        let projected = project_ranks(&row.decisions, &clock);
        total_flops(&clock, |t| projected.get(t.index - 1).copied().flatten()) / 1e9
    }
}

fn main() {
    let epochs = default_epochs();
    let mut all = Vec::new();
    for model in [VisionModel::WideResNet50, VisionModel::ResNet50] {
        let full = run_vision(&Method::FullRank, model, "imagenet", epochs, 0).expect("full");
        let pf = run_vision(&Method::Pufferfish, model, "imagenet", epochs, 0).expect("pf");
        let cf = run_vision(&Method::Cuttlefish, model, "imagenet", epochs, 0).expect("cf");
        let rows = [full.clone(), pf, cf];
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.method.clone(),
                    fmt_params(r.params, r.params_full),
                    format!("{:.3}", r.metric),
                    format!("{:.1}", gflops(r, model)),
                    fmt_hours(r.hours, full.hours),
                ]
            })
            .collect();
        print_table(
            &format!("Table 2 — {} on imagenet-like (T = {epochs})", model.name()),
            &[
                "method",
                "params",
                "top-1 acc",
                "GFLOPs@224",
                "sim hrs (speedup)",
            ],
            &table,
        );
        all.push(serde_json::json!({"model": model.name(), "rows": rows}));
    }
    save_json("table2_imagenet", &all);
}
