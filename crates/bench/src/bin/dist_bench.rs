//! Data-parallel communication benchmark: step time and bytes/step for
//! dense vs. factorized gradient exchange at 1/2/4 workers.
//!
//! Each cell runs a short distributed job on the synthetic vision task.
//! The dense rows keep the model full-rank for the whole run; the
//! factorized rows switch after one warm-up epoch via the manual
//! (Pufferfish-style) schedule, so their post-switch bytes/step shows
//! the ρ communication drop the Cuttlefish/Pufferfish lineage predicts.
//!
//! Run with: `cargo run --release -p cuttlefish-bench --bin dist_bench`
//! Results land in `bench_results/dist_comm.json`.

use cuttlefish::SwitchPolicy;
use cuttlefish_bench::{print_table, save_json};
use cuttlefish_data::{VisionSpec, VisionTask};
use cuttlefish_dist::{
    run_distributed_observed, DistConfig, DistMetrics, ExchangeKind, NetBuilder,
};
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_telemetry::export::{append_snapshot_jsonl, write_prometheus_file};
use cuttlefish_telemetry::{MetricsRegistry, NullRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const EPOCHS: usize = 3;
const STEPS_PER_EPOCH: usize = 4;
const RUN_SEED: u64 = 42;

#[derive(Serialize)]
struct DistCell {
    workers: usize,
    exchange: String,
    factorized: bool,
    steps: usize,
    wall_ms_per_step: f64,
    full_bytes_per_step: f64,
    low_bytes_per_step: f64,
    post_switch_ratio: Option<f64>,
    params_full: usize,
    params_final: usize,
    final_loss: f32,
}

#[derive(Serialize)]
struct DistCommReport {
    model: String,
    epochs: usize,
    steps_per_epoch: usize,
    batch_size: usize,
    cells: Vec<DistCell>,
}

fn builder() -> NetBuilder {
    Arc::new(|| {
        let mut rng = StdRng::seed_from_u64(7);
        build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut rng)
    })
}

fn run_cell(
    task: &VisionTask,
    workers: usize,
    factorized: bool,
    metrics: Option<&DistMetrics>,
) -> DistCell {
    let mut cfg = DistConfig::quick(workers, EPOCHS, STEPS_PER_EPOCH, RUN_SEED);
    if factorized {
        cfg.policy = SwitchPolicy::Manual {
            full_rank_epochs: 1,
            k: 1,
            rank_ratio: 0.25,
            extra_bn: false,
            frobenius_decay: None,
        };
        cfg.exchange = ExchangeKind::Factor;
    } else {
        cfg.policy = SwitchPolicy::FullRankOnly;
        cfg.exchange = ExchangeKind::Dense;
    }
    let t0 = Instant::now();
    let res = run_distributed_observed(&cfg, task, builder(), &NullRecorder, metrics)
        .expect("benchmark run");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let steps = cfg.total_steps();
    DistCell {
        workers,
        exchange: if factorized { "factor" } else { "dense" }.to_string(),
        factorized,
        steps,
        wall_ms_per_step: wall_ms / steps as f64,
        full_bytes_per_step: res.ledger.full_bytes_per_step(),
        low_bytes_per_step: res.ledger.low_bytes_per_step(),
        post_switch_ratio: res.ledger.post_switch_ratio(),
        params_full: res.params_full,
        params_final: res.params_final,
        final_loss: *res.loss_curve.last().unwrap_or(&f32::NAN),
    }
}

fn main() {
    // `--metrics`: record into a live registry across every cell and dump
    // the final snapshot next to the bench JSON (JSONL event form plus
    // Prometheus text exposition).
    let with_metrics = std::env::args().any(|a| a == "--metrics");
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = with_metrics.then(|| DistMetrics::new(Arc::clone(&registry)));

    let task = VisionTask::generate(&VisionSpec::tiny(), 3);
    let mut cells = Vec::new();
    for &workers in &[1usize, 2, 4] {
        for &factorized in &[false, true] {
            cells.push(run_cell(&task, workers, factorized, metrics.as_ref()));
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.workers.to_string(),
                c.exchange.clone(),
                format!("{:.2}", c.wall_ms_per_step),
                format!("{:.0}", c.full_bytes_per_step),
                if c.low_bytes_per_step > 0.0 {
                    format!("{:.0}", c.low_bytes_per_step)
                } else {
                    "-".to_string()
                },
                c.post_switch_ratio
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table(
        "distributed gradient exchange",
        &[
            "workers",
            "exchange",
            "ms/step",
            "full B/step",
            "low B/step",
            "ratio",
        ],
        &rows,
    );
    if let Some(factor) = cells.iter().find(|c| c.factorized && c.workers == 4) {
        if let Some(r) = factor.post_switch_ratio {
            println!(
                "\npost-switch communication is {:.1}% of full-rank ({} -> {} params)",
                100.0 * r,
                factor.params_full,
                factor.params_final
            );
        }
    }

    if with_metrics {
        cuttlefish_bench::publish_kernel_counters(&registry);
        let snap = registry.snapshot();
        let dir = cuttlefish_bench::results_dir();
        let jsonl = dir.join("dist_metrics.jsonl");
        let prom = dir.join("dist_metrics.prom");
        if let Err(e) = append_snapshot_jsonl(&snap, "final", &jsonl) {
            eprintln!("warning: could not write {}: {e}", jsonl.display());
        }
        if let Err(e) = write_prometheus_file(&snap, &prom) {
            eprintln!("warning: could not write {}: {e}", prom.display());
        }
        eprintln!(
            "[dist_bench] metrics snapshot: {} + {}",
            jsonl.display(),
            prom.display()
        );
    }

    save_json(
        "dist_comm",
        &DistCommReport {
            model: "micro-resnet18/tiny-4".to_string(),
            epochs: EPOCHS,
            steps_per_epoch: STEPS_PER_EPOCH,
            batch_size: 16,
            cells,
        },
    );
    println!("saved bench_results/dist_comm.json");
}
