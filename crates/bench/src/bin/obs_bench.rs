//! Observability overhead benchmark: what one metric record costs, and
//! what live metrics cost an actual serving run.
//!
//! Two halves:
//!
//! * **micro** — per-record ns for the registry primitives (sharded
//!   counter add, gauge set, log-linear histogram record, trace-id mint)
//!   single-threaded and under all-core contention, plus the cost of a
//!   full registry snapshot. These are the numbers that justify putting
//!   the hot-path records inside serve workers and the lockstep loop.
//! * **macro** — a closed-loop serving run with and without a live
//!   [`ServeMetrics`] registry attached, interleaved A/B repetitions,
//!   best-of throughput each. The headline verdict is the relative
//!   regression: the registry is designed to cost < 2% of closed-loop
//!   serving throughput.
//!
//! `--quick` shrinks both halves for CI smoke runs. Results print as a
//! table and persist to `bench_results/obs_bench.json`.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cuttlefish_bench::{print_table, save_json};
use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_serve::{BatchPolicy, FrozenModel, ServeMetrics, Server, ServerConfig};
use cuttlefish_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, NullRecorder, TraceId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct MicroResult {
    op: String,
    threads: usize,
    iters: u64,
    ns_per_op: f64,
}

#[derive(Serialize)]
struct ServeOverheadResult {
    reps: usize,
    requests_per_rep: usize,
    baseline_rps: f64,
    metrics_rps: f64,
    overhead_pct: f64,
}

#[derive(Serialize)]
struct ObsBenchReport {
    quick: bool,
    micro: Vec<MicroResult>,
    serve: ServeOverheadResult,
    verdict: String,
}

/// Wall-clock ns per op over `iters` calls of `f`.
fn time_ns(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let t0 = Instant::now();
    for i in 0..iters {
        f(i);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Per-op ns with `threads` threads hammering the same `f` concurrently.
/// Reported per op *per thread* (i.e. observed latency of one record),
/// not aggregate throughput.
fn time_ns_contended(threads: usize, iters: u64, f: impl Fn(u64) + Send + Sync + 'static) -> f64 {
    let f = Arc::new(f);
    let per_thread = iters / threads as u64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    f(t as u64 * per_thread + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bench thread");
    }
    t0.elapsed().as_nanos() as f64 / per_thread as f64
}

fn micro_bench(quick: bool) -> Vec<MicroResult> {
    let iters: u64 = if quick { 200_000 } else { 2_000_000 };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let registry = Arc::new(MetricsRegistry::new());
    let counter: Arc<Counter> = registry.counter("bench_counter_total");
    let gauge: Arc<Gauge> = registry.gauge("bench_gauge");
    let hist: Arc<Histogram> = registry.histogram("bench_hist_us");
    let mut out = Vec::new();
    let mut push = |op: &str, threads: usize, ns: f64| {
        out.push(MicroResult {
            op: op.to_string(),
            threads,
            iters,
            ns_per_op: ns,
        });
    };

    push(
        "counter.add",
        1,
        time_ns(iters, |i| counter.add(black_box(i) & 7)),
    );
    {
        let c = Arc::clone(&counter);
        push(
            "counter.add",
            threads,
            time_ns_contended(threads, iters, move |i| c.add(black_box(i) & 7)),
        );
    }
    push(
        "gauge.set",
        1,
        time_ns(iters, |i| gauge.set(black_box(i as i64))),
    );
    // A spread of values exercises both the exact sub-128 buckets and the
    // log-linear range.
    push(
        "histogram.record",
        1,
        time_ns(iters, |i| {
            hist.record(black_box(i.wrapping_mul(0x9e37_79b9) & 0xf_ffff))
        }),
    );
    {
        let h = Arc::clone(&hist);
        push(
            "histogram.record",
            threads,
            time_ns_contended(threads, iters, move |i| {
                h.record(black_box(i.wrapping_mul(0x9e37_79b9) & 0xf_ffff))
            }),
        );
    }
    push(
        "trace_id.mint",
        1,
        time_ns(iters, |_| {
            black_box(TraceId::mint());
        }),
    );

    // Snapshot cost over a realistically-populated registry (the three
    // metrics above plus the serving set).
    let _serve = ServeMetrics::new(Arc::clone(&registry));
    let snap_iters = iters / 1000;
    push(
        "registry.snapshot",
        1,
        time_ns(snap_iters.max(100), |_| {
            black_box(registry.snapshot());
        }),
    );
    out
}

fn frozen() -> Arc<FrozenModel> {
    let build = || build_micro_resnet18(&MicroResNetConfig::tiny(4), &mut StdRng::seed_from_u64(7));
    let mut net = build();
    let ckpt = Checkpoint::capture(&mut net);
    FrozenModel::freeze(build, ckpt).expect("freeze")
}

/// One closed-loop repetition: `clients` threads, each submitting its
/// next request only after the previous resolved. Returns ok/sec.
fn closed_loop_rps(
    model: &Arc<FrozenModel>,
    clients: usize,
    per_client: usize,
    metrics: Option<Arc<ServeMetrics>>,
) -> f64 {
    let server = Arc::new(
        Server::start_observed(
            Arc::clone(model),
            ServerConfig {
                workers: 2,
                queue_bound: 64,
                policy: BatchPolicy {
                    max_batch_size: 8,
                    max_wait: Duration::from_micros(200),
                },
            },
            Arc::new(NullRecorder),
            metrics,
        )
        .expect("server start"),
    );
    let width = model.input_width();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let row: Vec<f32> = (0..width).map(|j| ((c + j) % 13) as f32 * 0.05).collect();
                let mut ok = 0usize;
                for _ in 0..per_client {
                    if let Ok(h) = server.submit(row.clone(), None) {
                        if h.wait().is_ok() {
                            ok += 1;
                        }
                    }
                }
                ok
            })
        })
        .collect();
    let ok: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let wall = t0.elapsed().as_secs_f64();
    Arc::into_inner(server)
        .expect("dangling server handle")
        .shutdown()
        .expect("clean shutdown");
    ok as f64 / wall.max(1e-9)
}

fn serve_overhead(quick: bool) -> ServeOverheadResult {
    let model = frozen();
    let clients = 4;
    let per_client = if quick { 50 } else { 250 };
    let reps = if quick { 2 } else { 4 };
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = Arc::new(ServeMetrics::new(Arc::clone(&registry)));
    // Interleave A/B repetitions so thermal / scheduler drift hits both
    // variants equally; best-of damps the remaining noise.
    let mut baseline = 0.0f64;
    let mut with_metrics = 0.0f64;
    for rep in 0..reps {
        eprintln!("[obs_bench] serve rep {}/{reps} ...", rep + 1);
        baseline = baseline.max(closed_loop_rps(&model, clients, per_client, None));
        with_metrics = with_metrics.max(closed_loop_rps(
            &model,
            clients,
            per_client,
            Some(Arc::clone(&metrics)),
        ));
    }
    let overhead_pct = 100.0 * (1.0 - with_metrics / baseline.max(1e-9));
    ServeOverheadResult {
        reps,
        requests_per_rep: clients * per_client,
        baseline_rps: baseline,
        metrics_rps: with_metrics,
        overhead_pct,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    eprintln!(
        "[obs_bench] micro primitives ({}) ...",
        if quick { "quick" } else { "full" }
    );
    let micro = micro_bench(quick);
    let rows: Vec<Vec<String>> = micro
        .iter()
        .map(|m| {
            vec![
                m.op.clone(),
                m.threads.to_string(),
                format!("{:.1}", m.ns_per_op),
            ]
        })
        .collect();
    print_table(
        "observability: per-record cost",
        &["op", "threads", "ns/op"],
        &rows,
    );

    let serve = serve_overhead(quick);
    print_table(
        "observability: closed-loop serving overhead",
        &["variant", "rps"],
        &[
            vec![
                "no metrics".to_string(),
                format!("{:.1}", serve.baseline_rps),
            ],
            vec![
                "live registry".to_string(),
                format!("{:.1}", serve.metrics_rps),
            ],
        ],
    );
    let verdict = if serve.overhead_pct < 2.0 {
        format!(
            "live metrics cost {:.2}% of closed-loop serving throughput (< 2% budget)",
            serve.overhead_pct.max(0.0)
        )
    } else {
        format!(
            "live metrics cost {:.2}% of closed-loop serving throughput — OVER the 2% budget",
            serve.overhead_pct
        )
    };
    println!("\n{verdict}");

    save_json(
        "obs_bench",
        &ObsBenchReport {
            quick,
            micro,
            serve,
            verdict,
        },
    );
    println!("saved bench_results/obs_bench.json");
}
