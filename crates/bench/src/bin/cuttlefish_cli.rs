//! A small CLI over the whole system: pick a model, a synthetic dataset,
//! and a training method; get the discovered hyperparameters, the
//! accuracy/size trade-off, and the simulated paper-hardware time.
//!
//! ```text
//! cargo run --release -p cuttlefish-bench --bin cuttlefish_cli -- \
//!     --model resnet18 --dataset cifar10 --epochs 12 --method cuttlefish
//! ```

use cuttlefish_bench::methods::{run_vision_with, tuned_cuttlefish_config, Method};
use cuttlefish_bench::scenarios::{build_model, dataset_spec, VisionModel};
use cuttlefish_telemetry::{JsonlRecorder, NullRecorder, Recorder};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cuttlefish_cli [--model resnet18|vgg19|resnet50|wideresnet50|deit|resmlp]\n\
         \x20                  [--dataset cifar10|cifar100|svhn|imagenet]\n\
         \x20                  [--method cuttlefish|full|pufferfish|sifd|imp|xnor|lc]\n\
         \x20                  [--epochs N] [--seed N] [--telemetry PATH.jsonl]\n\
         \x20                  [--verify-only]\n\
         \n\
         \x20 --telemetry appends one JSON Lines event per lifecycle moment\n\
         \x20 (epochs, rank samples, the switch, the run manifest) to PATH;\n\
         \x20 render it with the telemetry_summary binary.\n\
         \x20 --verify-only builds the model, runs the static shape/config\n\
         \x20 checker (no kernels execute), prints the report, and exits."
    );
    ExitCode::FAILURE
}

/// Builds the selected model and runs the static verifier, printing the
/// report or the offending layer. Never executes a kernel.
fn verify_only(model: VisionModel, dataset: &str, seed: u64) -> ExitCode {
    let mut net = build_model(model, dataset_spec(dataset).classes, seed);
    match net.verify() {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("verification failed at layer `{}`: {e}", e.layer());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut model = VisionModel::ResNet18;
    let mut dataset = "cifar10".to_string();
    let mut method_name = "cuttlefish".to_string();
    let mut epochs = 12usize;
    let mut seed = 0u64;
    let mut telemetry_path: Option<String> = None;
    let mut verify_only_mode = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        // Valueless flags first.
        if args[i] == "--verify-only" {
            verify_only_mode = true;
            i += 1;
            continue;
        }
        let (flag, value) = (args[i].as_str(), args.get(i + 1));
        let Some(value) = value else {
            return usage();
        };
        match flag {
            "--model" => {
                model = match value.as_str() {
                    "resnet18" => VisionModel::ResNet18,
                    "vgg19" => VisionModel::Vgg19,
                    "resnet50" => VisionModel::ResNet50,
                    "wideresnet50" => VisionModel::WideResNet50,
                    "deit" => VisionModel::Deit,
                    "resmlp" => VisionModel::Mixer,
                    _ => return usage(),
                }
            }
            "--dataset" => dataset = value.clone(),
            "--method" => method_name = value.clone(),
            "--epochs" => match value.parse() {
                Ok(v) => epochs = v,
                Err(_) => return usage(),
            },
            "--seed" => match value.parse() {
                Ok(v) => seed = v,
                Err(_) => return usage(),
            },
            "--telemetry" => telemetry_path = Some(value.clone()),
            _ => return usage(),
        }
        i += 2;
    }

    if verify_only_mode {
        return verify_only(model, &dataset, seed);
    }

    let method = match method_name.as_str() {
        // With telemetry on, the default cuttlefish method would run its
        // Frobenius-decay A/B probe twice and pollute the stream with two
        // switches; record a single tuned pass instead.
        "cuttlefish" if telemetry_path.is_some() => {
            Method::CuttlefishWith(tuned_cuttlefish_config(model))
        }
        "cuttlefish" => Method::Cuttlefish,
        "full" => Method::FullRank,
        "pufferfish" => Method::Pufferfish,
        "sifd" => Method::SiFd { rho: 0.25 },
        "imp" => Method::Imp { rounds: 3 },
        "xnor" => Method::Xnor,
        "lc" => Method::Lc,
        _ => return usage(),
    };

    let recorder: Box<dyn Recorder> = match &telemetry_path {
        Some(path) => match JsonlRecorder::create(path) {
            Ok(rec) => Box::new(rec),
            Err(e) => {
                eprintln!("error: cannot open telemetry sink {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(NullRecorder),
    };

    println!(
        "training {} on {dataset}-like with {method_name} for {epochs} epochs (seed {seed})...",
        model.name()
    );
    match run_vision_with(&method, model, &dataset, epochs, seed, recorder.as_ref()) {
        Ok(row) => {
            println!("\nmethod     : {}", row.method);
            println!(
                "params     : {} -> {} ({:.1}%)",
                row.params_full,
                row.params,
                100.0 * row.params as f64 / row.params_full.max(1) as f64
            );
            println!("val metric : {:.3}", row.metric);
            println!("sim hours  : {:.3} (paper-hardware workload)", row.hours);
            if let (Some(e), Some(k)) = (row.e_hat, row.k_hat) {
                println!("E, K       : {e}, {k}");
            }
            if !row.decisions.is_empty() {
                let factored = row.decisions.iter().filter(|d| d.chosen.is_some()).count();
                println!("factorized : {factored}/{} layers", row.decisions.len());
            }
            if let Some(path) = &telemetry_path {
                recorder.flush();
                println!("telemetry  : {path} (render with telemetry_summary)");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
