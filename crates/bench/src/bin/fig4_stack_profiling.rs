//! Figure 4: per-iteration forward time of ResNet-18 on CIFAR-10 (batch
//! 1024, V100) with each layer stack factorized at ρ̄ = 1/4 — the evidence
//! behind the profiling heuristic: the first stack does not speed up.

use cuttlefish::profile::Profiler;
use cuttlefish_bench::{print_table, save_json};
use cuttlefish_perf::arch::resnet18_cifar;
use cuttlefish_perf::DeviceProfile;

fn main() {
    let targets = resnet18_cifar(10);
    let profiler = Profiler::new(DeviceProfile::v100(), 1024);
    let outcome = profiler.determine_k(&targets);

    let rows: Vec<Vec<String>> = outcome
        .stacks
        .iter()
        .map(|s| {
            vec![
                format!("stack {}", s.stack),
                format!("{:.2}", s.full_time * 1e3),
                format!("{:.2}", s.factored_time * 1e3),
                format!("{:.2}x", s.speedup()),
                if s.speedup() >= profiler.v {
                    "factorize"
                } else {
                    "keep full-rank"
                }
                .to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 4 — per-stack forward time, ResNet-18 @ CIFAR (batch 1024, V100, rho=1/4)",
        &[
            "stack",
            "full (ms)",
            "factored (ms)",
            "speedup",
            "decision (v=1.5)",
        ],
        &rows,
    );
    println!(
        "\n=> K_hat = {} (cut at stack {})",
        outcome.k_hat, outcome.cut_stack
    );
    println!("Paper: factorizing the first conv stack yields no substantial speedup; K_hat = 5.");
    save_json("fig4_stack_profiling", &outcome);
}
