//! Table 12: the fixed rank ratio ρ that SI&FD needs so its model size
//! matches the one Cuttlefish discovers, per model/dataset — regenerated
//! by actually size-matching against the Cuttlefish run (and printing the
//! paper's tuned values for reference).

use cuttlefish_baselines::si_fd;
use cuttlefish_bench::methods::{mean_chosen_ratio, run_vision, Method};
use cuttlefish_bench::scenarios::VisionModel;
use cuttlefish_bench::{default_epochs, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (model, key) in [
        (VisionModel::ResNet18, "resnet18"),
        (VisionModel::Vgg19, "vgg19"),
    ] {
        for dataset in ["cifar10", "cifar100", "svhn"] {
            let cf = run_vision(&Method::Cuttlefish, model, dataset, epochs, 0).expect("cf");
            let matched_rho = mean_chosen_ratio(&cf.decisions);
            rows.push(vec![
                format!("{} / {dataset}", model.name()),
                format!("{matched_rho:.3}"),
                format!("{:.3}", si_fd::tuned_rho(key, dataset)),
                format!("{:.3}M", cf.params as f64 / 1e6),
            ]);
            json.push(serde_json::json!({
                "model": model.name(), "dataset": dataset,
                "size_matched_rho": matched_rho,
                "paper_rho": si_fd::tuned_rho(key, dataset),
                "cf_params": cf.params,
            }));
        }
    }
    print_table(
        &format!("Table 12 — SI&FD rank ratios matched to Cuttlefish sizes (T = {epochs})"),
        &["scenario", "size-matched rho", "paper rho", "CF params"],
        &rows,
    );
    println!("\nPaper shape: harder tasks need higher rho (cifar100 > cifar10 > svhn) — check the middle column ordering.");
    save_json("table12_sifd_rho", &json);
}
