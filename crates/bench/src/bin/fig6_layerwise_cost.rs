//! Figure 6: layer-wise forward costs of (top) ResNet-50 and (bottom)
//! DeiT-small on ImageNet at batch 128 (V100), full-rank vs. factorized at
//! several rank ratios. Reproduces the paper's three observations:
//! convolutions gain ~2× at ρ = 1/4, the final FC layer *slows down* at
//! every ratio, and DeiT MLP layers gain more than attention layers.

use cuttlefish_bench::{print_table, save_json};
use cuttlefish_nn::TargetKind;
use cuttlefish_perf::arch::{deit_small, resnet50_imagenet};
use cuttlefish_perf::{target_time, target_time_factored, DeviceProfile};
use serde::Serialize;

#[derive(Serialize)]
struct LayerRow {
    name: String,
    full_ms: f64,
    factored_ms_by_ratio: Vec<(String, f64)>,
}

fn main() {
    let dev = DeviceProfile::v100();
    let batch = 128;
    let ratios = [("RR 1/8", 0.125f32), ("RR 1/4", 0.25), ("RR 1/2", 0.5)];

    let mut all_rows = Vec::new();
    for (title, targets, filter_from) in [
        (
            "ResNet-50 layers (from conv 21)",
            resnet50_imagenet(),
            21usize,
        ),
        ("DeiT-small encoder 0 + head", deit_small(), 0usize),
    ] {
        let mut rows = Vec::new();
        let mut speedup_conv = Vec::new();
        let mut speedup_attn = Vec::new();
        let mut speedup_mlp = Vec::new();
        let mut fc_slowdowns = 0usize;
        let mut fc_total = 0usize;
        // The arch specs register attention q/k/v per head (correct for
        // parameter accounting); for *timing*, real implementations batch
        // all heads of a projection into one GEMM — aggregate them.
        let mut targets = targets;
        let mut aggregated = Vec::new();
        targets.retain(|t| {
            if let Some(pos) = t.name.find(".h") {
                if t.name[pos + 2..].chars().all(|c| c.is_ascii_digit()) {
                    if t.name.ends_with(".h0") {
                        let mut agg = t.clone();
                        agg.name = t.name[..pos].to_string();
                        if let TargetKind::Linear {
                            in_dim,
                            out_dim,
                            positions,
                            transformer,
                        } = agg.kind
                        {
                            agg.kind = TargetKind::Linear {
                                in_dim,
                                out_dim: in_dim, // heads × (dim/heads) = dim
                                positions,
                                transformer,
                            };
                            let _ = out_dim;
                        }
                        aggregated.push(agg);
                    }
                    return false;
                }
            }
            true
        });
        targets.extend(aggregated);
        targets.sort_by_key(|t| t.index);
        for t in targets.iter().filter(|t| t.index >= filter_from) {
            // For DeiT print only the first encoder block + head (the
            // paper notes all 12 blocks behave identically).
            if title.starts_with("DeiT") && !(t.name.starts_with("enc0") || t.name == "head") {
                continue;
            }
            let full = target_time(&dev, &t.kind, batch);
            let mut row = vec![t.name.clone(), format!("{:.3}", full * 1e3)];
            let mut by_ratio = Vec::new();
            for (label, rho) in ratios {
                let r = ((t.full_rank() as f32 * rho).round() as usize).max(1);
                let fact = target_time_factored(&dev, &t.kind, batch, r);
                row.push(format!("{:.3}", fact * 1e3));
                by_ratio.push((label.to_string(), fact * 1e3));
                if (rho - 0.25).abs() < 1e-6 {
                    let speed = full / fact;
                    match t.kind {
                        TargetKind::Conv { .. } => speedup_conv.push(speed),
                        TargetKind::Linear {
                            transformer: true, ..
                        } => {
                            if t.name.contains("attn") {
                                speedup_attn.push(speed);
                            } else {
                                speedup_mlp.push(speed);
                            }
                        }
                        TargetKind::Linear { .. } => {
                            fc_total += 1;
                            if fact > full {
                                fc_slowdowns += 1;
                            }
                        }
                    }
                }
            }
            all_rows.push(LayerRow {
                name: format!("{title}: {}", t.name),
                full_ms: full * 1e3,
                factored_ms_by_ratio: by_ratio,
            });
            rows.push(row);
        }
        print_table(
            &format!("Figure 6 — {title} (batch 128, V100, times in ms)"),
            &["layer", "full", "RR 1/8", "RR 1/4", "RR 1/2"],
            &rows,
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        if !speedup_conv.is_empty() {
            println!(
                "mean conv speedup @ RR 1/4: {:.2}x (paper: ~2.1x); FC layers slower when factorized: {fc_slowdowns}/{fc_total}",
                mean(&speedup_conv)
            );
        }
        if !speedup_attn.is_empty() {
            println!(
                "mean MHA speedup @ RR 1/4: {:.2}x (paper: 1.26x); mean MLP speedup: {:.2}x (paper: 1.73x)",
                mean(&speedup_attn),
                mean(&speedup_mlp)
            );
        }
    }
    save_json("fig6_layerwise_cost", &all_rows);
}
