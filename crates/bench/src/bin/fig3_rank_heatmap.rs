//! Figure 3: rank ratios ρ (stable rank / full rank) per layer per epoch —
//! the heatmap showing that middle layers converge to larger ρ than a
//! single global ratio could capture.

use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::{default_epochs, save_json, scenarios};
use serde::Serialize;

#[derive(Serialize)]
struct Heatmap {
    layers: Vec<String>,
    full_ranks: Vec<usize>,
    /// `ratios[epoch][layer]` in [0, 1].
    ratios: Vec<Vec<f32>>,
}

fn main() {
    let epochs = default_epochs().max(10);
    let model = scenarios::VisionModel::ResNet18;
    let mut net = scenarios::build_model(model, 10, 0);
    let full_ranks: Vec<usize> = net.targets().iter().map(|t| t.full_rank()).collect();
    let names: Vec<String> = net.targets().iter().map(|t| t.name.clone()).collect();
    let mut adapter = scenarios::vision_adapter("cifar10", 42);
    let mut tcfg = scenarios::trainer_config(model, "cifar10", epochs, 0);
    tcfg.track_ranks = true;
    let res = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::FullRankOnly,
        None,
    )
    .expect("training succeeds");

    // Map tracked layer → its full rank.
    let rank_of = |name: &str| {
        names
            .iter()
            .position(|n| n == name)
            .map(|i| full_ranks[i])
            .unwrap_or(1)
    };
    let ratios: Vec<Vec<f32>> = res
        .rank_history
        .iter()
        .map(|row| {
            row.iter()
                .zip(&res.tracked)
                .map(|(&r, name)| (r / rank_of(name) as f32).min(1.0))
                .collect()
        })
        .collect();

    // ASCII heatmap: darker = higher ratio.
    println!("\n== Figure 3 — rank-ratio heatmap (rows = epochs, cols = tracked layers) ==");
    println!("legend: ' '<0.2  .<0.35  -<0.5  +<0.65  *<0.8  #>=0.8\n");
    for (e, row) in ratios.iter().enumerate() {
        let line: String = row
            .iter()
            .map(|&v| match v {
                x if x < 0.2 => ' ',
                x if x < 0.35 => '.',
                x if x < 0.5 => '-',
                x if x < 0.65 => '+',
                x if x < 0.8 => '*',
                _ => '#',
            })
            .collect();
        println!("epoch {e:>3} |{line}|");
    }
    // Middle layers vs edges at the final epoch.
    if let Some(last) = ratios.last() {
        let n = last.len();
        let mid: f32 = last[n / 3..2 * n / 3].iter().sum::<f32>() / (n / 3).max(1) as f32;
        let edges: f32 = (last[..n / 3].iter().sum::<f32>()
            + last[2 * n / 3..].iter().sum::<f32>())
            / (2 * (n / 3)).max(1) as f32;
        println!("\nfinal-epoch mean ratio, middle third: {mid:.2}  vs edges: {edges:.2}");
        println!(
            "Paper shape: middle layers converge to larger rho (more redundancy varies per depth)."
        );
    }
    save_json(
        "fig3_rank_heatmap",
        &Heatmap {
            layers: res.tracked,
            full_ranks,
            ratios,
        },
    );
}
