//! Figure 2 (and the appendix Figures 10–17): per-layer stable-rank
//! trajectories of a micro ResNet-18 trained on the CIFAR-10-like task.
//! The reproduction target is the *shape*: ranks move quickly early and
//! flatten to constants.

use cuttlefish::{run_training, SwitchPolicy};
use cuttlefish_bench::{default_epochs, print_table, save_json, scenarios};
use serde::Serialize;

#[derive(Serialize)]
struct Trajectories {
    tracked: Vec<String>,
    history: Vec<Vec<f32>>,
    early_drift: f32,
    late_drift: f32,
}

fn main() {
    let epochs = default_epochs().max(10);
    let model = scenarios::VisionModel::ResNet18;
    let mut net = scenarios::build_model(model, 10, 0);
    let mut adapter = scenarios::vision_adapter("cifar10", 42);
    let mut tcfg = scenarios::trainer_config(model, "cifar10", epochs, 0);
    tcfg.track_ranks = true;
    let res = run_training(
        &mut net,
        &mut adapter,
        &tcfg,
        &SwitchPolicy::FullRankOnly,
        Some(&scenarios::clock_targets(model)),
    )
    .expect("training succeeds");

    // Print a subset of layers over epochs.
    let show: Vec<usize> = (0..res.tracked.len())
        .step_by(4.max(res.tracked.len() / 5))
        .collect();
    let mut headers: Vec<String> = vec!["epoch".into()];
    headers.extend(show.iter().map(|&l| res.tracked[l].clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = res
        .rank_history
        .iter()
        .enumerate()
        .map(|(e, row)| {
            let mut cells = vec![e.to_string()];
            cells.extend(show.iter().map(|&l| format!("{:.2}", row[l])));
            cells
        })
        .collect();
    print_table(
        "Figure 2 — stable-rank trajectories (micro ResNet-18, cifar10-like)",
        &header_refs,
        &rows,
    );

    // Stabilization check: mean |Δrank| early vs late.
    let drift = |range: std::ops::Range<usize>| -> f32 {
        let mut acc = 0.0f32;
        let mut n = 0usize;
        for e in range {
            if e == 0 || e >= res.rank_history.len() {
                continue;
            }
            for l in 0..res.tracked.len() {
                acc += (res.rank_history[e][l] - res.rank_history[e - 1][l]).abs();
                n += 1;
            }
        }
        acc / n.max(1) as f32
    };
    let half = res.rank_history.len() / 2;
    let early = drift(1..half.max(2));
    let late = drift(half..res.rank_history.len());
    println!("\nmean |d rank/dt| early epochs: {early:.3}   late epochs: {late:.3}");
    println!("Paper shape: ranks change rapidly early, then stabilize (late << early).");
    save_json(
        "fig2_rank_trajectories",
        &Trajectories {
            tracked: res.tracked,
            history: res.rank_history,
            early_drift: early,
            late_drift: late,
        },
    );
}
