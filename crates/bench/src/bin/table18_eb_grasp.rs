//! Table 18: Cuttlefish vs. EB-Train (30%/50%) and GraSP (30%/60%) on the
//! ImageNet-like ResNet-50 task. Shape target: Cuttlefish reaches higher
//! accuracy at a comparable or smaller size.

use cuttlefish_bench::methods::{run_vision, Method};
use cuttlefish_bench::scenarios::VisionModel;
use cuttlefish_bench::{default_epochs, fmt_params, print_table, save_json};

fn main() {
    let epochs = default_epochs();
    let model = VisionModel::ResNet50;
    let methods = [
        Method::FullRank,
        Method::Pufferfish,
        Method::EbTrain {
            prune_fraction: 0.3,
        },
        Method::EbTrain {
            prune_fraction: 0.5,
        },
        Method::Grasp { keep: 0.7 },
        Method::Grasp { keep: 0.4 },
        Method::Cuttlefish,
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for m in &methods {
        let r = run_vision(m, model, "imagenet", epochs, 0).expect("run");
        rows.push(vec![
            r.method.clone(),
            fmt_params(r.params, r.params_full),
            format!("{:.3}", r.metric),
        ]);
        json.push(r);
    }
    print_table(
        &format!("Table 18 — ResNet-50 on imagenet-like (T = {epochs})"),
        &["method", "params", "top-1 acc"],
        &rows,
    );
    save_json("table18_eb_grasp", &json);
}
