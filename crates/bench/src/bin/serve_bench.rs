//! Serving load benchmark: dense vs. factorized checkpoints of the same
//! trained micro-ResNet18 under identical batching policy.
//!
//! The workload is a widened micro-ResNet18 (base width 32, so stacks run
//! 32→256 channels): its im2col GEMMs dominate the forward pass — the
//! patch-gather costs `positions·in_ch·k²` copies while the GEMM costs
//! `out_ch` times that many MACs — which is exactly the regime where
//! replacing `W` with `U·Vᵀ` trades an `m·n` multiply for `r·(m+n)`; at
//! ρ=0.25 that is roughly 3.6× fewer FLOPs on the hot matrices.
//!
//! Two load shapes per variant:
//!
//! * **closed-loop** — a fixed pool of clients, each submitting its next
//!   request only after the previous response; measures sustainable
//!   throughput and client-observed latency.
//! * **open-loop** — requests arrive on a fixed clock regardless of
//!   completions, with a per-request deadline; measures server-side
//!   latency, deadline misses, and admission-control shedding.
//!
//! Results print as tables and persist to `bench_results/serve_latency.json`.
//! The headline number is the closed-loop throughput ratio factorized vs.
//! dense: the paper's low-rank compute savings, cashed in at inference.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cuttlefish::factorize::{switch_to_low_rank, RankPlan, SwitchOptions};
use cuttlefish_bench::{print_table, save_json};
use cuttlefish_nn::checkpoint::Checkpoint;
use cuttlefish_nn::models::{build_micro_resnet18, MicroResNetConfig};
use cuttlefish_nn::Network;
use cuttlefish_serve::{BatchPolicy, FrozenModel, ServeError, ServeMetrics, Server, ServerConfig};
use cuttlefish_telemetry::export::{append_snapshot_jsonl, write_prometheus_file};
use cuttlefish_telemetry::{
    Event, Histogram, MemoryRecorder, MetricsRegistry, Recorder, RunReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

const SEED: u64 = 42;

/// ResNet-18 sized so the factorizable conv GEMMs dominate inference.
fn serve_resnet_config() -> MicroResNetConfig {
    MicroResNetConfig {
        base_width: 32,
        ..MicroResNetConfig::cifar(10)
    }
}

fn build_net() -> Network {
    build_micro_resnet18(&serve_resnet_config(), &mut StdRng::seed_from_u64(SEED))
}

fn server_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_bound: 32,
        policy: BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(1),
        },
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn request_row(width: usize, seed: usize) -> Vec<f32> {
    (0..width)
        .map(|j| (((seed * 193 + j * 17) % 29) as f32 - 14.0) * 0.05)
        .collect()
}

#[derive(Serialize, Clone)]
struct LoadResult {
    requests: usize,
    ok: usize,
    overloaded: usize,
    deadline_missed: usize,
    wall_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct VariantResult {
    variant: String,
    params: usize,
    closed_loop: LoadResult,
    open_loop: LoadResult,
}

#[derive(Serialize)]
struct ServeLatencyReport {
    model: String,
    workers: usize,
    queue_bound: usize,
    max_batch_size: usize,
    max_wait_ms: f64,
    closed_loop_clients: usize,
    open_loop_interval_us: u64,
    variants: Vec<VariantResult>,
    dense_throughput_rps: f64,
    best_factorized_throughput_rps: f64,
    factorized_speedup: f64,
    verdict: String,
}

fn summarize(
    requests: usize,
    ok: usize,
    overloaded: usize,
    deadline_missed: usize,
    wall_s: f64,
    latencies_ms: Vec<f64>,
) -> LoadResult {
    // Constant-memory log-linear histogram in µs ticks — the same
    // machinery the live registry uses, so the bench's percentiles and a
    // live snapshot's agree to within one bucket width (≤1/128 relative).
    let hist = Histogram::new();
    for ms in &latencies_ms {
        hist.record_f64(ms * 1e3);
    }
    let snap = hist.snapshot();
    LoadResult {
        requests,
        ok,
        overloaded,
        deadline_missed,
        wall_s,
        throughput_rps: ok as f64 / wall_s.max(1e-9),
        p50_ms: snap.percentile(0.50) / 1e3,
        p95_ms: snap.percentile(0.95) / 1e3,
        p99_ms: snap.percentile(0.99) / 1e3,
    }
}

/// Closed loop: `clients` threads, each submitting its next request only
/// after the previous one resolved. Latency is client-observed.
fn closed_loop(
    model: &Arc<FrozenModel>,
    clients: usize,
    per_client: usize,
    metrics: Option<Arc<ServeMetrics>>,
) -> LoadResult {
    let server = Arc::new(
        Server::start_observed(
            Arc::clone(model),
            server_config(),
            Arc::new(cuttlefish_telemetry::NullRecorder),
            metrics,
        )
        .expect("server start"),
    );
    let width = model.input_width();
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut overloaded = 0usize;
                let mut latencies = Vec::with_capacity(per_client);
                for i in 0..per_client {
                    let row = request_row(width, c * per_client + i);
                    let t = Instant::now();
                    match server.submit(row, None) {
                        Ok(h) => match h.wait() {
                            Ok(_) => {
                                ok += 1;
                                latencies.push(t.elapsed().as_secs_f64() * 1e3);
                            }
                            Err(e) => panic!("closed-loop request failed: {e}"),
                        },
                        Err(ServeError::Overloaded { .. }) => overloaded += 1,
                        Err(e) => panic!("closed-loop admission failed: {e}"),
                    }
                }
                (ok, overloaded, latencies)
            })
        })
        .collect();
    let mut ok = 0;
    let mut overloaded = 0;
    let mut latencies = Vec::new();
    for w in workers {
        let (o, ov, l) = w.join().expect("client thread");
        ok += o;
        overloaded += ov;
        latencies.extend(l);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    Arc::into_inner(server)
        .expect("dangling server handle")
        .shutdown()
        .expect("clean shutdown");
    summarize(clients * per_client, ok, overloaded, 0, wall_s, latencies)
}

/// Open loop: requests arrive on a fixed clock with a deadline; server-side
/// latency (queue + inference) comes from the telemetry events.
fn open_loop(
    model: &Arc<FrozenModel>,
    requests: usize,
    interval: Duration,
    deadline: Duration,
    metrics: Option<Arc<ServeMetrics>>,
) -> (LoadResult, Arc<MemoryRecorder>) {
    let recorder = Arc::new(MemoryRecorder::new());
    let server = Server::start_observed(
        Arc::clone(model),
        server_config(),
        Arc::clone(&recorder) as Arc<dyn Recorder + Send + Sync>,
        metrics,
    )
    .expect("server start");
    let width = model.input_width();
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(requests);
    let mut overloaded = 0usize;
    for i in 0..requests {
        let next_tick = t0 + interval * i as u32;
        if let Some(wait) = next_tick.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match server.submit(request_row(width, i), Some(deadline)) {
            Ok(h) => handles.push(h),
            Err(ServeError::Overloaded { .. }) => overloaded += 1,
            Err(e) => panic!("open-loop admission failed: {e}"),
        }
    }
    let mut ok = 0usize;
    let mut deadline_missed = 0usize;
    for h in handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(ServeError::DeadlineExceeded { .. }) => deadline_missed += 1,
            Err(e) => panic!("open-loop request failed: {e}"),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    server.shutdown().expect("clean shutdown");
    let latencies: Vec<f64> = recorder
        .filtered(|e| matches!(e, Event::ServeRequest { outcome, .. } if outcome == "ok"))
        .iter()
        .filter_map(|e| match e {
            Event::ServeRequest {
                queue_ms, infer_ms, ..
            } => Some(queue_ms + infer_ms),
            _ => None,
        })
        .collect();
    (
        summarize(requests, ok, overloaded, deadline_missed, wall_s, latencies),
        recorder,
    )
}

fn main() {
    // `--metrics`: record into a live registry while serving and dump
    // the final snapshot next to the bench JSON (JSONL event form plus
    // Prometheus text exposition).
    let with_metrics = std::env::args().any(|a| a == "--metrics");
    let clients = env_usize("CUTTLEFISH_SERVE_CLIENTS", 4);
    let per_client = env_usize("CUTTLEFISH_SERVE_PER_CLIENT", 24);
    let open_requests = env_usize("CUTTLEFISH_SERVE_OPEN_REQUESTS", 64);
    let interval = Duration::from_micros(env_usize("CUTTLEFISH_SERVE_INTERVAL_US", 3000) as u64);
    let open_deadline = Duration::from_millis(250);
    let cfg = server_config();

    // One set of trained dense weights; every variant derives from it so
    // the comparison isolates the factorization, not the initialization.
    let dense_ckpt = Checkpoint::capture(&mut build_net());
    let variants: Vec<(String, Checkpoint)> =
        std::iter::once(("dense".to_string(), dense_ckpt.clone()))
            .chain([0.5f32, 0.25f32].into_iter().map(|rho| {
                let mut net = build_net();
                dense_ckpt.restore(&mut net).expect("dense restore");
                switch_to_low_rank(
                    &mut net,
                    &SwitchOptions {
                        k: 0,
                        plan: RankPlan::FixedRatio { rho },
                        extra_bn: false,
                        frobenius_decay: None,
                    },
                )
                .expect("switch to low rank");
                (format!("rho_{rho:.2}"), Checkpoint::capture(&mut net))
            }))
            .collect();

    let registry = Arc::new(MetricsRegistry::new());
    let metrics = with_metrics.then(|| Arc::new(ServeMetrics::new(Arc::clone(&registry))));

    let mut results = Vec::new();
    let mut last_recorder = None;
    for (name, ckpt) in variants {
        let params: usize = ckpt.params.iter().map(|m| m.len()).sum();
        let model = FrozenModel::freeze(build_net, ckpt).expect("freeze");
        eprintln!("[serve_bench] {name}: closed-loop ({clients} clients x {per_client}) ...");
        let closed = closed_loop(&model, clients, per_client, metrics.clone());
        eprintln!(
            "[serve_bench] {name}: open-loop ({open_requests} req @ {:?}) ...",
            interval
        );
        let (open, recorder) = open_loop(
            &model,
            open_requests,
            interval,
            open_deadline,
            metrics.clone(),
        );
        last_recorder = Some(recorder);
        results.push(VariantResult {
            variant: name,
            params,
            closed_loop: closed,
            open_loop: open,
        });
    }

    let fmt_load = |r: &LoadResult| -> Vec<String> {
        vec![
            format!("{}", r.requests),
            format!("{}", r.ok),
            format!("{}", r.overloaded),
            format!("{}", r.deadline_missed),
            format!("{:.1}", r.throughput_rps),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
        ]
    };
    let headers = [
        "variant", "params", "reqs", "ok", "shed", "late", "rps", "p50ms", "p95ms", "p99ms",
    ];
    let closed_rows: Vec<Vec<String>> = results
        .iter()
        .map(|v| {
            let mut row = vec![v.variant.clone(), v.params.to_string()];
            row.extend(fmt_load(&v.closed_loop));
            row
        })
        .collect();
    print_table(
        "serve: closed-loop (client-observed latency)",
        &headers,
        &closed_rows,
    );
    let open_rows: Vec<Vec<String>> = results
        .iter()
        .map(|v| {
            let mut row = vec![v.variant.clone(), v.params.to_string()];
            row.extend(fmt_load(&v.open_loop));
            row
        })
        .collect();
    print_table(
        "serve: open-loop (server-side latency)",
        &headers,
        &open_rows,
    );

    let dense_rps = results
        .first()
        .map(|v| v.closed_loop.throughput_rps)
        .unwrap_or(0.0);
    let best_fact = results
        .iter()
        .skip(1)
        .map(|v| v.closed_loop.throughput_rps)
        .fold(0.0f64, f64::max);
    let speedup = best_fact / dense_rps.max(1e-9);
    let verdict = if best_fact > dense_rps {
        format!("factorized serving sustains {speedup:.2}x dense throughput under the same batch policy")
    } else {
        format!("factorized serving did NOT beat dense ({speedup:.2}x) — model too small for the rank savings to dominate")
    };
    println!("\n{verdict}");

    // Render the telemetry serving section for the last variant, proving
    // the events flow end-to-end into the summary report.
    if let Some(recorder) = last_recorder {
        let jsonl: String = recorder
            .events()
            .iter()
            .map(|e| e.to_jsonl() + "\n")
            .collect();
        let rendered = RunReport::from_jsonl(&jsonl).render();
        if let Some(section) = rendered.split("== serving ==").nth(1) {
            println!("\n== serving (telemetry, last variant) =={section}");
        }
    }

    if with_metrics {
        cuttlefish_bench::publish_kernel_counters(&registry);
        let snap = registry.snapshot();
        let dir = cuttlefish_bench::results_dir();
        let jsonl = dir.join("serve_metrics.jsonl");
        let prom = dir.join("serve_metrics.prom");
        if let Err(e) = append_snapshot_jsonl(&snap, "final", &jsonl) {
            eprintln!("warning: could not write {}: {e}", jsonl.display());
        }
        if let Err(e) = write_prometheus_file(&snap, &prom) {
            eprintln!("warning: could not write {}: {e}", prom.display());
        }
        eprintln!(
            "[serve_bench] metrics snapshot: {} + {}",
            jsonl.display(),
            prom.display()
        );
    }

    save_json(
        "serve_latency",
        &ServeLatencyReport {
            model: "micro-resnet18/cifar-w32".to_string(),
            workers: cfg.workers,
            queue_bound: cfg.queue_bound,
            max_batch_size: cfg.policy.max_batch_size,
            max_wait_ms: cfg.policy.max_wait.as_secs_f64() * 1e3,
            closed_loop_clients: clients,
            open_loop_interval_us: interval.as_micros() as u64,
            variants: results,
            dense_throughput_rps: dense_rps,
            best_factorized_throughput_rps: best_fact,
            factorized_speedup: speedup,
            verdict,
        },
    );
}
