//! Benchmark harness for the Cuttlefish reproduction.
//!
//! One binary per paper table/figure (see `src/bin/`), all built on the
//! shared [`scenarios`] (model/task/trainer constructors per paper
//! experiment) and [`methods`] (uniform runner for Cuttlefish and every
//! baseline). Results print as aligned text tables and are also saved as
//! JSON under `bench_results/` so EXPERIMENTS.md entries are regenerable.
//!
//! Scale: training runs use micro models and synthetic tasks (single CPU
//! core); "Time (hrs.)" columns are simulated on the paper's device/batch
//! workload via the `cuttlefish-perf` roofline clock. Set the
//! `CUTTLEFISH_EPOCHS` environment variable to change the default epoch
//! budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod methods;
pub mod scenarios;

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Default epoch budget for table runs (override with `CUTTLEFISH_EPOCHS`).
pub fn default_epochs() -> usize {
    std::env::var("CUTTLEFISH_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Directory where JSON results land.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("bench_results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Saves a serializable result snapshot under `bench_results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Mirrors the process-global kernel counters into `registry`.
///
/// The tensor crate's counters and the telemetry registry are
/// intentionally decoupled (neither crate depends on the other); this is
/// the bridge. Each call raises the registry counters to the current
/// kernel tallies, so repeated publishes stay monotonic and the final
/// snapshot a bench dumps carries real kernel attribution. With the
/// `telemetry` feature off the kernel counters are all zero and this is
/// a no-op on fresh registries.
pub fn publish_kernel_counters(registry: &cuttlefish_telemetry::MetricsRegistry) {
    let snap = cuttlefish_tensor::counters::snapshot();
    let pairs = [
        ("kernel_matmul_calls_total", snap.matmul_calls),
        ("kernel_matmul_flops_total", snap.matmul_flops),
        ("kernel_im2col_calls_total", snap.im2col_calls),
        ("kernel_im2col_elems_total", snap.im2col_elems),
        ("kernel_svd_sweeps_total", snap.svd_sweeps),
        ("kernel_power_iters_total", snap.power_iters),
    ];
    for (name, value) in pairs {
        let counter = registry.counter(name);
        counter.add(value.saturating_sub(counter.get()));
    }
}

/// Formats a parameter count as `M` with the share of full size.
pub fn fmt_params(params: usize, full: usize) -> String {
    format!(
        "{:.3}M ({:.1}%)",
        params as f64 / 1e6,
        100.0 * params as f64 / full.max(1) as f64
    )
}

/// Formats simulated hours with the speedup vs. a reference.
pub fn fmt_hours(hours: f64, reference: f64) -> String {
    if reference > 0.0 {
        format!("{hours:.2} ({:.2}x)", reference / hours.max(1e-9))
    } else {
        format!("{hours:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_params_shows_percentage() {
        let s = fmt_params(500_000, 1_000_000);
        assert!(s.contains("0.500M"));
        assert!(s.contains("50.0%"));
    }

    #[test]
    fn fmt_hours_shows_speedup() {
        let s = fmt_hours(0.5, 1.0);
        assert!(s.contains("2.00x"));
    }

    #[test]
    fn default_epochs_reads_env() {
        if std::env::var("CUTTLEFISH_EPOCHS").is_err() {
            assert_eq!(default_epochs(), 12);
        }
    }

    #[test]
    fn publish_kernel_counters_is_monotone_and_idempotent() {
        let registry = cuttlefish_telemetry::MetricsRegistry::new();
        publish_kernel_counters(&registry);
        let first = registry.snapshot();
        // Publishing again without new kernel work must not move (or
        // double-count) anything.
        publish_kernel_counters(&registry);
        let second = registry.snapshot();
        for (name, value) in &first.counters {
            assert_eq!(second.counter(name), Some(*value), "{name} drifted");
        }
        assert_eq!(
            first.counter("kernel_matmul_calls_total"),
            Some(cuttlefish_tensor::counters::snapshot().matmul_calls)
        );
    }
}
