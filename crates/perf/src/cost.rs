use crate::DeviceProfile;
use cuttlefish_nn::TargetKind;
use serde::{Deserialize, Serialize};

/// FLOPs, memory traffic, and output width of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Floating-point operations (multiply *and* add counted separately).
    pub flops: f64,
    /// Bytes moved (weights + input + output, FP32). Convolution input
    /// traffic is charged with the `k²` im2col duplication — both cuDNN
    /// implicit GEMM and this reproduction's substrate re-touch each input
    /// element once per kernel position.
    pub bytes: f64,
    /// Parallel output channels/features (drives GPU occupancy).
    pub out_width: usize,
}

impl LayerCost {
    /// Sums two kernel costs (keeping the wider output width).
    pub fn plus(self, other: LayerCost) -> LayerCost {
        LayerCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            out_width: self.out_width.max(other.out_width),
        }
    }

    /// Roofline time of this kernel on `dev`.
    pub fn time_on(&self, dev: &DeviceProfile) -> f64 {
        dev.kernel_time(self.flops, self.bytes, self.out_width)
    }
}

/// FLOP/byte ratio — the paper's arithmetic intensity (§3.5).
pub fn arithmetic_intensity(cost: &LayerCost) -> f64 {
    if cost.bytes == 0.0 {
        0.0
    } else {
        cost.flops / cost.bytes
    }
}

fn conv_out_hw(in_hw: (usize, usize), stride: usize) -> (usize, usize) {
    (in_hw.0.div_ceil(stride), in_hw.1.div_ceil(stride))
}

/// Cost of the full-rank forward kernel of a target at the given batch.
///
/// Conv: `2·B·m·n·k²·H'·W'` FLOPs — the paper's arithmetic-intensity
/// denominator `m·n·k² + B·m·H·W` appears here as weight plus (duplicated)
/// input traffic. Linear: `2·(B·positions)·in·out`.
pub fn target_cost(kind: &TargetKind, batch: usize) -> LayerCost {
    match *kind {
        TargetKind::Conv {
            in_channels: m,
            out_channels: n,
            kernel: k,
            stride,
            in_hw,
        } => {
            let (oh, ow) = conv_out_hw(in_hw, stride);
            let b = batch as f64;
            let (mf, nf, k2) = (m as f64, n as f64, (k * k) as f64);
            let spatial_out = (oh * ow) as f64;
            let spatial_in = (in_hw.0 * in_hw.1) as f64;
            LayerCost {
                flops: 2.0 * b * mf * nf * k2 * spatial_out,
                bytes: 4.0 * (mf * nf * k2 + b * mf * spatial_in * k2 + b * nf * spatial_out),
                out_width: n,
            }
        }
        TargetKind::Linear {
            in_dim,
            out_dim,
            positions,
            ..
        } => {
            let rows = (batch * positions) as f64;
            let (i, o) = (in_dim as f64, out_dim as f64);
            LayerCost {
                flops: 2.0 * rows * i * o,
                bytes: 4.0 * (i * o + rows * i + rows * o),
                out_width: out_dim,
            }
        }
    }
}

/// Costs of the two kernels of the factorized target at rank `r`:
/// the thin `U` kernel and the `Vᵀ` (1×1-conv / linear) kernel.
pub fn target_cost_factored(
    kind: &TargetKind,
    batch: usize,
    rank: usize,
) -> (LayerCost, LayerCost) {
    match *kind {
        TargetKind::Conv {
            in_channels: m,
            out_channels: n,
            kernel: k,
            stride,
            in_hw,
        } => {
            let u_kind = TargetKind::Conv {
                in_channels: m,
                out_channels: rank,
                kernel: k,
                stride,
                in_hw,
            };
            let (oh, ow) = conv_out_hw(in_hw, stride);
            let vt_kind = TargetKind::Conv {
                in_channels: rank,
                out_channels: n,
                kernel: 1,
                stride: 1,
                in_hw: (oh, ow),
            };
            (target_cost(&u_kind, batch), target_cost(&vt_kind, batch))
        }
        TargetKind::Linear {
            in_dim,
            out_dim,
            positions,
            transformer,
        } => {
            let u = TargetKind::Linear {
                in_dim,
                out_dim: rank,
                positions,
                transformer,
            };
            let vt = TargetKind::Linear {
                in_dim: rank,
                out_dim,
                positions,
                transformer,
            };
            (target_cost(&u, batch), target_cost(&vt, batch))
        }
    }
}

/// Occupancy-aware roofline forward time of a full-rank target.
pub fn target_time(dev: &DeviceProfile, kind: &TargetKind, batch: usize) -> f64 {
    target_cost(kind, batch).time_on(dev)
}

/// Forward time of a factorized target (two kernel launches — this is
/// where tiny layers lose, Figure 6, and where thin `U` convs lose their
/// FLOP savings to low occupancy, Figure 4).
pub fn target_time_factored(
    dev: &DeviceProfile,
    kind: &TargetKind,
    batch: usize,
    rank: usize,
) -> f64 {
    let (u, vt) = target_cost_factored(kind, batch, rank);
    u.time_on(dev) + vt.time_on(dev)
}

/// Inference FLOPs of a target at batch 1, reported in the paper's
/// convention (multiply–accumulate counts, i.e. the Table 2/3 "FLOPs"
/// column where ResNet-50 is 4.1 G).
pub fn target_flops(kind: &TargetKind, rank: Option<usize>) -> f64 {
    match rank {
        None => target_cost(kind, 1).flops / 2.0,
        Some(r) => {
            let (u, vt) = target_cost_factored(kind, 1, r);
            (u.flops + vt.flops) / 2.0
        }
    }
}

/// Trainable parameter count of a target, full-rank or factored.
pub fn target_params(kind: &TargetKind, rank: Option<usize>) -> usize {
    let (rows, cols) = match *kind {
        TargetKind::Conv {
            in_channels,
            out_channels,
            kernel,
            ..
        } => (in_channels * kernel * kernel, out_channels),
        TargetKind::Linear {
            in_dim, out_dim, ..
        } => (in_dim, out_dim),
    };
    match rank {
        None => rows * cols,
        Some(r) => r * (rows + cols),
    }
}

/// Cost of computing the singular values of an `(rows, cols)` matrix on
/// the host — the per-epoch stable-rank estimation overhead (§4.3). Uses
/// the Gram-matrix route: forming `WᵀW` plus an `O(p³)` eigensolve,
/// `p = min(rows, cols)`.
pub fn svdvals_cost(rows: usize, cols: usize) -> LayerCost {
    let p = rows.min(cols) as f64;
    let q = rows.max(cols) as f64;
    LayerCost {
        flops: 2.0 * p * p * q + 30.0 * p * p * p,
        bytes: 4.0 * (p * q + p * p),
        out_width: rows.min(cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(m: usize, n: usize, k: usize, stride: usize, hw: usize) -> TargetKind {
        TargetKind::Conv {
            in_channels: m,
            out_channels: n,
            kernel: k,
            stride,
            in_hw: (hw, hw),
        }
    }

    #[test]
    fn conv_flops_formula() {
        let c = target_cost(&conv(16, 32, 3, 1, 8), 4);
        let expect = 2.0 * 4.0 * 16.0 * 32.0 * 9.0 * 64.0;
        assert!((c.flops - expect).abs() < 1.0);
        assert_eq!(c.out_width, 32);
    }

    #[test]
    fn early_layers_have_lower_intensity() {
        // Paper §3.5: first stack (few channels, large spatial) has lower
        // arithmetic intensity than the last stack.
        let early = target_cost(&conv(64, 64, 3, 1, 32), 1024);
        let late = target_cost(&conv(512, 512, 3, 1, 4), 1024);
        assert!(
            arithmetic_intensity(&late) > 4.0 * arithmetic_intensity(&early),
            "late {} vs early {}",
            arithmetic_intensity(&late),
            arithmetic_intensity(&early)
        );
    }

    #[test]
    fn factorization_speeds_up_deep_stacks() {
        // ResNet-18 CIFAR stack 4 shape (512 ch @ 4×4), ρ̄ = 1/4.
        let dev = DeviceProfile::v100();
        let deep = conv(512, 512, 3, 1, 4);
        let full = target_time(&dev, &deep, 1024);
        let fact = target_time_factored(&dev, &deep, 1024, 128);
        assert!(full / fact > 1.5, "speedup only {}", full / fact);
    }

    #[test]
    fn factorization_barely_helps_first_stack() {
        // ResNet-18 CIFAR stack 1 shape (64 ch @ 32×32): the thin U conv
        // runs at low occupancy, eating the FLOP savings (Figure 4).
        let dev = DeviceProfile::v100();
        let early = conv(64, 64, 3, 1, 32);
        let full = target_time(&dev, &early, 1024);
        let fact = target_time_factored(&dev, &early, 1024, 16);
        assert!(full / fact < 1.5, "unexpected speedup {}", full / fact);
    }

    #[test]
    fn tiny_fc_slows_down_when_factorized() {
        // Figure 6: the last FC layer of ResNet-50 gets slower at any rank
        // because the second kernel launch dominates.
        let dev = DeviceProfile::v100();
        let fc = TargetKind::Linear {
            in_dim: 2048,
            out_dim: 1000,
            positions: 1,
            transformer: false,
        };
        let full = target_time(&dev, &fc, 128);
        for rank in [64, 128, 256, 512] {
            let fact = target_time_factored(&dev, &fc, 128, rank);
            assert!(fact > full, "rank {rank}: factorized {fact} vs full {full}");
        }
    }

    #[test]
    fn transformer_ffn_speeds_up() {
        // Figure 6 bottom: DeiT MLP layers gain ~1.7× at ρ = 1/4.
        let dev = DeviceProfile::v100();
        let fc1 = TargetKind::Linear {
            in_dim: 384,
            out_dim: 1536,
            positions: 196,
            transformer: true,
        };
        let full = target_time(&dev, &fc1, 128);
        let fact = target_time_factored(&dev, &fc1, 128, 96);
        let speedup = full / fact;
        assert!(speedup > 1.3 && speedup < 4.0, "speedup {speedup}");
    }

    #[test]
    fn factored_cost_matches_manual_composition() {
        let kind = conv(32, 64, 3, 2, 16);
        let (u, vt) = target_cost_factored(&kind, 8, 10);
        let u_expect = target_cost(&conv(32, 10, 3, 2, 16), 8);
        assert!((u.flops - u_expect.flops).abs() < 1.0);
        let vt_expect = target_cost(&conv(10, 64, 1, 1, 8), 8);
        assert!((vt.flops - vt_expect.flops).abs() < 1.0);
    }

    #[test]
    fn params_factored_formula() {
        let kind = conv(16, 32, 3, 1, 8);
        assert_eq!(target_params(&kind, None), 144 * 32);
        assert_eq!(target_params(&kind, Some(8)), 8 * (144 + 32));
        let lin = TargetKind::Linear {
            in_dim: 100,
            out_dim: 50,
            positions: 1,
            transformer: false,
        };
        assert_eq!(target_params(&lin, None), 5000);
        assert_eq!(target_params(&lin, Some(10)), 1500);
    }

    #[test]
    fn flops_drop_with_rank() {
        let kind = conv(64, 64, 3, 1, 8);
        let full = target_flops(&kind, None);
        let quarter = target_flops(&kind, Some(16));
        assert!(quarter < full * 0.5);
    }

    #[test]
    fn svdvals_cost_scales_with_small_dim() {
        let small = svdvals_cost(576, 64);
        let big = svdvals_cost(576, 512);
        assert!(big.flops > 10.0 * small.flops);
    }
}
