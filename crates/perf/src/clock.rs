use crate::{svdvals_cost, target_time, target_time_factored, DeviceProfile};
use cuttlefish_nn::TargetInfo;

/// Accumulates simulated wall-clock time for a training run on a chosen
/// device — the stand-in for the paper's "Time (hrs.)" columns.
///
/// Accounting follows the paper: end-to-end time includes full-rank
/// epochs, low-rank epochs, profiling, and the per-epoch stable-rank
/// estimation (§4.2, §4.3). The backward pass is charged as a constant
/// multiple of forward time ("there is a constant factor between forward
/// and backward computing time", §4.4); non-target layers (BN, activations,
/// pooling) are charged as a fixed fraction of the target time.
#[derive(Debug, Clone)]
pub struct TrainingClock {
    device: DeviceProfile,
    seconds: f64,
    /// Forward→(forward+backward) multiplier.
    pub backward_factor: f64,
    /// Extra fraction for non-matmul layers and framework overhead.
    pub overhead_frac: f64,
}

impl TrainingClock {
    /// Creates a zeroed clock for the given device.
    pub fn new(device: DeviceProfile) -> Self {
        TrainingClock {
            device,
            seconds: 0.0,
            backward_factor: 3.0,
            overhead_frac: 0.25,
        }
    }

    /// Accumulated simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Accumulated simulated hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// The device this clock models.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// Adds raw seconds (e.g. measured host-side overhead).
    pub fn add_seconds(&mut self, s: f64) {
        self.seconds += s;
    }

    /// Simulated time of one forward pass over all targets, given each
    /// target's current rank (`None` = full-rank).
    pub fn iteration_forward_time(
        &self,
        targets: &[TargetInfo],
        batch: usize,
        rank_of: impl Fn(&TargetInfo) -> Option<usize>,
    ) -> f64 {
        let t: f64 = targets
            .iter()
            .map(|ti| match rank_of(ti) {
                None => target_time(&self.device, &ti.kind, batch),
                Some(r) => target_time_factored(&self.device, &ti.kind, batch, r),
            })
            .sum();
        t * (1.0 + self.overhead_frac)
    }

    /// Charges `iters` training iterations (forward + backward).
    pub fn add_training_iterations(
        &mut self,
        targets: &[TargetInfo],
        batch: usize,
        iters: usize,
        rank_of: impl Fn(&TargetInfo) -> Option<usize>,
    ) {
        let fwd = self.iteration_forward_time(targets, batch, &rank_of);
        self.seconds += fwd * self.backward_factor * iters as f64;
    }

    /// Charges one epoch of stable-rank estimation: an `svdvals` on every
    /// tracked weight, executed host-side on the BLAS profile (§4.3 runs
    /// `scipy.linalg.svdvals` on the instance CPU).
    pub fn add_rank_estimation(&mut self, targets: &[TargetInfo]) {
        let host = DeviceProfile::host_blas();
        for ti in targets {
            let (r, c) = ti.matrix_shape();
            self.seconds += svdvals_cost(r, c).time_on(&host);
        }
    }

    /// Charges the Algorithm 2 profiling stage: `tau` timed training
    /// iterations of the full-rank model and of the probe-factorized model
    /// (the per-stack decisions reuse the same timed sweep, so the cost
    /// does not scale with the stack count — matching the paper's measured
    /// 3.98 s ≈ half an epoch for ResNet-18/CIFAR, §4.3).
    pub fn add_profiling(
        &mut self,
        targets: &[TargetInfo],
        batch: usize,
        tau: usize,
        profile_rank_of: impl Fn(&TargetInfo) -> Option<usize>,
    ) {
        let full = self.iteration_forward_time(targets, batch, |_| None);
        let fact = self.iteration_forward_time(targets, batch, &profile_rank_of);
        self.seconds += (full + fact) * self.backward_factor * tau as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::resnet18_cifar;

    #[test]
    fn low_rank_epochs_are_faster() {
        let targets = resnet18_cifar(10);
        let clock = TrainingClock::new(DeviceProfile::v100());
        let full = clock.iteration_forward_time(&targets, 1024, |_| None);
        let quarter =
            clock.iteration_forward_time(&targets, 1024, |t| Some((t.full_rank() / 4).max(1)));
        assert!(full / quarter > 1.2, "speedup {}", full / quarter);
        assert!(full / quarter < 4.5);
    }

    #[test]
    fn clock_accumulates() {
        let targets = resnet18_cifar(10);
        let mut clock = TrainingClock::new(DeviceProfile::v100());
        assert_eq!(clock.seconds(), 0.0);
        clock.add_training_iterations(&targets, 1024, 49, |_| None);
        let after_train = clock.seconds();
        assert!(after_train > 0.0);
        clock.add_rank_estimation(&targets);
        assert!(clock.seconds() > after_train);
        assert!((clock.hours() - clock.seconds() / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn rank_estimation_is_small_fraction_of_epoch() {
        // §4.3: stable-rank estimation ≈ 0.5 s/epoch vs ~10 s/epoch of
        // training on CIFAR-scale models — it must be a clear minority.
        let targets = resnet18_cifar(10);
        let mut train = TrainingClock::new(DeviceProfile::v100());
        train.add_training_iterations(&targets, 1024, 49, |_| None); // one epoch
        let mut est = TrainingClock::new(DeviceProfile::v100());
        est.add_rank_estimation(&targets);
        assert!(
            est.seconds() < 0.25 * train.seconds(),
            "estimation {} vs epoch {}",
            est.seconds(),
            train.seconds()
        );
    }

    #[test]
    fn profiling_charges_both_models() {
        let targets = resnet18_cifar(10);
        let mut clock = TrainingClock::new(DeviceProfile::v100());
        clock.add_profiling(&targets, 1024, 11, |t| Some((t.full_rank() / 4).max(1)));
        assert!(clock.seconds() > 0.0);
        // Profiling must stay ≪ total training time (paper: 0.16%).
        let mut train = TrainingClock::new(DeviceProfile::v100());
        train.add_training_iterations(&targets, 1024, 49 * 300, |_| None);
        assert!(clock.seconds() < 0.02 * train.seconds());
    }
}
