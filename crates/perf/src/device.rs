use serde::{Deserialize, Serialize};

/// A device performance profile: an occupancy-aware roofline.
///
/// `time = max(flops / (peak · util), bytes / bandwidth) + overhead`, where
/// `util = min(1, out_width / util_channels)` models the well-known GPU
/// behaviour that kernels with few output channels cannot fill the SMs —
/// the reason the paper's Figure 4 shows *no* speedup from factorizing
/// early convolution stacks even though their FLOPs drop 4×: the thin `U`
/// convolution (r filters) runs at proportionally lower utilization.
/// Setting `util_channels = 0` disables occupancy modeling (pure roofline).
///
/// The GPU numbers are public datasheet values for the three EC2 instance
/// types the paper uses; `kernel_overhead` is the per-launch +
/// framework-dispatch cost (~tens of µs under PyTorch), which is what makes
/// factorizing tiny FC layers a net loss (Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Peak FP32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed per-kernel launch + dispatch overhead in seconds.
    pub kernel_overhead: f64,
    /// Output width at which compute utilization saturates (0 disables).
    pub util_channels: usize,
}

impl DeviceProfile {
    /// NVIDIA V100 (EC2 p3.2xlarge — the paper's CIFAR/SVHN/GLUE box).
    pub fn v100() -> Self {
        DeviceProfile {
            name: "V100".into(),
            peak_flops: 15.7e12,
            mem_bandwidth: 900e9,
            kernel_overhead: 3.5e-5,
            util_channels: 64,
        }
    }

    /// NVIDIA T4 (EC2 g4dn.metal — the paper's ImageNet CNN box).
    pub fn t4() -> Self {
        DeviceProfile {
            name: "T4".into(),
            peak_flops: 8.1e12,
            mem_bandwidth: 320e9,
            kernel_overhead: 3.5e-5,
            util_channels: 64,
        }
    }

    /// NVIDIA A100 (EC2 p4d.24xlarge — the paper's DeiT/ResMLP box).
    pub fn a100() -> Self {
        DeviceProfile {
            name: "A100".into(),
            peak_flops: 19.5e12,
            mem_bandwidth: 1555e9,
            kernel_overhead: 3.5e-5,
            util_channels: 96,
        }
    }

    /// A single CPU core, approximating this reproduction's own substrate.
    pub fn cpu() -> Self {
        DeviceProfile {
            name: "CPU".into(),
            peak_flops: 3.0e9,
            mem_bandwidth: 2.0e10,
            kernel_overhead: 2e-8,
            util_channels: 0,
        }
    }

    /// A multithreaded BLAS/LAPACK host, used for the per-epoch
    /// `svdvals` overhead accounting (§4.3 runs `scipy.linalg.svdvals` on
    /// the instance CPU).
    pub fn host_blas() -> Self {
        DeviceProfile {
            name: "host-blas".into(),
            peak_flops: 5.0e10,
            mem_bandwidth: 5.0e10,
            kernel_overhead: 5e-5,
            util_channels: 0,
        }
    }

    /// Compute utilization for a kernel producing `out_width` parallel
    /// output channels/features.
    pub fn utilization(&self, out_width: usize) -> f64 {
        if self.util_channels == 0 {
            1.0
        } else {
            (out_width as f64 / self.util_channels as f64).min(1.0)
        }
    }

    /// Occupancy-aware roofline time for a kernel of `flops` FLOPs touching
    /// `bytes` bytes with `out_width` parallel outputs.
    pub fn kernel_time(&self, flops: f64, bytes: f64, out_width: usize) -> f64 {
        let util = self.utilization(out_width).max(1e-3);
        (flops / (self.peak_flops * util)).max(bytes / self.mem_bandwidth) + self.kernel_overhead
    }

    /// The FLOP-per-byte ratio above which this device is compute-bound
    /// (at full utilization).
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.mem_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_vs_memory_bound() {
        let d = DeviceProfile::v100();
        // Far above the ridge point at full width: compute-bound.
        let t_compute = d.kernel_time(1e12, 1e6, 512);
        assert!((t_compute - (1e12 / d.peak_flops + d.kernel_overhead)).abs() < 1e-9);
        // Far below: memory-bound.
        let t_mem = d.kernel_time(1e6, 1e12, 512);
        assert!((t_mem - (1e12 / d.mem_bandwidth + d.kernel_overhead)).abs() < 1e-9);
    }

    #[test]
    fn thin_kernels_run_at_low_utilization() {
        let d = DeviceProfile::v100();
        let wide = d.kernel_time(1e12, 1e6, 64);
        let thin = d.kernel_time(1e12, 1e6, 16);
        assert!((thin / wide - 4.0).abs() < 0.1, "{}", thin / wide);
    }

    #[test]
    fn utilization_saturates() {
        let d = DeviceProfile::v100();
        assert_eq!(d.utilization(64), 1.0);
        assert_eq!(d.utilization(1024), 1.0);
        assert!((d.utilization(16) - 0.25).abs() < 1e-12);
        assert_eq!(DeviceProfile::cpu().utilization(1), 1.0);
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let d = DeviceProfile::v100();
        let t = d.kernel_time(1e3, 1e3, 64);
        assert!(t > 0.9 * d.kernel_overhead);
        assert!(t < 2.0 * d.kernel_overhead);
    }

    #[test]
    fn ridge_points_ordered_sensibly() {
        assert!(DeviceProfile::v100().ridge_point() > 10.0);
        assert!(DeviceProfile::t4().ridge_point() > 10.0);
        assert!(DeviceProfile::cpu().ridge_point() < 1.0);
    }
}
