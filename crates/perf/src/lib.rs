//! Roofline performance model for the Cuttlefish reproduction.
//!
//! The paper's end-to-end speedup results and its Algorithm 2 profiling
//! step both hinge on **arithmetic intensity** (§3.5): a layer whose
//! FLOP-to-byte ratio is low is memory-bound on a GPU, so halving its
//! FLOPs by factorization buys almost nothing; deep convolution stacks
//! and transformer blocks are compute-bound, so factorization converts
//! directly into wall-clock savings; and very small layers are dominated
//! by kernel-launch overhead, so *splitting them into two kernels makes
//! them slower* (the paper's Figure 6 FC-layer observation).
//!
//! This crate reproduces all three regimes analytically with a roofline
//! model: `time = max(FLOPs / peak_flops, bytes / bandwidth) + launch
//! overhead`, parameterized by [`DeviceProfile`]s for the paper's three
//! GPUs (V100 on p3.2xlarge, T4 on g4dn.metal, A100 on p4d.24xlarge).
//!
//! [`arch`] additionally provides the *full-size* layer-shape specs of the
//! paper's architectures (ResNet-18/50, WRN-50-2, VGG-19, DeiT-base/small,
//! ResMLP-S36) so FLOPs/parameter tables can be computed at true scale
//! even though training runs on micro models.
//!
//! # Example
//!
//! ```
//! use cuttlefish_perf::{DeviceProfile, target_time, target_time_factored};
//! use cuttlefish_nn::TargetKind;
//!
//! let dev = DeviceProfile::v100();
//! // A deep, compute-bound conv: factorizing at rank 1/4 gives a real speedup.
//! let deep = TargetKind::Conv {
//!     in_channels: 512, out_channels: 512, kernel: 3, stride: 1, in_hw: (8, 8),
//! };
//! let full = target_time(&dev, &deep, 1024);
//! let fact = target_time_factored(&dev, &deep, 1024, 128);
//! assert!(full > 1.5 * fact);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
mod clock;
mod cost;
mod device;

pub use clock::TrainingClock;
pub use cost::{
    arithmetic_intensity, svdvals_cost, target_cost, target_cost_factored, target_flops,
    target_params, target_time, target_time_factored, LayerCost,
};
pub use device::DeviceProfile;
