//! Full-size layer-shape specifications of the paper's architectures.
//!
//! Micro models train; these specs let the benchmark harness compute
//! parameter counts, inference FLOPs, and roofline times at the *paper's
//! true scale* (Tables 1–3, Figures 4 and 6) without allocating any
//! weights. Each function returns the same [`TargetInfo`] list a real
//! model builder would register.

use cuttlefish_nn::{TargetInfo, TargetKind};

#[allow(clippy::too_many_arguments)] // mirrors the conv layer signature
fn conv(
    out: &mut Vec<TargetInfo>,
    name: String,
    stack: usize,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    in_hw: (usize, usize),
) {
    let index = out.len() + 1;
    out.push(TargetInfo {
        name,
        stack,
        index,
        kind: TargetKind::Conv {
            in_channels: in_c,
            out_channels: out_c,
            kernel: k,
            stride,
            in_hw,
        },
    });
}

fn linear(
    out: &mut Vec<TargetInfo>,
    name: String,
    stack: usize,
    in_dim: usize,
    out_dim: usize,
    positions: usize,
    transformer: bool,
) {
    let index = out.len() + 1;
    out.push(TargetInfo {
        name,
        stack,
        index,
        kind: TargetKind::Linear {
            in_dim,
            out_dim,
            positions,
            transformer,
        },
    });
}

/// ResNet-18 for 32×32 CIFAR inputs (stem adjusted to 3×3 stride 1, the
/// paper's Table 6 modification). ~11.2 M parameters.
pub fn resnet18_cifar(classes: usize) -> Vec<TargetInfo> {
    let mut t = Vec::new();
    let mut hw = (32usize, 32usize);
    conv(&mut t, "conv1".into(), 0, 3, 64, 3, 1, hw);
    let mut in_c = 64;
    for (si, planes) in [64usize, 128, 256, 512].iter().enumerate() {
        let stack = si + 1;
        for bi in 0..2 {
            let stride = if bi == 0 && si > 0 { 2 } else { 1 };
            let name = format!("s{stack}.b{bi}");
            conv(
                &mut t,
                format!("{name}.conv1"),
                stack,
                in_c,
                *planes,
                3,
                stride,
                hw,
            );
            if stride == 2 {
                hw = (hw.0 / 2, hw.1 / 2);
            }
            conv(
                &mut t,
                format!("{name}.conv2"),
                stack,
                *planes,
                *planes,
                3,
                1,
                hw,
            );
            if stride != 1 || in_c != *planes {
                conv(
                    &mut t,
                    format!("{name}.down"),
                    stack,
                    in_c,
                    *planes,
                    1,
                    stride,
                    (hw.0 * stride, hw.1 * stride),
                );
            }
            in_c = *planes;
        }
    }
    linear(&mut t, "fc".into(), 5, 512, classes, 1, false);
    t
}

/// VGG-19-BN for 32×32 CIFAR inputs (paper Table 7). ~20 M parameters.
pub fn vgg19_cifar(classes: usize) -> Vec<TargetInfo> {
    let groups: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];
    let mut t = Vec::new();
    let mut hw = (32usize, 32usize);
    let mut in_c = 3usize;
    let mut idx = 0;
    for (stack, &(width, n)) in groups.iter().enumerate() {
        for _ in 0..n {
            idx += 1;
            conv(&mut t, format!("conv{idx}"), stack, in_c, width, 3, 1, hw);
            in_c = width;
        }
        if stack < groups.len() - 1 {
            hw = (hw.0 / 2, hw.1 / 2);
        }
    }
    linear(&mut t, "classifier".into(), 5, 512, classes, 1, false);
    t
}

fn resnet50_family(width_mult: f32) -> Vec<TargetInfo> {
    let mut t = Vec::new();
    let mut hw = (224usize, 224usize);
    conv(&mut t, "conv1".into(), 0, 3, 64, 7, 2, hw);
    // Stem stride 2 then max pool stride 2: 224 → 112 → 56.
    hw = (56, 56);
    let blocks = [3usize, 4, 6, 3];
    let mut in_c = 64usize;
    for (si, &n) in blocks.iter().enumerate() {
        let stack = si + 1;
        let planes = 64usize << si;
        let width = ((planes as f32 * width_mult).round()) as usize;
        for bi in 0..n {
            let stride = if bi == 0 && si > 0 { 2 } else { 1 };
            let name = format!("s{stack}.b{bi}");
            conv(
                &mut t,
                format!("{name}.conv1"),
                stack,
                in_c,
                width,
                1,
                1,
                hw,
            );
            conv(
                &mut t,
                format!("{name}.conv2"),
                stack,
                width,
                width,
                3,
                stride,
                hw,
            );
            if stride == 2 {
                hw = (hw.0 / 2, hw.1 / 2);
            }
            conv(
                &mut t,
                format!("{name}.conv3"),
                stack,
                width,
                planes * 4,
                1,
                1,
                hw,
            );
            if stride != 1 || in_c != planes * 4 {
                conv(
                    &mut t,
                    format!("{name}.down"),
                    stack,
                    in_c,
                    planes * 4,
                    1,
                    stride,
                    (hw.0 * stride, hw.1 * stride),
                );
            }
            in_c = planes * 4;
        }
    }
    linear(&mut t, "fc".into(), 5, 2048, 1000, 1, false);
    t
}

/// ResNet-50 for 224×224 ImageNet inputs. ~25.5 M parameters, ~4.1 GFLOPs.
pub fn resnet50_imagenet() -> Vec<TargetInfo> {
    resnet50_family(1.0)
}

/// WideResNet-50-2 for ImageNet. ~68.9 M parameters, ~11.4 GFLOPs.
pub fn wide_resnet50_imagenet() -> Vec<TargetInfo> {
    resnet50_family(2.0)
}

/// Registers one transformer encoder block's projections.
///
/// The query/key/value projections are registered **per head** (shape
/// `(dim, dim/heads)` each): the paper factorizes each head's `W^(i)`
/// separately (§2.1), which is why q/k/v compress at ρ = 1/2 while the
/// square output projection `Wᵒ` does not and is left unfactorized
/// (Appendix C.2).
fn encoder_block(
    t: &mut Vec<TargetInfo>,
    name: &str,
    dim: usize,
    heads: usize,
    mlp_ratio: usize,
    tokens: usize,
) {
    let dh = dim / heads;
    for proj in ["wq", "wk", "wv"] {
        for h in 0..heads {
            linear(
                t,
                format!("{name}.attn.{proj}.h{h}"),
                1,
                dim,
                dh,
                tokens,
                true,
            );
        }
    }
    linear(t, format!("{name}.attn.wo"), 1, dim, dim, tokens, true);
    linear(
        t,
        format!("{name}.fc1"),
        1,
        dim,
        dim * mlp_ratio,
        tokens,
        true,
    );
    linear(
        t,
        format!("{name}.fc2"),
        1,
        dim * mlp_ratio,
        dim,
        tokens,
        true,
    );
}

fn vit_family(
    dim: usize,
    depth: usize,
    heads: usize,
    mlp_ratio: usize,
    classes: usize,
) -> Vec<TargetInfo> {
    let mut t = Vec::new();
    let tokens = 14 * 14; // 224/16 patches
    conv(&mut t, "patch_embed".into(), 0, 3, dim, 16, 16, (224, 224));
    for d in 0..depth {
        encoder_block(&mut t, &format!("enc{d}"), dim, heads, mlp_ratio, tokens);
    }
    linear(&mut t, "head".into(), 2, dim, classes, 1, false);
    t
}

/// DeiT-base (dim 768, depth 12, 12 heads). ~86 M parameters, ~17.6 GFLOPs.
pub fn deit_base() -> Vec<TargetInfo> {
    vit_family(768, 12, 12, 4, 1000)
}

/// DeiT-small (dim 384, depth 12, 6 heads) — used in the Figure 6 ablation.
pub fn deit_small() -> Vec<TargetInfo> {
    vit_family(384, 12, 6, 4, 1000)
}

/// ResMLP-S36 (dim 384, depth 36). ~44 M parameters, ~8.9 GFLOPs.
pub fn resmlp_s36() -> Vec<TargetInfo> {
    let mut t = Vec::new();
    let dim = 384usize;
    let tokens = 14 * 14;
    conv(&mut t, "patch_embed".into(), 0, 3, dim, 16, 16, (224, 224));
    for d in 0..36 {
        linear(
            &mut t,
            format!("blk{d}.tokmix"),
            1,
            tokens,
            tokens,
            dim,
            true,
        );
        linear(&mut t, format!("blk{d}.fc1"), 1, dim, dim * 4, tokens, true);
        linear(&mut t, format!("blk{d}.fc2"), 1, dim * 4, dim, tokens, true);
    }
    linear(&mut t, "head".into(), 2, dim, 1000, 1, false);
    t
}

/// BERT-base encoder shapes (dim 768, depth 12, 128-token sequences) for
/// the GLUE size accounting in Table 4. ~108 M params including the
/// 30k-token embedding (embeddings are counted but never factorized).
pub fn bert_base_encoder() -> Vec<TargetInfo> {
    let mut t = Vec::new();
    let dim = 768usize;
    let tokens = 128;
    for d in 0..12 {
        encoder_block(&mut t, &format!("enc{d}"), dim, 12, 4, tokens);
    }
    t
}

/// Sums parameter counts over targets with an optional per-target rank
/// assignment (`None` entries are full-rank).
pub fn total_params(
    targets: &[TargetInfo],
    rank_of: impl Fn(&TargetInfo) -> Option<usize>,
) -> usize {
    targets
        .iter()
        .map(|t| crate::target_params(&t.kind, rank_of(t)))
        .sum()
}

/// Sums inference FLOPs (batch 1) over targets with optional ranks.
pub fn total_flops(targets: &[TargetInfo], rank_of: impl Fn(&TargetInfo) -> Option<usize>) -> f64 {
    targets
        .iter()
        .map(|t| crate::target_flops(&t.kind, rank_of(t)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_param_count_near_paper() {
        let t = resnet18_cifar(10);
        let p = total_params(&t, |_| None) as f64 / 1e6;
        assert!((p - 11.2).abs() < 0.5, "{p} M");
    }

    #[test]
    fn vgg19_param_count_near_paper() {
        let t = vgg19_cifar(10);
        let p = total_params(&t, |_| None) as f64 / 1e6;
        assert!((p - 20.0).abs() < 0.6, "{p} M");
    }

    #[test]
    fn resnet50_params_and_flops_near_paper() {
        let t = resnet50_imagenet();
        let p = total_params(&t, |_| None) as f64 / 1e6;
        assert!((p - 25.5).abs() < 1.0, "{p} M");
        let g = total_flops(&t, |_| None) / 1e9;
        assert!((g - 4.1).abs() < 0.6, "{g} GFLOPs");
    }

    #[test]
    fn wide_resnet50_params_and_flops_near_paper() {
        let t = wide_resnet50_imagenet();
        let p = total_params(&t, |_| None) as f64 / 1e6;
        assert!((p - 68.9).abs() < 2.5, "{p} M");
        let g = total_flops(&t, |_| None) / 1e9;
        assert!((g - 11.4).abs() < 1.2, "{g} GFLOPs");
    }

    #[test]
    fn deit_base_params_and_flops_near_paper() {
        let t = deit_base();
        let p = total_params(&t, |_| None) as f64 / 1e6;
        assert!((p - 86.0).abs() < 3.0, "{p} M");
        let g = total_flops(&t, |_| None) / 1e9;
        assert!((g - 17.6).abs() < 1.5, "{g} GFLOPs");
    }

    #[test]
    fn resmlp_params_and_flops_near_paper() {
        let t = resmlp_s36();
        let p = total_params(&t, |_| None) as f64 / 1e6;
        assert!((p - 44.0).abs() < 2.5, "{p} M");
        let g = total_flops(&t, |_| None) / 1e9;
        assert!((g - 8.9).abs() < 1.0, "{g} GFLOPs");
    }

    #[test]
    fn half_rank_compresses_qkv_but_not_wo() {
        // Per-head q/k/v (768, 64) at r = 32: 32·832 < 768·64 — compresses.
        // Square Wᵒ (768, 768) at r = 384: 384·1536 == 768² — no savings,
        // which is exactly why the paper skips factorizing it (Appx. C.2).
        let t = bert_base_encoder();
        let qkv = t.iter().find(|ti| ti.name.contains("wq.h0")).unwrap();
        let wo = t.iter().find(|ti| ti.name.ends_with("attn.wo")).unwrap();
        let qkv_half = crate::target_params(&qkv.kind, Some(qkv.full_rank() / 2));
        let qkv_full = crate::target_params(&qkv.kind, None);
        assert!(qkv_half < qkv_full, "{qkv_half} vs {qkv_full}");
        let wo_half = crate::target_params(&wo.kind, Some(wo.full_rank() / 2));
        let wo_full = crate::target_params(&wo.kind, None);
        assert!(wo_half >= wo_full);
        // Blended over the encoder (skipping layers that don't shrink),
        // half-rank lands between 0.55 and 0.85 of full size.
        let full = total_params(&t, |_| None);
        let half = total_params(&t, |ti| {
            let r = ti.full_rank() / 2;
            let shrinks =
                crate::target_params(&ti.kind, Some(r)) < crate::target_params(&ti.kind, None);
            shrinks.then_some(r)
        });
        let ratio = half as f64 / full as f64;
        assert!(ratio > 0.55 && ratio < 0.85, "{ratio}");
    }

    #[test]
    fn indices_sequential_and_named() {
        for targets in [resnet18_cifar(10), resnet50_imagenet(), deit_base()] {
            for (i, t) in targets.iter().enumerate() {
                assert_eq!(t.index, i + 1);
                assert!(!t.name.is_empty());
            }
        }
    }
}
