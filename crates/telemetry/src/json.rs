//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The telemetry crate deliberately carries no dependencies (see the crate
//! docs), so events serialize through this module instead of serde. The
//! subset implemented is exactly what the event schema needs: objects,
//! arrays, strings, finite numbers, booleans, and `null`. Non-finite
//! numbers — which legal JSON cannot represent but the tracker's ε can be
//! (`f32::INFINITY` disables stabilization checks) — are encoded as the
//! strings `"Infinity"`, `"-Infinity"`, and `"NaN"`, and parsed back.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so encodings are
/// deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes a number, spilling non-finite values to their string forms.
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("NaN".to_string())
        } else if v > 0.0 {
            Json::Str("Infinity".to_string())
        } else {
            Json::Str("-Infinity".to_string())
        }
    }

    /// Encodes an `Option` as the value or `null`.
    pub fn opt_num(v: Option<f64>) -> Json {
        match v {
            Some(x) => Json::num(x),
            None => Json::Null,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, decoding the non-finite string forms.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "Infinity" => Some(f64::INFINITY),
                "-Infinity" => Some(f64::NEG_INFINITY),
                "NaN" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2.0f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes to a compact single-line JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                // `{}` on f64 prints the shortest decimal that parses back
                // to the same value, so encode→parse round-trips exactly.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // Callers construct numbers via `Json::num`, which
                    // diverts non-finite values to strings; this arm only
                    // fires on hand-built values.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error,
    /// including the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        Json::parse_at(text).map_err(|(_, msg)| msg)
    }

    /// Whether `text` is a strict prefix of some valid JSON document —
    /// i.e. parsing fails only by running out of input, never on a byte
    /// that is already wrong. This is the signature of a JSONL line cut
    /// short by a crashed writer, as opposed to a corrupt one.
    pub fn is_truncated_prefix(text: &str) -> bool {
        match Json::parse_at(text) {
            Ok(_) => false,
            Err((at, _)) => at >= text.len(),
        }
    }

    /// Parser entry point reporting the byte offset the error occurred
    /// at (`text.len()` means the input simply ended too early).
    fn parse_at(text: &str) -> Result<Json, (usize, String)> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err((pos, format!("trailing garbage at byte {pos}")));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Internal parse error: the byte offset it happened at plus a message.
/// An offset of `bytes.len()` means the parser ran out of input.
type ParseErr = (usize, String);

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseErr> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err((*pos, format!("expected '{}' at byte {}", b as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseErr> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err((bytes.len(), "unexpected end of input".to_string()));
    };
    match b {
        b'{' => parse_obj(bytes, pos),
        b'[' => parse_arr(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        _ => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseErr> {
    let rest = &bytes[*pos..];
    if rest.starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else if lit.as_bytes().starts_with(rest) {
        // The input ends partway through the literal — truncation, not
        // a typo, so report the error at end-of-input.
        Err((bytes.len(), format!("truncated literal at byte {}", *pos)))
    } else {
        Err((*pos, format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseErr> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| (start, e.to_string()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| (*pos, format!("invalid number '{text}' at byte {start}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseErr> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err((bytes.len(), "unterminated string".to_string()));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err((bytes.len(), "unterminated escape".to_string()));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| (bytes.len(), "truncated \\u escape".to_string()))?;
                        let hex = std::str::from_utf8(hex).map_err(|e| (*pos, e.to_string()))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| (*pos, e.to_string()))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err((*pos - 1, format!("bad escape '\\{}'", other as char))),
                }
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unescaped).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|e| (*pos, e.to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseErr> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err((*pos, format!("expected ',' or ']' at byte {}", *pos))),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseErr> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err((*pos, format!("expected ',' or '}}' at byte {}", *pos))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-3.25", "1e-3", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.encode()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.encode(), text);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e300, -2.5e-17, 49.0] {
            let v = Json::Num(x);
            let back = Json::parse(&v.encode()).unwrap();
            assert_eq!(back.as_f64(), Some(x));
        }
    }

    #[test]
    fn non_finite_numbers_use_string_forms() {
        assert_eq!(Json::num(f64::INFINITY).encode(), "\"Infinity\"");
        assert_eq!(Json::num(f64::NEG_INFINITY).encode(), "\"-Infinity\"");
        assert_eq!(Json::num(f64::NAN).encode(), "\"NaN\"");
        let v = Json::parse("\"Infinity\"").unwrap();
        assert_eq!(v.as_f64(), Some(f64::INFINITY));
        assert!(Json::parse("\"NaN\"").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn string_escapes() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1}";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.encode()).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(r#"{"n":7,"s":"x","b":false,"z":null}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["{", "[1,", "\"open", "{\"a\" 1}", "12 34", "tru"] {
            assert!(Json::parse(text).is_err(), "{text}");
        }
    }

    #[test]
    fn truncated_prefixes_are_classified() {
        // Every proper prefix of a real event line is a truncation.
        let line = r#"{"kind":"serve_request","worker":1,"queue_ms":0.5,"outcome":"ok"}"#;
        for cut in 1..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            let prefix = &line[..cut];
            if Json::parse(prefix).is_ok() {
                continue; // e.g. a prefix that happens to be complete
            }
            assert!(
                Json::is_truncated_prefix(prefix),
                "prefix not classified as truncation: {prefix}"
            );
        }
        // Corruption (a wrong byte before the end) is not truncation.
        for text in ["{\"a\" 1}", "12 34", "trx", "{\"a\":1}}", "[1,2]x"] {
            assert!(!Json::is_truncated_prefix(text), "{text}");
        }
        // Complete documents are not truncation either.
        assert!(!Json::is_truncated_prefix("{\"a\":1}"));
        // Mid-literal and mid-escape cuts still count.
        for text in ["{\"a\":tru", "{\"a\":\"x\\", "{\"a\":\"x\\u00"] {
            assert!(Json::is_truncated_prefix(text), "{text}");
        }
    }

    #[test]
    fn fractional_values_are_not_integers() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
