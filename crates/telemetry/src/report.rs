//! Rendering JSONL event streams into a human-readable run report.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, KernelCounters};
use crate::json::Json;
use crate::manifest::RunManifest;
use crate::metrics::Histogram;

/// A parsed run, ready to render as a report.
///
/// Built from a JSONL stream with [`RunReport::from_jsonl`]; [`render`]
/// produces the text report the `telemetry_summary` binary prints.
///
/// [`render`]: RunReport::render
#[derive(Debug, Default)]
pub struct RunReport {
    events: Vec<Event>,
    /// Lines that failed to parse, with their 1-based line numbers.
    pub skipped_lines: Vec<(usize, String)>,
    /// 1-based line number of a final line that was cut short mid-write
    /// (the crash signature: the file does not end in a newline and the
    /// tail is a strict prefix of valid JSON). Skipped with a warning
    /// rather than reported as corruption.
    pub truncated_final_line: Option<usize>,
}

impl RunReport {
    /// Parses a JSONL document into a report. Blank lines are ignored;
    /// malformed lines are collected into
    /// [`skipped_lines`](Self::skipped_lines) rather than aborting, so a
    /// damaged log still renders. A final line cut short by a crashed
    /// writer (no trailing newline, valid-JSON prefix) is recognized as
    /// truncation and surfaced via
    /// [`truncated_final_line`](Self::truncated_final_line) instead.
    pub fn from_jsonl(text: &str) -> RunReport {
        let mut report = RunReport::default();
        let lines: Vec<&str> = text.lines().collect();
        let last_idx = lines
            .iter()
            .rposition(|l| !l.trim().is_empty())
            .unwrap_or(usize::MAX);
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::parse_jsonl_line(line) {
                Ok(event) => report.events.push(event),
                Err(err) => {
                    let is_final_partial_write = i == last_idx
                        && !text.ends_with('\n')
                        && Json::is_truncated_prefix(line.trim());
                    if is_final_partial_write {
                        report.truncated_final_line = Some(i + 1);
                    } else {
                        report.skipped_lines.push((i + 1, err));
                    }
                }
            }
        }
        report
    }

    /// The parsed events, in file order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The run manifest, if the log contains one (the last wins).
    pub fn manifest(&self) -> Option<&RunManifest> {
        self.events.iter().rev().find_map(|e| match e {
            Event::Manifest(m) => Some(m),
            _ => None,
        })
    }

    /// Renders the full report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_header(&mut out);
        self.render_profile(&mut out);
        self.render_rank_trajectory(&mut out);
        self.render_switch(&mut out);
        self.render_phases(&mut out);
        self.render_serving(&mut out);
        self.render_fleet(&mut out);
        self.render_stages(&mut out);
        self.render_dist(&mut out);
        self.render_metrics(&mut out);
        self.render_kernels(&mut out);
        if !self.skipped_lines.is_empty() {
            let _ = writeln!(
                out,
                "\nskipped {} malformed line(s):",
                self.skipped_lines.len()
            );
            for (line_no, err) in self.skipped_lines.iter().take(5) {
                let _ = writeln!(out, "  line {line_no}: {err}");
            }
        }
        if let Some(line_no) = self.truncated_final_line {
            let _ = writeln!(
                out,
                "\nwarning: skipped 1 truncated final line (line {line_no}; the writer likely crashed mid-record)"
            );
        }
        out
    }

    fn render_header(&self, out: &mut String) {
        let _ = writeln!(out, "== run summary ==");
        match self.manifest() {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "policy {}  seed {}  config {}  git {}",
                    m.policy,
                    m.seed,
                    m.config_hash,
                    m.git_describe.as_deref().unwrap_or("-")
                );
                let e = m
                    .e_hat
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let k = m
                    .k_hat
                    .map(|k| k.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "E_hat {e}  K_hat {k}  params {} -> {} ({:.1}% of full)  sim {:.2} h",
                    m.params_full,
                    m.params_final,
                    100.0 * m.params_final as f64 / m.params_full.max(1) as f64,
                    m.sim_hours
                );
                let counts: Vec<String> = m
                    .event_counts
                    .iter()
                    .map(|(k, n)| format!("{k}:{n}"))
                    .collect();
                let _ = writeln!(out, "events  {}", counts.join("  "));
            }
            None => {
                let _ = writeln!(
                    out,
                    "no manifest found ({} events parsed; run may have been interrupted)",
                    self.events.len()
                );
            }
        }
    }

    fn render_profile(&self, out: &mut String) {
        let rows: Vec<_> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::ProfileMeasured {
                    stack,
                    full_time_s,
                    factored_time_s,
                    speedup,
                    threshold,
                } => Some((*stack, *full_time_s, *factored_time_s, *speedup, *threshold)),
                _ => None,
            })
            .collect();
        if rows.is_empty() {
            return;
        }
        let _ = writeln!(out, "\n== roofline profile (Algorithm 2) ==");
        let _ = writeln!(out, "stack  full_s     factored_s  speedup  keep_full");
        for (stack, full, fact, speedup, threshold) in rows {
            let _ = writeln!(
                out,
                "{stack:>5}  {full:<9.4}  {fact:<10.4}  {speedup:<7.2}  {}",
                if speedup < threshold { "yes" } else { "no" }
            );
        }
    }

    fn render_rank_trajectory(&self, out: &mut String) {
        // epoch -> layer -> scaled rho, layers in first-seen order.
        let mut layers: Vec<String> = Vec::new();
        let mut rows: BTreeMap<usize, BTreeMap<String, f32>> = BTreeMap::new();
        for e in &self.events {
            if let Event::StableRankSampled {
                epoch,
                layer,
                scaled_rho,
                ..
            } = e
            {
                if !layers.contains(layer) {
                    layers.push(layer.clone());
                }
                rows.entry(*epoch)
                    .or_default()
                    .insert(layer.clone(), *scaled_rho);
            }
        }
        if rows.is_empty() {
            return;
        }
        // Cap the table width: show the first columns and fold the rest.
        const MAX_COLS: usize = 8;
        let shown = &layers[..layers.len().min(MAX_COLS)];
        let folded = layers.len().saturating_sub(MAX_COLS);
        let _ = writeln!(out, "\n== scaled stable-rank trajectory ==");
        let mut header = String::from("epoch");
        for layer in shown {
            let mut short: Vec<char> = layer.chars().rev().take(12).collect();
            short.reverse();
            let short: String = short.into_iter().collect();
            let _ = write!(header, "  {short:>12}");
        }
        if folded > 0 {
            let _ = write!(header, "  (+{folded} more)");
        }
        let _ = writeln!(out, "{header}");
        for (epoch, by_layer) in &rows {
            let mut line = format!("{epoch:>5}");
            for layer in shown {
                match by_layer.get(layer) {
                    Some(rho) => {
                        let _ = write!(line, "  {rho:>12.3}");
                    }
                    None => {
                        let _ = write!(line, "  {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{line}");
        }
    }

    fn render_switch(&self, out: &mut String) {
        for e in &self.events {
            if let Event::SwitchTriggered {
                e_hat,
                k_hat,
                decisions,
            } = e
            {
                let factored = decisions.iter().filter(|d| d.chosen.is_some()).count();
                let _ = writeln!(out, "\n== switch (Algorithm 1) ==");
                let _ = writeln!(
                    out,
                    "E_hat {e_hat}  K_hat {k_hat}  targets {} (factorized {factored}, skipped {})",
                    decisions.len(),
                    decisions.len() - factored
                );
                let _ = writeln!(out, "layer                     rank/full    estimate  note");
                for d in decisions {
                    let note = d.skip.as_deref().unwrap_or("");
                    let rank = match d.chosen {
                        Some(r) => format!("{r}/{}", d.full_rank),
                        None => format!("-/{}", d.full_rank),
                    };
                    let _ = writeln!(
                        out,
                        "{:<24}  {rank:>10}  {:>8.2}  {note}",
                        d.layer, d.estimate
                    );
                }
            }
        }
    }

    fn render_phases(&self, out: &mut String) {
        // Aggregate span durations by name, plus per-epoch wall time.
        let mut spans: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
        let mut epoch_ms = 0.0f64;
        let mut epochs = 0u64;
        for e in &self.events {
            match e {
                Event::SpanClosed { name, wall_ms } => {
                    let entry = spans.entry(name.as_str()).or_insert((0, 0.0));
                    entry.0 += 1;
                    entry.1 += wall_ms;
                }
                Event::EpochCompleted { wall_ms, .. } => {
                    epoch_ms += wall_ms;
                    epochs += 1;
                }
                _ => {}
            }
        }
        if spans.is_empty() && epochs == 0 {
            return;
        }
        let _ = writeln!(out, "\n== time per phase (host wall clock) ==");
        if epochs > 0 {
            let _ = writeln!(
                out,
                "{:<16}  {:>5}  {:>10.1} ms total  {:>8.2} ms avg",
                "training epochs",
                epochs,
                epoch_ms,
                epoch_ms / epochs as f64
            );
        }
        for (name, (count, total)) in &spans {
            let _ = writeln!(
                out,
                "{:<16}  {:>5}  {:>10.1} ms total  {:>8.2} ms avg",
                name,
                count,
                total,
                total / *count as f64
            );
        }
    }

    fn render_serving(&self, out: &mut String) {
        // Per-outcome request counts plus end-to-end latency percentiles
        // (queue + inference), and batch-shape/queue-depth aggregates.
        // Latencies aggregate through the shared log-linear histogram in
        // microsecond ticks — constant memory, no per-request storage.
        let mut outcomes: BTreeMap<&str, u64> = BTreeMap::new();
        let latency_us = Histogram::new();
        let mut batches = 0u64;
        let mut batch_items = 0u64;
        let mut max_batch = 0usize;
        let mut depth_sum = 0u64;
        let mut max_depth = 0usize;
        for e in &self.events {
            match e {
                Event::ServeRequest {
                    queue_ms,
                    infer_ms,
                    outcome,
                    ..
                } => {
                    *outcomes.entry(outcome.as_str()).or_insert(0) += 1;
                    if outcome == "ok" {
                        latency_us.record_f64((queue_ms + infer_ms) * 1000.0);
                    }
                }
                Event::ServeBatch {
                    batch_size,
                    queue_depth,
                    ..
                } => {
                    batches += 1;
                    batch_items += *batch_size as u64;
                    max_batch = max_batch.max(*batch_size);
                    depth_sum += *queue_depth as u64;
                    max_depth = max_depth.max(*queue_depth);
                }
                _ => {}
            }
        }
        if outcomes.is_empty() && batches == 0 {
            return;
        }
        let _ = writeln!(out, "\n== serving ==");
        let total: u64 = outcomes.values().sum();
        let parts: Vec<String> = outcomes.iter().map(|(k, n)| format!("{k}:{n}")).collect();
        let _ = writeln!(out, "requests {total}  ({})", parts.join("  "));
        if batches > 0 {
            let _ = writeln!(
                out,
                "batches {batches}  avg_size {:.2}  max_size {max_batch}  avg_queue_depth {:.2}  max_queue_depth {max_depth}",
                batch_items as f64 / batches as f64,
                depth_sum as f64 / batches as f64,
            );
        }
        let lat = latency_us.snapshot();
        if lat.count > 0 {
            let _ = writeln!(
                out,
                "latency ms  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}",
                lat.percentile(0.50) / 1000.0,
                lat.percentile(0.95) / 1000.0,
                lat.percentile(0.99) / 1000.0,
                lat.max as f64 / 1000.0,
            );
        }
    }

    fn render_fleet(&self, out: &mut String) {
        // Multi-model / multi-tenant serving view: per-model and
        // per-tenant outcome counts with ok-latency percentiles, plus the
        // phase path of every rollout. Latencies aggregate through the
        // shared log-linear histogram in microsecond ticks, so this is the
        // same estimator fleet_bench reads from the live registry — the
        // two views reconcile.
        struct Agg {
            count: u64,
            ok: u64,
            lat_us: Histogram,
        }
        impl Agg {
            fn new() -> Agg {
                Agg {
                    count: 0,
                    ok: 0,
                    lat_us: Histogram::new(),
                }
            }
        }
        let mut outcomes: BTreeMap<&str, u64> = BTreeMap::new();
        let mut models: BTreeMap<&str, Agg> = BTreeMap::new();
        let mut tenants: BTreeMap<&str, Agg> = BTreeMap::new();
        // (model, version, from) -> ordered (phase, wall_ms) path.
        type RolloutKey<'a> = (&'a str, u32, Option<u32>);
        let mut rollouts: Vec<(RolloutKey<'_>, Vec<(&str, f64)>)> = Vec::new();
        for e in &self.events {
            match e {
                Event::FleetRequest {
                    model,
                    tenant,
                    outcome,
                    latency_ms,
                } => {
                    *outcomes.entry(outcome.as_str()).or_insert(0) += 1;
                    for agg in [
                        models.entry(model.as_str()).or_insert_with(Agg::new),
                        tenants.entry(tenant.as_str()).or_insert_with(Agg::new),
                    ] {
                        agg.count += 1;
                        if outcome == "ok" {
                            agg.ok += 1;
                            agg.lat_us.record_f64(latency_ms * 1000.0);
                        }
                    }
                }
                Event::FleetRollout {
                    model,
                    version,
                    from,
                    phase,
                    wall_ms,
                } => {
                    let key = (model.as_str(), *version, *from);
                    let at = match rollouts.iter().position(|(k, _)| *k == key) {
                        Some(i) => i,
                        None => {
                            rollouts.push((key, Vec::new()));
                            rollouts.len() - 1
                        }
                    };
                    rollouts[at].1.push((phase.as_str(), *wall_ms));
                }
                _ => {}
            }
        }
        if outcomes.is_empty() && rollouts.is_empty() {
            return;
        }
        let _ = writeln!(out, "\n== fleet ==");
        let total: u64 = outcomes.values().sum();
        if total > 0 {
            let parts: Vec<String> = outcomes.iter().map(|(k, n)| format!("{k}:{n}")).collect();
            let _ = writeln!(out, "requests {total}  ({})", parts.join("  "));
        }
        for (label, table) in [("model", &models), ("tenant", &tenants)] {
            for (name, agg) in table {
                let lat = agg.lat_us.snapshot();
                if lat.count > 0 {
                    let _ = writeln!(
                        out,
                        "{label} {name:<12} requests {:<6} ok {:<6} p50 {:.3} ms  p99 {:.3} ms",
                        agg.count,
                        agg.ok,
                        lat.percentile(0.50) / 1000.0,
                        lat.percentile(0.99) / 1000.0,
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{label} {name:<12} requests {:<6} ok {:<6}",
                        agg.count, agg.ok,
                    );
                }
            }
        }
        for ((model, version, from), path) in &rollouts {
            let origin = match from {
                Some(f) => format!("v{f}→v{version}"),
                None => format!("deploy v{version}"),
            };
            let terminal = path.last().map(|(p, _)| *p).unwrap_or("?");
            let wall = path.last().map(|(_, w)| *w).unwrap_or(0.0);
            let steps: Vec<String> = path.iter().map(|(p, w)| format!("{p} @{w:.1}ms")).collect();
            let _ = writeln!(
                out,
                "rollout {model} {origin}  {terminal} in {wall:.1} ms  [{}]",
                steps.join(" → ")
            );
        }
    }

    fn render_stages(&self, out: &mut String) {
        // Aggregate `trace_span` events per stage so the report can say
        // where the tail latency lives (queue vs batch vs infer vs …).
        let mut stages: Vec<(String, Histogram)> = Vec::new();
        let mut traces = std::collections::HashSet::new();
        let mut spans = 0u64;
        for e in &self.events {
            if let Event::TraceSpan {
                trace,
                stage,
                wall_ms,
                ..
            } = e
            {
                let hist = match stages.iter().position(|(name, _)| name == stage) {
                    Some(i) => &stages[i].1,
                    None => {
                        stages.push((stage.clone(), Histogram::new()));
                        let Some(last) = stages.last() else {
                            unreachable!("pushed one line above")
                        };
                        &last.1
                    }
                };
                hist.record_f64(wall_ms * 1000.0);
                traces.insert(*trace);
                spans += 1;
            }
        }
        if stages.is_empty() {
            return;
        }
        let _ = writeln!(out, "\n== stage latency (trace spans) ==");
        let _ = writeln!(out, "{spans} spans across {} traces", traces.len());
        let _ = writeln!(
            out,
            "stage        count    avg_ms     p50_ms     p95_ms     p99_ms     max_ms"
        );
        for (name, hist) in &stages {
            let s = hist.snapshot();
            let _ = writeln!(
                out,
                "{name:<10}  {:>6}  {:>8.3}  {:>9.3}  {:>9.3}  {:>9.3}  {:>9.3}",
                s.count,
                s.mean() / 1000.0,
                s.percentile(0.50) / 1000.0,
                s.percentile(0.95) / 1000.0,
                s.percentile(0.99) / 1000.0,
                s.max as f64 / 1000.0,
            );
        }
    }

    fn render_metrics(&self, out: &mut String) {
        // Render the last registry snapshot embedded in the log (the
        // registry is cumulative, so the last dump supersedes earlier
        // periodic ones).
        let mut snapshots = 0usize;
        let mut last = None;
        for e in &self.events {
            if let Event::MetricsSnapshot { scope, snapshot } = e {
                snapshots += 1;
                last = Some((scope, snapshot));
            }
        }
        let Some((scope, snap)) = last else {
            return;
        };
        let _ = writeln!(
            out,
            "\n== live metrics (snapshot {snapshots} of {snapshots}, scope '{scope}') =="
        );
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "{name:<44}  {value}");
        }
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "{name:<44}  {value}");
        }
        for (name, hist) in &snap.histograms {
            let _ = writeln!(
                out,
                "{name:<44}  n {}  p50 {:.0}  p95 {:.0}  p99 {:.0}  max {}",
                hist.count,
                hist.percentile(0.50),
                hist.percentile(0.95),
                hist.percentile(0.99),
                hist.max,
            );
        }
    }

    fn render_dist(&self, out: &mut String) {
        // Communication volume by phase (full-rank vs factorized rounds)
        // plus a per-worker timeline of steps, staleness, and fault-plan
        // lifecycle transitions.
        struct Phase {
            rounds: u64,
            bytes: u64,
        }
        let mut full = Phase {
            rounds: 0,
            bytes: 0,
        };
        let mut low = Phase {
            rounds: 0,
            bytes: 0,
        };
        let mut exchange_names: Vec<&str> = Vec::new();
        let mut bytes_up = 0u64;
        let mut bytes_down = 0u64;
        let mut stale = 0u64;
        let mut dropped = 0u64;
        struct WorkerLine {
            steps: u64,
            stale: u64,
            compute_ms: f64,
            lifecycle: Vec<String>,
        }
        let mut workers: BTreeMap<usize, WorkerLine> = BTreeMap::new();
        for e in &self.events {
            match e {
                Event::DistExchange {
                    exchange,
                    stale: s,
                    dropped: d,
                    bytes_up: up,
                    bytes_down: down,
                    factored,
                    ..
                } => {
                    let phase = if *factored { &mut low } else { &mut full };
                    phase.rounds += 1;
                    phase.bytes += up + down;
                    if !exchange_names.contains(&exchange.as_str()) {
                        exchange_names.push(exchange.as_str());
                    }
                    bytes_up += up;
                    bytes_down += down;
                    stale += *s as u64;
                    dropped += *d as u64;
                }
                Event::DistWorkerStep {
                    worker,
                    compute_ms,
                    staleness,
                    ..
                } => {
                    let w = workers.entry(*worker).or_insert(WorkerLine {
                        steps: 0,
                        stale: 0,
                        compute_ms: 0.0,
                        lifecycle: Vec::new(),
                    });
                    w.steps += 1;
                    if *staleness > 0 {
                        w.stale += 1;
                    }
                    w.compute_ms += compute_ms;
                }
                Event::DistWorkerEvent {
                    step,
                    worker,
                    event,
                } => {
                    let w = workers.entry(*worker).or_insert(WorkerLine {
                        steps: 0,
                        stale: 0,
                        compute_ms: 0.0,
                        lifecycle: Vec::new(),
                    });
                    w.lifecycle.push(format!("{event}@{step}"));
                }
                _ => {}
            }
        }
        let rounds = full.rounds + low.rounds;
        if rounds == 0 && workers.is_empty() {
            return;
        }
        let _ = writeln!(out, "\n== distributed training ==");
        let _ = writeln!(
            out,
            "workers {}  rounds {rounds}  exchange {}",
            workers.len(),
            exchange_names.join("+"),
        );
        let _ = writeln!(out, "\n-- communication volume --");
        if full.rounds > 0 {
            let _ = writeln!(
                out,
                "full-rank rounds {:>5}  {:>12.1} B/step",
                full.rounds,
                full.bytes as f64 / full.rounds as f64
            );
        }
        if low.rounds > 0 {
            let _ = writeln!(
                out,
                "low-rank rounds  {:>5}  {:>12.1} B/step",
                low.rounds,
                low.bytes as f64 / low.rounds as f64
            );
        }
        if full.rounds > 0 && low.rounds > 0 {
            let per_full = full.bytes as f64 / full.rounds as f64;
            let per_low = low.bytes as f64 / low.rounds as f64;
            let _ = writeln!(
                out,
                "post-switch bytes/step ratio {:.3} (~rho of the rank plan)",
                per_low / per_full.max(1.0)
            );
        }
        let _ = writeln!(
            out,
            "uplink {:.3} MB  downlink {:.3} MB  stale contributions {stale} (dropped {dropped})",
            bytes_up as f64 / 1e6,
            bytes_down as f64 / 1e6,
        );
        if !workers.is_empty() {
            let _ = writeln!(out, "\n-- per-worker timeline --");
            let _ = writeln!(out, "worker  steps  stale  avg_compute_ms  lifecycle");
            for (id, w) in &workers {
                let avg = if w.steps > 0 {
                    w.compute_ms / w.steps as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{id:>6}  {:>5}  {:>5}  {avg:>14.3}  {}",
                    w.steps,
                    w.stale,
                    w.lifecycle.join(" "),
                );
            }
        }
    }

    fn render_kernels(&self, out: &mut String) {
        let mut total = KernelCounters::default();
        let mut samples = 0usize;
        for e in &self.events {
            if let Event::KernelCounterSample { counters, .. } = e {
                total.matmul_calls += counters.matmul_calls;
                total.matmul_flops += counters.matmul_flops;
                total.im2col_calls += counters.im2col_calls;
                total.im2col_elems += counters.im2col_elems;
                total.svd_sweeps += counters.svd_sweeps;
                total.power_iters += counters.power_iters;
                samples += 1;
            }
        }
        if samples == 0 {
            return;
        }
        let _ = writeln!(
            out,
            "\n== kernel counters ({samples} samples; zeros mean the telemetry feature was off) =="
        );
        let rows = [
            ("matmul calls", total.matmul_calls),
            ("matmul flops", total.matmul_flops),
            ("im2col calls", total.im2col_calls),
            ("im2col elems", total.im2col_elems),
            ("svd sweeps", total.svd_sweeps),
            ("power iters", total.power_iters),
        ];
        let max = rows.iter().map(|(_, v)| *v).max().unwrap_or(0);
        for (name, value) in rows {
            let bar_len = if max == 0 {
                0
            } else {
                // log-ish scaling keeps flops from drowning out call counts
                let frac = ((value as f64 + 1.0).ln() / (max as f64 + 1.0).ln()).clamp(0.0, 1.0);
                (frac * 40.0).round() as usize
            };
            let bar: String = std::iter::repeat_n('#', bar_len).collect();
            let _ = writeln!(out, "{name:<13} {value:>14}  {bar}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RankDecisionEvent;
    use crate::manifest::{fnv1a_hash, RunManifest, SCHEMA_VERSION};

    fn sample_events() -> Vec<Event> {
        vec![
            Event::EpochStarted { epoch: 0, lr: 0.1 },
            Event::StableRankSampled {
                epoch: 0,
                layer: "stack1.conv".to_string(),
                rho: 5.0,
                scaled_rho: 2.5,
            },
            Event::EpochCompleted {
                epoch: 0,
                loss: 1.2,
                metric: Some(0.4),
                lr: 0.1,
                wall_ms: 12.0,
            },
            Event::ProfileMeasured {
                stack: 1,
                full_time_s: 0.2,
                factored_time_s: 0.05,
                speedup: 4.0,
                threshold: 1.5,
            },
            Event::SwitchTriggered {
                e_hat: 1,
                k_hat: 0,
                decisions: vec![RankDecisionEvent {
                    layer: "stack1.conv".to_string(),
                    index: 1,
                    stack: 1,
                    full_rank: 64,
                    estimate: 2.5,
                    chosen: Some(16),
                    skip: None,
                }],
            },
            Event::KernelCounterSample {
                scope: "epoch".to_string(),
                epoch: Some(0),
                counters: KernelCounters {
                    matmul_calls: 10,
                    matmul_flops: 1000,
                    ..Default::default()
                },
            },
            Event::SpanClosed {
                name: "profiling".to_string(),
                wall_ms: 3.0,
            },
            Event::Manifest(RunManifest {
                schema_version: SCHEMA_VERSION,
                config_hash: fnv1a_hash("cfg"),
                seed: 1,
                policy: "cuttlefish".to_string(),
                e_hat: Some(1),
                k_hat: Some(0),
                ranks: vec![],
                params_full: 100,
                params_final: 60,
                git_describe: None,
                event_counts: vec![("epoch_completed".to_string(), 1)],
                sim_hours: 0.5,
            }),
        ]
    }

    #[test]
    fn report_round_trips_and_renders() {
        let jsonl: String = sample_events()
            .iter()
            .map(|e| e.to_jsonl() + "\n")
            .collect();
        let report = RunReport::from_jsonl(&jsonl);
        assert!(report.skipped_lines.is_empty());
        assert_eq!(report.events().len(), sample_events().len());
        assert!(report.manifest().is_some());
        let text = report.render();
        for needle in [
            "run summary",
            "roofline profile",
            "stable-rank trajectory",
            "switch (Algorithm 1)",
            "time per phase",
            "kernel counters",
            "E_hat 1",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn serving_section_aggregates_requests_and_batches() {
        let events = [
            Event::ServeRequest {
                worker: 0,
                batch_size: 2,
                queue_ms: 1.0,
                infer_ms: 2.0,
                outcome: "ok".to_string(),
            },
            Event::ServeRequest {
                worker: 1,
                batch_size: 1,
                queue_ms: 9.0,
                infer_ms: 0.0,
                outcome: "deadline_dequeue".to_string(),
            },
            Event::ServeBatch {
                worker: 0,
                batch_size: 2,
                queue_depth: 3,
                wall_ms: 2.5,
            },
        ];
        let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        let report = RunReport::from_jsonl(&jsonl);
        assert!(report.skipped_lines.is_empty());
        let text = report.render();
        for needle in [
            "== serving ==",
            "requests 2",
            "deadline_dequeue:1",
            "ok:1",
            "batches 1",
            "max_queue_depth 3",
            "p50 3.000",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn fleet_section_aggregates_tenants_models_and_rollouts() {
        let events = [
            Event::FleetRequest {
                model: "resnet-a".to_string(),
                tenant: "t0".to_string(),
                outcome: "ok".to_string(),
                latency_ms: 3.0,
            },
            Event::FleetRequest {
                model: "resnet-a".to_string(),
                tenant: "t1".to_string(),
                outcome: "throttled".to_string(),
                latency_ms: 0.0,
            },
            Event::FleetRequest {
                model: "resnet-b".to_string(),
                tenant: "t0".to_string(),
                outcome: "ok".to_string(),
                latency_ms: 5.0,
            },
            Event::FleetRollout {
                model: "resnet-a".to_string(),
                version: 2,
                from: Some(1),
                phase: "loading".to_string(),
                wall_ms: 1.0,
            },
            Event::FleetRollout {
                model: "resnet-a".to_string(),
                version: 2,
                from: Some(1),
                phase: "committed".to_string(),
                wall_ms: 42.0,
            },
        ];
        let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        let report = RunReport::from_jsonl(&jsonl);
        assert!(report.skipped_lines.is_empty());
        let text = report.render();
        for needle in [
            "== fleet ==",
            "requests 3",
            "ok:2",
            "throttled:1",
            "model resnet-a",
            "model resnet-b",
            "tenant t0",
            "tenant t1",
            "rollout resnet-a v1\u{2192}v2",
            "committed in 42.0 ms",
            "loading @1.0ms",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn dist_section_reports_comm_drop_and_timelines() {
        let mut events = Vec::new();
        // 2 full-rank rounds at 1000 B, 2 factorized rounds at 250 B.
        for step in 0..4usize {
            let factored = step >= 2;
            let bytes = if factored { 125 } else { 500 };
            events.push(Event::DistExchange {
                step,
                exchange: "factor_allreduce".to_string(),
                participants: 2,
                stale: usize::from(step == 3),
                dropped: 0,
                bytes_up: bytes,
                bytes_down: bytes,
                factored,
            });
            for worker in 0..2usize {
                events.push(Event::DistWorkerStep {
                    step,
                    worker,
                    loss: 1.0,
                    compute_ms: 2.0,
                    staleness: usize::from(step == 3 && worker == 1),
                });
            }
        }
        events.push(Event::DistWorkerEvent {
            step: 3,
            worker: 1,
            event: "stale_applied".to_string(),
        });
        let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        let report = RunReport::from_jsonl(&jsonl);
        assert!(report.skipped_lines.is_empty());
        let text = report.render();
        for needle in [
            "== distributed training ==",
            "communication volume",
            "full-rank rounds     2        1000.0 B/step",
            "low-rank rounds      2         250.0 B/step",
            "post-switch bytes/step ratio 0.250",
            "stale contributions 1 (dropped 0)",
            "per-worker timeline",
            "stale_applied@3",
        ] {
            assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
        }
    }

    #[test]
    fn malformed_lines_are_skipped_not_fatal() {
        let jsonl = format!(
            "{}\nnot json at all\n{{\"kind\":\"mystery\"}}\n",
            Event::EpochStarted { epoch: 0, lr: 0.1 }.to_jsonl()
        );
        let report = RunReport::from_jsonl(&jsonl);
        assert_eq!(report.events().len(), 1);
        assert_eq!(report.skipped_lines.len(), 2);
        assert!(report.render().contains("skipped 2 malformed line(s)"));
    }

    #[test]
    fn truncated_final_line_is_skipped_with_a_warning() {
        // A crashed writer leaves a half-written last line and no
        // trailing newline.
        let complete: String = [
            Event::EpochStarted { epoch: 0, lr: 0.1 }.to_jsonl(),
            Event::EpochStarted { epoch: 1, lr: 0.1 }.to_jsonl(),
        ]
        .join("\n");
        let last = Event::EpochCompleted {
            epoch: 1,
            loss: 1.0,
            metric: None,
            lr: 0.1,
            wall_ms: 9.0,
        }
        .to_jsonl();
        let jsonl = format!("{complete}\n{}", &last[..last.len() / 2]);
        let report = RunReport::from_jsonl(&jsonl);
        assert_eq!(report.events().len(), 2);
        assert!(
            report.skipped_lines.is_empty(),
            "{:?}",
            report.skipped_lines
        );
        assert_eq!(report.truncated_final_line, Some(3));
        let text = report.render();
        assert!(text.contains("truncated final line"), "{text}");

        // The same damaged tail mid-file (newline after it) is real
        // corruption, not a crash signature.
        let jsonl = format!("{}\n{complete}\n", &last[..last.len() / 2]);
        let report = RunReport::from_jsonl(&jsonl);
        assert_eq!(report.events().len(), 2);
        assert_eq!(report.skipped_lines.len(), 1);
        assert_eq!(report.truncated_final_line, None);
    }

    #[test]
    fn stage_section_aggregates_trace_spans() {
        let mut events = Vec::new();
        for (i, wall) in [(0u64, 0.5f64), (1, 1.5), (2, 2.5)] {
            events.push(Event::TraceSpan {
                trace: i,
                stage: crate::trace::stage::QUEUE.to_string(),
                worker: Some(0),
                wall_ms: wall,
            });
            events.push(Event::TraceSpan {
                trace: i,
                stage: crate::trace::stage::INFER.to_string(),
                worker: Some(0),
                wall_ms: wall * 2.0,
            });
        }
        let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        let report = RunReport::from_jsonl(&jsonl);
        let text = report.render();
        assert!(text.contains("== stage latency (trace spans) =="), "{text}");
        assert!(text.contains("6 spans across 3 traces"), "{text}");
        assert!(text.contains("queue"), "{text}");
        assert!(text.contains("infer"), "{text}");
    }

    #[test]
    fn metrics_section_renders_last_snapshot() {
        let reg = crate::MetricsRegistry::new();
        reg.counter("serve_requests_total{outcome=\"ok\"}").add(5);
        reg.histogram("serve_stage_infer_us").record(2_000);
        let events = [
            Event::MetricsSnapshot {
                scope: "periodic".to_string(),
                snapshot: crate::MetricsRegistry::new().snapshot(),
            },
            Event::MetricsSnapshot {
                scope: "final".to_string(),
                snapshot: reg.snapshot(),
            },
        ];
        let jsonl: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        let report = RunReport::from_jsonl(&jsonl);
        let text = report.render();
        assert!(text.contains("scope 'final'"), "{text}");
        assert!(
            text.contains("serve_requests_total{outcome=\"ok\"}"),
            "{text}"
        );
        assert!(text.contains("serve_stage_infer_us"), "{text}");
    }

    #[test]
    fn empty_log_renders_without_panic() {
        let report = RunReport::from_jsonl("");
        assert!(report.manifest().is_none());
        assert!(report.render().contains("no manifest found"));
    }
}
